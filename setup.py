"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks PEP 660 editable-wheel
support (it falls back to the legacy ``setup.py develop`` path).  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
