"""Benchmark harness reproducing the paper's complexity claims.

One module per experiment (see DESIGN.md §3 for the index).  Each
module offers:

* pytest-benchmark micro-benchmarks (``pytest benchmarks/
  --benchmark-only``), and
* a ``run()`` function printing the paper-shaped table/series, driven
  by ``python -m benchmarks.harness <exp-id|all>``.
"""
