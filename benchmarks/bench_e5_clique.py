"""E5 — Theorem 3.2: k-clique as a *gamma-acyclic* Boolean regex CQ.

Claims reproduced:

* correctness: non-empty iff the graph has a k-clique (cross-checked
  against brute-force clique search);
* the query is gamma-acyclic — tractable in the relational world, hard
  here because atom relations blow up;
* W[1]-shape: evaluation time climbs steeply with k while the graph is
  held fixed.
"""

from __future__ import annotations

from repro.queries import CanonicalEvaluator
from repro.reductions import CliqueReduction
from repro.util.graphs import Graph

from .common import Table, time_call


def run() -> list[Table]:
    graph = Graph.with_planted_clique(8, 0.3, 4, seed=7)
    table = Table(
        "E5  k-clique -> gamma-acyclic regex CQ (Theorem 3.2)",
        ["k", "gamma-acyclic", "truth", "regex CQ", "eval time (s)"],
    )
    evaluator = CanonicalEvaluator()
    for k in (2, 3, 4):
        reduction = CliqueReduction.build(graph, k)
        truth = graph.has_clique(k)
        elapsed = time_call(
            lambda: evaluator.evaluate_boolean(
                reduction.query, reduction.string
            )
        )
        got = evaluator.evaluate_boolean(reduction.query, reduction.string)
        table.add(
            k,
            reduction.query.is_gamma_acyclic(),
            truth,
            got,
            elapsed,
        )
        assert got == truth
    table.note(
        "graph fixed (n=8, planted 4-clique); time growth with k is the "
        "W[1]-hardness signature"
    )
    return [table]


def test_e5_reduction_correct(benchmark):
    graph = Graph.with_planted_clique(6, 0.3, 3, seed=3)
    reduction = CliqueReduction.build(graph, 3)
    evaluator = CanonicalEvaluator()
    got = benchmark(
        lambda: evaluator.evaluate_boolean(reduction.query, reduction.string)
    )
    assert got == graph.has_clique(3)


def test_e5_gamma_acyclicity():
    graph = Graph.random(6, 0.5, seed=1)
    for k in (2, 3):
        assert CliqueReduction.build(graph, k).query.is_gamma_acyclic()


def test_e5_negative_instance():
    square = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    reduction = CliqueReduction.build(square, 3)
    assert not CanonicalEvaluator().evaluate_boolean(
        reduction.query, reduction.string
    )
