"""E13 — compiled-spanner runtime: amortized preprocessing throughput.

Claim (engineering, not from the paper): Theorem 3.3's preprocessing
splits into a string-independent half (trim/compaction, configuration
sweep, VE closures, terminal-edge lists, per-character burst rows) and
a string-dependent half (the leveled-graph sweep).  Hoisting the former
into :class:`~repro.runtime.CompiledSpanner` should multiply docs/sec
on repeated-automaton workloads — the serving scenario of *Reducing a
Set of Regular Expressions…* (Kalmbach et al., 2022) — by >= 3x versus
constructing a fresh ``SpannerEvaluator`` per document, with
**identical** output tuple sequences.

Workload: a dictionary extractor (log keywords plus a service-name
vocabulary, most absent from any given line) evaluated over individual
machine-log lines.  Short documents with a mid-sized automaton are the
amortization-friendliest — and the most serving-realistic — regime:
per document the string sweep is tiny, while the cold path re-derives
an ~200-state automaton's closures and predicate tables every time.

Series reproduced:

* docs/sec, cold vs compiled, as the corpus grows (the speedup is a
  per-document constant, so it should be roughly corpus-size
  independent);
* the same on longer multi-sentence documents, where the string sweep
  dilutes the saving (speedup smaller but still > 1);
* a count-only workload (``count_many``), no tuple decoding;
* the multiprocess scaling curve (``ParallelSpanner``, 1/2/4/8
  workers): docs/sec and speedup versus the serial compiled path,
  with identical outputs asserted per worker count — the speedup
  ceiling is the machine's physical core count, which the table
  reports;
* output equality is asserted, not sampled.
"""

from __future__ import annotations

import time

from repro.enumeration import SpannerEvaluator
from repro.extractors import capitalized_spanner, dictionary_spanner
from repro.runtime import CompiledSpanner, ParallelSpanner
from repro.text import log_lines, sentences
from repro.vset import compile_regex

from .common import Table, available_cpus

#: Log keywords + a service-name vocabulary: the fixed query workload.
DICTIONARY = [
    "disk", "net", "auth", "db", "cache", "ERROR", "INFO", "timeout",
    "retry", "request", "connection", "checksum", "scheduled",
    "completed", "reset", "exceeded", "mismatch", "code",
] + [f"svc{i}" for i in range(16)]


def log_corpus(n_docs: int, seed: int = 3) -> list[str]:
    """``n_docs`` individual machine-log lines (short documents)."""
    return log_lines(n_docs, seed=seed).split("\n")


def sentence_corpus(n_docs: int, seed: int = 13) -> list[str]:
    """Longer documents: 3 sentences with a planted address each."""
    return [
        sentences(3, seed=seed + i, plant_addresses=1)
        for i in range(n_docs)
    ]


def workload_automaton():
    return compile_regex(dictionary_spanner(DICTIONARY)).compacted()


def _cold_pass(automaton, docs: list[str]) -> list[list]:
    """Per-document evaluator construction: preprocessing paid per doc."""
    return [list(SpannerEvaluator(automaton, doc)) for doc in docs]


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _timed_best(fn, repeat: int = 3) -> tuple[float, object]:
    """Best-of-``repeat`` wall clock: robust to GC pauses / noisy CI."""
    best = float("inf")
    out = None
    for _ in range(repeat):
        elapsed, out = _timed(fn)
        best = min(best, elapsed)
    return best, out


def run() -> list[Table]:
    automaton = workload_automaton()

    throughput = Table(
        "E13a  docs/sec over log lines: cold SpannerEvaluator vs "
        "CompiledSpanner.evaluate_many",
        ["docs", "cold (s)", "compiled (s)", "cold docs/s",
         "compiled docs/s", "speedup"],
    )
    for n_docs in (50, 100, 200, 400):
        docs = log_corpus(n_docs)
        spanner = CompiledSpanner(automaton)
        # Warm the burst table on one document so the sweep measures
        # the steady serving state, then time full passes.
        list(spanner.stream(docs[0]))
        cold_s, cold_out = _timed(lambda: _cold_pass(automaton, docs))
        comp_s, comp_out = _timed(lambda: list(spanner.evaluate_many(docs)))
        assert comp_out == cold_out, "compiled output diverged from cold"
        throughput.add(
            n_docs, cold_s, comp_s,
            n_docs / cold_s, n_docs / comp_s, cold_s / comp_s,
        )
    throughput.note(
        "identical tuple sequences asserted per corpus; target >= 3x"
    )

    long_docs = Table(
        "E13b  longer documents (3 sentences each, capitalized-word "
        "extractor): sweep dilutes the saving",
        ["docs", "cold (s)", "compiled (s)", "speedup", "answers/doc"],
    )
    cap = compile_regex(capitalized_spanner()).compacted()
    for n_docs in (50, 100):
        docs = sentence_corpus(n_docs)
        spanner = CompiledSpanner(cap)
        list(spanner.stream(docs[0]))
        cold_s, cold_out = _timed(lambda: _cold_pass(cap, docs))
        comp_s, comp_out = _timed(lambda: list(spanner.evaluate_many(docs)))
        assert comp_out == cold_out
        long_docs.add(
            n_docs, cold_s, comp_s, cold_s / comp_s,
            sum(map(len, comp_out)) / n_docs,
        )

    counts = Table(
        "E13c  count-only workload over log lines (no tuple decoding)",
        ["docs", "cold (s)", "compiled (s)", "speedup", "total tuples"],
    )
    for n_docs in (100, 200):
        docs = log_corpus(n_docs)
        spanner = CompiledSpanner(automaton)
        spanner.count(docs[0])
        cold_s, cold_counts = _timed(
            lambda: [SpannerEvaluator(automaton, d).count() for d in docs]
        )
        comp_s, comp_counts = _timed(lambda: list(spanner.count_many(docs)))
        assert comp_counts == cold_counts
        counts.add(n_docs, cold_s, comp_s, cold_s / comp_s, sum(comp_counts))

    scaling = Table(
        "E13d  multiprocess sharding (ParallelSpanner over log lines): "
        "scaling vs the serial compiled path",
        ["workers", "docs", "wall (s)", "docs/s", "speedup"],
    )
    docs = log_corpus(800)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))
    serial_s, serial_out = _timed_best(
        lambda: list(spanner.evaluate_many(docs))
    )
    scaling.add(1, len(docs), serial_s, len(docs) / serial_s, 1.0)
    for workers in (2, 4, 8):
        with ParallelSpanner(
            spanner, workers=workers, chunk_size=32
        ) as engine:
            par_s, par_out = _timed_best(
                lambda: list(engine.evaluate_many(docs))
            )
        assert par_out == serial_out, (
            f"parallel output diverged from serial at {workers} workers"
        )
        scaling.add(
            workers, len(docs), par_s, len(docs) / par_s, serial_s / par_s
        )
    scaling.note(
        f"identical tuple sequences asserted per worker count; "
        f"{available_cpus()} cpu(s) available — the speedup ceiling is "
        "the physical core count (target >= 2x at 4 workers on >= 4 cores)"
    )

    return [throughput, long_docs, counts, scaling]


# ---------------------------------------------------------------------------
# pytest checks / micro-benchmarks
# ---------------------------------------------------------------------------


def test_e13_speedup_and_equality():
    """Acceptance: >= 3x docs/sec on a 100+-doc corpus, same outputs.

    Both sides take the best of three passes so a GC pause or CPU
    throttle on a shared CI runner cannot flip the verdict.
    """
    automaton = workload_automaton()
    docs = log_corpus(150)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))  # steady state: burst table warmed
    cold_s, cold_out = _timed_best(lambda: _cold_pass(automaton, docs))
    comp_s, comp_out = _timed_best(lambda: list(spanner.evaluate_many(docs)))
    assert comp_out == cold_out
    speedup = cold_s / comp_s
    assert speedup >= 3.0, f"speedup {speedup:.2f}x below the 3x target"


def test_e13_compiled_throughput(benchmark):
    automaton = workload_automaton()
    docs = log_corpus(50)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))
    benchmark(lambda: list(spanner.evaluate_many(docs)))


def test_e13_parallel_two_workers_identical():
    """CI smoke: a 2-worker shard must reproduce the serial output.

    Byte-identical, not just equal: the canonical rendering of every
    tuple list is compared as bytes, so ordering, grouping and span
    values all have to match exactly.  No timing assertion — wall-clock
    parity depends on the runner's core count; the scaling curve lives
    in the E13d table.
    """
    automaton = workload_automaton()
    docs = log_corpus(120)
    spanner = CompiledSpanner(automaton)
    serial = list(spanner.evaluate_many(docs))
    with ParallelSpanner(spanner, workers=2, chunk_size=16) as engine:
        parallel = list(engine.evaluate_many(docs))
    assert parallel == serial

    def canonical(out: list) -> bytes:
        lines = [
            ";".join(
                " ".join(f"{v}={t[v]}" for v in sorted(t.variables))
                for t in per_doc
            )
            for per_doc in out
        ]
        return "\n".join(lines).encode()

    assert canonical(parallel) == canonical(serial)


def test_e13_parallel_speedup_when_cores_allow():
    """>= 2x docs/sec at 4 workers — on hardware that can deliver it.

    The timing bound only binds where >= 4 CPUs are available; on
    smaller hosts the identity assertion still runs but the bound is
    skipped.  CI deselects this test entirely (`-k "not parallel"` in
    the bench-smoke job): shared virtualized runners advertise vCPUs,
    not physical cores, and wall-clock asserts flake there — the E13d
    table records the measured curve instead.
    """
    import pytest

    automaton = workload_automaton()
    docs = log_corpus(600)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))
    serial_s, serial_out = _timed_best(
        lambda: list(spanner.evaluate_many(docs))
    )
    with ParallelSpanner(spanner, workers=4, chunk_size=32) as engine:
        par_s, par_out = _timed_best(lambda: list(engine.evaluate_many(docs)))
    assert par_out == serial_out
    if available_cpus() < 4:
        pytest.skip(
            f"only {available_cpus()} cpu(s) available — "
            "speedup bound needs >= 4"
        )
    speedup = serial_s / par_s
    assert speedup >= 2.0, f"speedup {speedup:.2f}x below the 2x target"
