"""E13 — compiled-spanner runtime: amortized preprocessing throughput.

Claim (engineering, not from the paper): Theorem 3.3's preprocessing
splits into a string-independent half (trim/compaction, configuration
sweep, VE closures, terminal-edge lists, per-character burst rows) and
a string-dependent half (the leveled-graph sweep).  Hoisting the former
into :class:`~repro.runtime.CompiledSpanner` should multiply docs/sec
on repeated-automaton workloads — the serving scenario of *Reducing a
Set of Regular Expressions…* (Kalmbach et al., 2022) — by >= 3x versus
constructing a fresh ``SpannerEvaluator`` per document, with
**identical** output tuple sequences.

Workload: a dictionary extractor (log keywords plus a service-name
vocabulary, most absent from any given line) evaluated over individual
machine-log lines.  Short documents with a mid-sized automaton are the
amortization-friendliest — and the most serving-realistic — regime:
per document the string sweep is tiny, while the cold path re-derives
an ~200-state automaton's closures and predicate tables every time.

Series reproduced:

* docs/sec, cold vs compiled, as the corpus grows (the speedup is a
  per-document constant, so it should be roughly corpus-size
  independent);
* the same on longer multi-sentence documents, where the string sweep
  dilutes the saving (speedup smaller but still > 1);
* a count-only workload (``count_many``), no tuple decoding;
* the multiprocess scaling curve (``ParallelSpanner``, 1/2/4/8
  workers): docs/sec and speedup versus the serial compiled path,
  with identical outputs asserted per worker count — the speedup
  ceiling is the machine's physical core count, which the table
  reports;
* the long-lived serving fleet (``SpannerService``) versus fresh
  per-call pools on repeated mixed-query batches: the fleet pays
  worker startup and artifact shipment once and then serves every
  batch of every registered query from the same resident workers,
  while the per-call path re-pays both on every batch; a
  recycle-enabled row measures the overhead of continuously replacing
  workers (``max_tasks_per_worker``);
* the document transport (E13f): pipe vs shared-memory docs/sec for
  in-memory corpora across document sizes at 4 workers.  The probe
  query is anchored and (almost) never matches, so the per-document
  sweep exits on the first character and the measured throughput is
  the *transport* — the pickled-task-pipe copy chain versus one
  shared-memory pack and a lazy worker-side decode; a few planted
  full-match documents keep the asserted outputs nonempty;
* the fault-tolerance tax (E13g): the E13a workload on a fleet with
  per-task deadlines and heartbeats enabled (``task_timeout=30``)
  versus disabled — no fault fires, so the delta is the bookkeeping
  overhead of the healthy path (target <= 3%);
* the resource-governance tax (E13h): the same workload with the full
  governance layer armed — shm budget, result-size caps, memory
  watchdog, compile admission — at limits generous enough that
  nothing ever trips, versus everything off; the delta is the cost of
  *checking* the limits (target <= 1%), and every governance counter
  must read 0;
* the durable-store payoff (E13i): cold ``register()`` (compile + a
  checksummed artifact write) versus a warm register in a fresh driver
  generation that revives the artifact by source fingerprint without
  compiling — also the per-query cost of ``SpannerService.restore()``;
  store hit/corrupt/orphan counters are stamped into the table;
* fused multi-query serving (E13j): Q registered queries answering one
  corpus through ``submit_all`` — one fused document pass
  (``fuse=True``) versus Q sequential scans (``fuse=False``) — with
  per-query outputs asserted byte-identical both ways; the workload is
  scan-dominated (anchored probes over ~16 KiB documents), so the
  speedup column isolates the costs fusion actually shares — document
  transport, decode and dispatch, paid once instead of Q times
  (target: fused wins from Q >= 4);
* output equality is asserted, not sampled.
"""

from __future__ import annotations

import time

from repro.enumeration import SpannerEvaluator
from repro.extractors import capitalized_spanner, dictionary_spanner
from repro.runtime import CompiledSpanner, ParallelSpanner, SpannerService
from repro.text import log_lines, sentences
from repro.vset import compile_regex

from .common import Table, available_cpus

#: Log keywords + a service-name vocabulary: the fixed query workload.
DICTIONARY = [
    "disk", "net", "auth", "db", "cache", "ERROR", "INFO", "timeout",
    "retry", "request", "connection", "checksum", "scheduled",
    "completed", "reset", "exceeded", "mismatch", "code",
] + [f"svc{i}" for i in range(16)]


def log_corpus(n_docs: int, seed: int = 3) -> list[str]:
    """``n_docs`` individual machine-log lines (short documents)."""
    return log_lines(n_docs, seed=seed).split("\n")


def sentence_corpus(n_docs: int, seed: int = 13) -> list[str]:
    """Longer documents: 3 sentences with a planted address each."""
    return [
        sentences(3, seed=seed + i, plant_addresses=1)
        for i in range(n_docs)
    ]


def workload_automaton():
    return compile_regex(dictionary_spanner(DICTIONARY)).compacted()


#: E13f's probe: anchored, so on any document that is not exactly the
#: needle the sweep's frontier dies on the first character and the
#: evaluation graph build exits immediately — per-document cost is
#: O(1), which is what lets the table read as a *transport* benchmark.
TRANSPORT_NEEDLE = "ZQXJKW"


def transport_corpus(n_docs: int, doc_bytes: int) -> list[str]:
    """``n_docs`` ASCII documents of ~``doc_bytes`` each, every eighth
    one a planted full match of :data:`TRANSPORT_NEEDLE` (so the
    parity assertions compare nonempty outputs, not just empty lists).
    """
    docs = []
    for i in range(n_docs):
        if i % 8 == 7:
            docs.append(TRANSPORT_NEEDLE)
            continue
        line = f"log line {i:06d} lorem ipsum dolor sit amet "
        reps = max(1, doc_bytes // len(line))
        docs.append(line * reps)
    return docs


def _cold_pass(automaton, docs: list[str]) -> list[list]:
    """Per-document evaluator construction: preprocessing paid per doc."""
    return [list(SpannerEvaluator(automaton, doc)) for doc in docs]


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _timed_best(fn, repeat: int = 3) -> tuple[float, object]:
    """Best-of-``repeat`` wall clock: robust to GC pauses / noisy CI."""
    best = float("inf")
    out = None
    for _ in range(repeat):
        elapsed, out = _timed(fn)
        best = min(best, elapsed)
    return best, out


def run() -> list[Table]:
    automaton = workload_automaton()

    throughput = Table(
        "E13a  docs/sec over log lines: cold SpannerEvaluator vs "
        "CompiledSpanner.evaluate_many",
        ["docs", "cold (s)", "compiled (s)", "cold docs/s",
         "compiled docs/s", "speedup"],
    )
    for n_docs in (50, 100, 200, 400):
        docs = log_corpus(n_docs)
        spanner = CompiledSpanner(automaton)
        # Warm the burst table on one document so the sweep measures
        # the steady serving state, then time full passes.
        list(spanner.stream(docs[0]))
        cold_s, cold_out = _timed(lambda: _cold_pass(automaton, docs))
        comp_s, comp_out = _timed(lambda: list(spanner.evaluate_many(docs)))
        assert comp_out == cold_out, "compiled output diverged from cold"
        throughput.add(
            n_docs, cold_s, comp_s,
            n_docs / cold_s, n_docs / comp_s, cold_s / comp_s,
        )
    throughput.note(
        "identical tuple sequences asserted per corpus; target >= 3x"
    )

    long_docs = Table(
        "E13b  longer documents (3 sentences each, capitalized-word "
        "extractor): sweep dilutes the saving",
        ["docs", "cold (s)", "compiled (s)", "speedup", "answers/doc"],
    )
    cap = compile_regex(capitalized_spanner()).compacted()
    for n_docs in (50, 100):
        docs = sentence_corpus(n_docs)
        spanner = CompiledSpanner(cap)
        list(spanner.stream(docs[0]))
        cold_s, cold_out = _timed(lambda: _cold_pass(cap, docs))
        comp_s, comp_out = _timed(lambda: list(spanner.evaluate_many(docs)))
        assert comp_out == cold_out
        long_docs.add(
            n_docs, cold_s, comp_s, cold_s / comp_s,
            sum(map(len, comp_out)) / n_docs,
        )

    counts = Table(
        "E13c  count-only workload over log lines (no tuple decoding)",
        ["docs", "cold (s)", "compiled (s)", "speedup", "total tuples"],
    )
    for n_docs in (100, 200):
        docs = log_corpus(n_docs)
        spanner = CompiledSpanner(automaton)
        spanner.count(docs[0])
        cold_s, cold_counts = _timed(
            lambda: [SpannerEvaluator(automaton, d).count() for d in docs]
        )
        comp_s, comp_counts = _timed(lambda: list(spanner.count_many(docs)))
        assert comp_counts == cold_counts
        counts.add(n_docs, cold_s, comp_s, cold_s / comp_s, sum(comp_counts))

    scaling = Table(
        "E13d  multiprocess sharding (ParallelSpanner over log lines): "
        "scaling vs the serial compiled path",
        ["workers", "docs", "wall (s)", "docs/s", "speedup"],
    )
    docs = log_corpus(800)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))
    serial_s, serial_out = _timed_best(
        lambda: list(spanner.evaluate_many(docs))
    )
    scaling.add(1, len(docs), serial_s, len(docs) / serial_s, 1.0)
    for workers in (2, 4, 8):
        with ParallelSpanner(
            spanner, workers=workers, chunk_size=32
        ) as engine:
            par_s, par_out = _timed_best(
                lambda: list(engine.evaluate_many(docs))
            )
        assert par_out == serial_out, (
            f"parallel output diverged from serial at {workers} workers"
        )
        scaling.add(
            workers, len(docs), par_s, len(docs) / par_s, serial_s / par_s
        )
    scaling.note(
        f"identical tuple sequences asserted per worker count; "
        f"{available_cpus()} cpu(s) available — the speedup ceiling is "
        "the physical core count (target >= 2x at 4 workers on >= 4 cores)"
    )

    fleet_table = Table(
        "E13e  long-lived fleet (SpannerService) vs fresh per-call pools: "
        "repeated mixed-query batches, 2 workers",
        ["scenario", "batches", "docs", "wall (s)", "docs/s", "speedup"],
    )
    dict_spanner = CompiledSpanner(automaton)
    cap_spanner = CompiledSpanner(cap)
    # Six alternating batches of two different registered queries — the
    # serving shape the fleet exists for: neither artifact is ever
    # recompiled or reshipped after its first batch.
    batches = [
        (dict_spanner, log_corpus(120, seed=31)),
        (cap_spanner, sentence_corpus(20, seed=41)),
    ] * 3
    expected = [
        list(spanner.evaluate_many(docs)) for spanner, docs in batches
    ]
    total_docs = sum(len(docs) for _spanner, docs in batches)

    def per_call_pools() -> list:
        # A fresh 2-worker pool per batch: pays startup + one artifact
        # shipment per worker on every single batch.
        out = []
        for spanner, docs in batches:
            engine = ParallelSpanner(spanner, workers=2, chunk_size=16)
            out.append(list(engine.evaluate_many(docs)))
        return out

    def fleet_pass(service: SpannerService, ids: list[str]) -> list:
        futures = [
            service.submit(qid, docs)
            for qid, (_spanner, docs) in zip(ids, batches)
        ]
        return [future.result() for future in futures]

    percall_s, percall_out = _timed_best(per_call_pools)
    assert percall_out == expected, "per-call pool output diverged"
    fleet_table.add(
        "fresh pool per batch", len(batches), total_docs, percall_s,
        total_docs / percall_s, 1.0,
    )

    with SpannerService(workers=2, chunk_size=16) as service:
        ids = [service.register(s) for s, _docs in batches[:2]] * 3
        fleet_pass(service, ids)  # warm: artifacts shipped once
        fleet_s, fleet_out = _timed_best(lambda: fleet_pass(service, ids))
    assert fleet_out == expected, "fleet output diverged"
    fleet_table.add(
        "resident fleet", len(batches), total_docs, fleet_s,
        total_docs / fleet_s, percall_s / fleet_s,
    )

    with SpannerService(
        workers=2, chunk_size=16, max_tasks_per_worker=4
    ) as service:
        ids = [service.register(s) for s, _docs in batches[:2]] * 3
        recycle_s, recycle_out = _timed_best(
            lambda: fleet_pass(service, ids)
        )
        recycles = service.workers_recycled
    assert recycle_out == expected, "recycling fleet output diverged"
    fleet_table.add(
        "fleet, recycle every 4 tasks", len(batches), total_docs,
        recycle_s, total_docs / recycle_s, percall_s / recycle_s,
    )
    fleet_table.note(
        "identical tuple sequences asserted per scenario; the resident "
        "fleet serves both registered queries from the same workers, "
        "shipping each compiled artifact at most once per worker "
        f"lifetime ({recycles} recycles in the recycling row)"
    )

    tables = [throughput, long_docs, counts, scaling, fleet_table]
    transport_table = _run_e13f()
    if transport_table is not None:
        tables.append(transport_table)
    tables.append(_run_e13g())
    tables.append(_run_e13h())
    tables.append(_run_e13i())
    tables.append(_run_e13j())
    tables.append(_run_e13k())
    return tables


def _run_e13k():
    """E13k: the compute backends head to head on the E13a workload.

    The same log-line corpus and dictionary extractor as E13a, served
    through ``ParallelSpanner`` over each concrete backend at 1 and 4
    workers.  Outputs are asserted byte-identical across every cell —
    the backend choice is a pure performance/isolation trade, never a
    semantic one.  Informational (reported, not gated): which backend
    wins depends on the interpreter (GIL vs free-threaded), the
    document mix and the core count, and the decision table in the
    README is the operator guidance this table backs with numbers.
    """
    automaton = workload_automaton()
    docs = log_corpus(800)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))  # warm the burst table
    bare_s, bare_out = _timed_best(lambda: list(spanner.evaluate_many(docs)))
    table = Table(
        "E13k  backend comparison (ParallelSpanner over the E13a log "
        "corpus): process vs thread vs serial at 1 and 4 workers",
        ["backend", "workers", "docs", "wall (s)", "docs/s",
         "vs bare serial"],
    )
    table.add(
        "(bare CompiledSpanner)", 1, len(docs), bare_s,
        len(docs) / bare_s, 1.0,
    )
    for backend in ("serial", "thread", "process"):
        for workers in (1, 4):
            if backend == "serial" and workers > 1:
                continue  # inline execution has no parallelism to buy
            with ParallelSpanner(
                spanner, workers=workers, backend=backend, chunk_size=32
            ) as engine:
                wall_s, out = _timed_best(
                    lambda: list(engine.evaluate_many(docs))
                )
            assert out == bare_out, (
                f"{backend} backend output diverged at {workers} workers"
            )
            table.add(
                backend, workers, len(docs), wall_s,
                len(docs) / wall_s, bare_s / wall_s,
            )
    table.note(
        "identical tuple sequences asserted per cell; informational "
        "(no gate) — expected shape: serial tracks the bare engine "
        "minus session bookkeeping, process wins CPU-bound throughput "
        "at 4 workers on a GIL build, thread wins only on "
        "free-threaded interpreters but always skips spawn/IPC cost "
        f"({available_cpus()} cpu(s) available)"
    )
    return table


def _run_e13j():
    """E13j: fused multi-query serving vs Q sequential scans.

    Q anchored probe queries (distinct needles, E13f's O(1)-per-
    document shape) registered on one 2-worker fleet, all answering
    the same ~16 KiB-document corpus through ``submit_all``.
    ``fuse=False`` dispatches Q independent scans — the pre-fusion
    serving shape, shipping every document to the workers Q times;
    ``fuse=True`` serves the whole set from one pass, shipping each
    document once and demultiplexing tuples per member.  Per-query
    outputs are asserted byte-identical between the two modes and
    against the serial engine.

    The fused sweep deliberately runs each member's solo construction
    verbatim (that is what makes the streams byte-identical), so the
    per-member automaton work is never shared — what fusion shares is
    everything *around* it: document transport, worker-side decode,
    task dispatch and result round-trips, all paid once instead of Q
    times.  This table therefore measures the scan-dominated serving
    regime those shared costs govern; on workloads where per-query
    evaluation dwarfs the scan, fusion is byte-identical but roughly
    cost-neutral (the README's decision table spells this out).
    ``docs/s`` counts *corpus* documents per second for the whole
    query set.
    """
    n_docs, doc_bytes = 64, 16 * 1024
    table = Table(
        "E13j  fused multi-query serving (submit_all, 2 workers, "
        "anchored probes over ~16 KiB documents): one fused pass vs "
        "Q sequential scans",
        ["queries", "docs", "sequential (s)", "fused (s)",
         "seq docs/s", "fused docs/s", "fused speedup"],
    )
    for n_queries in (1, 2, 4, 8):
        needles = [f"ZQXJKW{i}V" for i in range(n_queries)]
        # Every needle planted round-robin on each eighth document, so
        # each member's asserted output is nonempty at every Q.
        docs = []
        for i in range(n_docs):
            if i % 8 == 7:
                docs.append(needles[(i // 8) % n_queries])
                continue
            line = f"log line {i:06d} lorem ipsum dolor sit amet "
            docs.append(line * max(1, doc_bytes // len(line)))
        probes = [
            CompiledSpanner("x{" + needle + "}") for needle in needles
        ]
        serial = [list(p.evaluate_many(docs)) for p in probes]
        with SpannerService(workers=2, chunk_size=4) as service:
            ids = [service.register(p) for p in probes]

            def batch(fuse: bool) -> list:
                futures = service.submit_all(docs, queries=ids, fuse=fuse)
                return [futures[qid].result() for qid in ids]

            batch(True)  # warm: artifacts and the fused engine shipped
            batch(False)
            seq_s, seq_out = _timed_best(lambda: batch(False))
            fused_s, fused_out = _timed_best(lambda: batch(True))
        assert seq_out == serial, "sequential fleet output diverged"
        assert fused_out == serial, "fused fleet output diverged"
        table.add(
            n_queries, n_docs, seq_s, fused_s,
            n_docs / seq_s, n_docs / fused_s, seq_s / fused_s,
        )
    table.note(
        "per-query tuple sequences asserted byte-identical fused vs "
        "sequential vs serial at every Q; anchored probes exit the "
        "sweep on the first character, so the measured cost is the "
        "shared scan machinery (transport, decode, dispatch) the "
        "sequential path pays Q times; Q=1 routes through the same "
        "plan_submission decision point and degrades to one sequential "
        "scan (speedup ~1 by construction) — target: fused beats Q "
        "sequential scans from Q >= 4"
    )
    return table


def _run_e13g():
    """E13g: the price of fault tolerance on the healthy path.

    The E13a workload (dictionary automaton over log lines) served by a
    2-worker fleet, deadlines disabled (``task_timeout=None`` — the
    collector never reads heartbeats) versus enabled (``task_timeout=30``
    — workers stamp per-task heartbeats and the collector checks every
    outstanding task each poll).  No fault fires, so the delta is pure
    bookkeeping overhead; the timeouts/quarantines columns must read 0.
    """
    automaton = workload_automaton()
    table = Table(
        "E13g  deadline + heartbeat overhead (2-worker fleet, E13a "
        "workload): task_timeout off vs 30s",
        ["docs", "off (s)", "on (s)", "off docs/s", "on docs/s",
         "overhead %", "timeouts", "quarantines"],
    )
    for n_docs in (800, 1600):
        docs = log_corpus(n_docs)
        serial = list(CompiledSpanner(automaton).evaluate_many(docs))
        timings = {}
        counters = {}
        for label, timeout in (("off", None), ("on", 30.0)):
            with SpannerService(
                workers=2, chunk_size=16, task_timeout=timeout
            ) as service:
                qid = service.register(CompiledSpanner(automaton))
                service.submit(qid, docs).result()  # warm: artifact shipped
                elapsed, out = _timed_best(
                    lambda: service.submit(qid, docs).result(), repeat=5
                )
                counters[label] = (
                    service.tasks_timed_out,
                    len(service.quarantined_queries),
                )
            assert out == serial, f"deadline={label} output diverged"
            timings[label] = elapsed
        assert counters["on"] == (0, 0), "healthy path tripped a deadline"
        overhead = (timings["on"] / timings["off"] - 1.0) * 100.0
        table.add(
            n_docs, timings["off"], timings["on"],
            n_docs / timings["off"], n_docs / timings["on"],
            overhead, counters["on"][0], counters["on"][1],
        )
    table.note(
        "identical tuple sequences asserted with deadlines on and off; "
        "no injected faults, so timeouts/quarantines must be 0 — "
        "target: <= 3% overhead with deadlines enabled (best-of-5 "
        "passes per cell; single-pass noise on shared runners is wider "
        "than the effect, so read the sign across corpus sizes)"
    )
    return table


def _run_e13h():
    """E13h: the price of resource governance on the healthy path.

    The E13a workload on a 2-worker fleet with the whole governance
    layer armed — shm byte budget, per-query result caps, the worker
    memory watchdog, compile-time admission with a sandboxed compile —
    at limits far above what the workload needs, versus a fleet with
    every knob off.  Nothing trips (the governance counters are
    asserted 0), so the delta is the per-task cost of *checking*:
    cap bookkeeping in the enumeration loop, one RSS read per
    heartbeat, budget arithmetic per pack.  Target <= 1% — cheaper
    than E13g's deadlines because the checks ride existing loops.
    """
    automaton = workload_automaton()
    table = Table(
        "E13h  resource-governance overhead (2-worker fleet, E13a "
        "workload): all limits off vs armed-but-generous",
        ["docs", "off (s)", "on (s)", "off docs/s", "on docs/s",
         "overhead %", "degraded", "truncated"],
    )
    governed = dict(
        shm_budget=256 * 1024 * 1024,
        max_tuples=10_000_000,
        max_result_bytes=1 << 30,
        on_result_limit="truncate",
        worker_memory_limit=4 << 30,
        worker_memory_hard_limit=8 << 30,
        max_compile_states=100_000,
        compile_timeout=60.0,
    )
    for n_docs in (800, 1600):
        docs = log_corpus(n_docs)
        serial = list(CompiledSpanner(automaton).evaluate_many(docs))
        timings = {}
        counters = {}
        for label, knobs in (("off", {}), ("on", governed)):
            with SpannerService(
                workers=2, chunk_size=16, **knobs
            ) as service:
                qid = service.register(CompiledSpanner(automaton))
                service.submit(qid, docs).result()  # warm: artifact shipped
                elapsed, out = _timed_best(
                    lambda: service.submit(qid, docs).result(), repeat=5
                )
                resources = service.health()["resources"]
                counters[label] = (
                    resources["degraded_to_pipe"],
                    resources["docs_truncated"],
                    resources["tasks_result_limited"],
                    resources["queries_rejected"],
                    resources["memory_recycles"],
                    resources["memory_kills"],
                )
            assert out == serial, f"governance={label} output diverged"
            timings[label] = elapsed
        assert counters["on"] == (0, 0, 0, 0, 0, 0), (
            f"generous limits tripped on the healthy path: {counters['on']}"
        )
        overhead = (timings["on"] / timings["off"] - 1.0) * 100.0
        table.add(
            n_docs, timings["off"], timings["on"],
            n_docs / timings["off"], n_docs / timings["on"],
            overhead, counters["on"][0], counters["on"][1],
        )
    table.note(
        "identical tuple sequences asserted with governance on and off; "
        "limits are set far above the workload so every governance "
        "counter (degradations, truncations, result-limit failures, "
        "rejections, memory recycles/kills) must read 0 — target: "
        "<= 1% overhead with all limits armed (best-of-5 passes per "
        "cell; single-pass noise on shared runners is wider than the "
        "effect, so read the sign across corpus sizes)"
    )
    return table


def _run_e13i():
    """E13i: cold vs warm ``register()`` through a durable FileStore.

    A cold register compiles the query and writes the artifact; a warm
    register in a *new* driver generation finds the artifact under its
    source fingerprint and skips the compile entirely — the speedup is
    the compile time divided by one checksummed read.  This is also
    exactly the ``SpannerService.restore()`` revival path, so the warm
    column doubles as the restart-latency-per-query trajectory.  Store
    hits must equal 1 per warm register and the corrupt/orphan counters
    must read 0 — nonzero means the benchmark ran against a damaged
    cache or a crash-littered ``/dev/shm``.
    """
    import tempfile

    from repro.extractors import dictionary_spanner as _dict_spanner
    from repro.runtime import FileStore

    table = Table(
        "E13i  durable artifact store (FileStore): cold register "
        "(compile + put) vs warm register (fingerprint hit, no compile)",
        ["source", "cold (s)", "warm (s)", "speedup",
         "hits", "corrupt", "orphans"],
    )
    sources = [
        ("dictionary formula", _dict_spanner(DICTIONARY)),
        ("capitalized-word formula", capitalized_spanner()),
    ]
    for name, source in sources:
        with tempfile.TemporaryDirectory() as tmp:
            # Cold: best-of-3, each against an untouched directory.
            cold_best = float("inf")
            for i in range(3):
                store = FileStore(f"{tmp}/cold{i}")
                with SpannerService(
                    workers=2, artifact_store=store
                ) as service:
                    elapsed, qid = _timed(lambda: service.register(source))
                cold_best = min(cold_best, elapsed)
                assert store.stats()["puts"] == 1
            # Warm: best-of-3 fresh driver generations over one shared
            # directory seeded by the last cold run.
            warm_best = float("inf")
            for _ in range(3):
                store = FileStore(f"{tmp}/cold2")
                with SpannerService(
                    workers=2, artifact_store=store
                ) as service:
                    elapsed, warm_qid = _timed(
                        lambda: service.register(source)
                    )
                    orphans = service.health()["resources"]["orphans_swept"]
                warm_best = min(warm_best, elapsed)
                stats = store.stats()
                assert warm_qid == qid, "warm register produced a new id"
                assert stats["hits"] == 1 and stats["puts"] == 0
            table.add(
                name, cold_best, warm_best, cold_best / warm_best,
                stats["hits"], stats["corrupt_quarantined"], orphans,
            )
    table.note(
        "identical query ids asserted cold vs warm (the id fingerprints "
        "the artifact payload, so a matching id means byte-identical "
        "artifacts); hits must read 1 per warm register and "
        "corrupt/orphans 0 — the warm column is also the per-query "
        "revival cost of SpannerService.restore()"
    )
    return table


def _run_e13f():
    """E13f: pipe vs shared-memory document transport at 4 workers.

    ``None`` (table skipped, never recorded wrong) where POSIX shared
    memory is unavailable.
    """
    from repro.runtime import shm_available

    if not shm_available():  # pragma: no cover - POSIX-less runners
        return None
    table = Table(
        "E13f  document transport (in-memory corpora, 4 workers): "
        "task pipe vs shared-memory segments by document size",
        ["doc KiB", "docs", "pipe (s)", "shm (s)",
         "pipe docs/s", "shm docs/s", "shm speedup"],
    )
    probe = CompiledSpanner("x{" + TRANSPORT_NEEDLE + "}")
    for doc_kib, n_docs in ((4, 96), (64, 48), (256, 24)):
        docs = transport_corpus(n_docs, doc_kib * 1024)
        serial = list(probe.evaluate_many(docs))
        timings = {}
        for mode in ("pipe", "shm"):
            with ParallelSpanner(
                probe, workers=4, chunk_size=4, transport=mode
            ) as engine:
                list(engine.evaluate_many(docs))  # warm: fleet started
                elapsed, out = _timed_best(
                    lambda: list(engine.evaluate_many(docs)), repeat=2
                )
            assert out == serial, f"{mode} transport output diverged"
            timings[mode] = elapsed
        # "auto" must negotiate per chunk and still match byte-for-byte.
        with ParallelSpanner(
            probe, workers=4, chunk_size=4, transport="auto"
        ) as engine:
            assert list(engine.evaluate_many(docs)) == serial, (
                "auto transport output diverged"
            )
        table.add(
            doc_kib, n_docs, timings["pipe"], timings["shm"],
            n_docs / timings["pipe"], n_docs / timings["shm"],
            timings["pipe"] / timings["shm"],
        )
    table.note(
        "anchored probe query: the sweep exits on the first character, "
        "so docs/sec measures the transport itself; outputs asserted "
        "identical across serial/pipe/shm/auto at every size (planted "
        "full-match documents keep them nonempty); target: shm beats "
        "pipe from 64 KiB documents up"
    )
    return table


# ---------------------------------------------------------------------------
# pytest checks / micro-benchmarks
# ---------------------------------------------------------------------------


def test_e13_speedup_and_equality():
    """Acceptance: >= 3x docs/sec on a 100+-doc corpus, same outputs.

    Both sides take the best of three passes so a GC pause or CPU
    throttle on a shared CI runner cannot flip the verdict.
    """
    automaton = workload_automaton()
    docs = log_corpus(150)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))  # steady state: burst table warmed
    cold_s, cold_out = _timed_best(lambda: _cold_pass(automaton, docs))
    comp_s, comp_out = _timed_best(lambda: list(spanner.evaluate_many(docs)))
    assert comp_out == cold_out
    speedup = cold_s / comp_s
    assert speedup >= 3.0, f"speedup {speedup:.2f}x below the 3x target"


def test_e13_compiled_throughput(benchmark):
    automaton = workload_automaton()
    docs = log_corpus(50)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))
    benchmark(lambda: list(spanner.evaluate_many(docs)))


def test_e13_parallel_two_workers_identical():
    """CI smoke: a 2-worker shard must reproduce the serial output.

    Byte-identical, not just equal: the canonical rendering of every
    tuple list is compared as bytes, so ordering, grouping and span
    values all have to match exactly.  No timing assertion — wall-clock
    parity depends on the runner's core count; the scaling curve lives
    in the E13d table.
    """
    automaton = workload_automaton()
    docs = log_corpus(120)
    spanner = CompiledSpanner(automaton)
    serial = list(spanner.evaluate_many(docs))
    with ParallelSpanner(spanner, workers=2, chunk_size=16) as engine:
        parallel = list(engine.evaluate_many(docs))
    assert parallel == serial

    def canonical(out: list) -> bytes:
        lines = [
            ";".join(
                " ".join(f"{v}={t[v]}" for v in sorted(t.variables))
                for t in per_doc
            )
            for per_doc in out
        ]
        return "\n".join(lines).encode()

    assert canonical(parallel) == canonical(serial)


def _canonical(out: list) -> bytes:
    lines = [
        ";".join(
            " ".join(f"{v}={t[v]}" for v in sorted(t.variables))
            for t in per_doc
        )
        for per_doc in out
    ]
    return "\n".join(lines).encode()


def test_e13_backend_comparison_identical():
    """CI smoke for E13k: every compute backend reproduces the serial
    output byte-for-byte on the E13a workload.  No timing assertion —
    which backend is fastest is machine-dependent; the numbers live in
    the E13k table.
    """
    automaton = workload_automaton()
    docs = log_corpus(120)
    spanner = CompiledSpanner(automaton)
    serial = list(spanner.evaluate_many(docs))
    for backend in ("serial", "thread", "process"):
        with ParallelSpanner(
            spanner, workers=2, backend=backend, chunk_size=16
        ) as engine:
            out = list(engine.evaluate_many(docs))
        assert _canonical(out) == _canonical(serial), backend


def test_e13_fleet_two_queries_identical():
    """CI smoke: a 2-worker fleet serving two queries concurrently —
    one of them a fused equality query — must match serial byte-for-byte.

    Both queries' batches are dispatched before either result is
    consumed, so the workers genuinely interleave them.  No timing
    assertion (shared CI runners advertise vCPUs, not cores); the
    fleet-vs-pool economics live in the E13e table.
    """
    from .bench_e10_equality import _wide_dedup_query, _wide_text
    from repro.queries.compiled import CompiledEvaluator

    automaton = workload_automaton()
    dict_docs = log_corpus(80)
    dict_serial = list(CompiledSpanner(automaton).evaluate_many(dict_docs))
    eq_engine = CompiledEvaluator().equality_runtime(_wide_dedup_query())
    assert eq_engine is not None
    eq_docs = [_wide_text(24, seed=200 + i) for i in range(12)]
    eq_serial = list(eq_engine.evaluate_many(eq_docs))

    with SpannerService(workers=2, chunk_size=8) as service:
        q_dict = service.register(CompiledSpanner(automaton))
        q_eq = service.register(eq_engine)
        f_dict = service.submit(q_dict, dict_docs)
        f_eq = service.submit(q_eq, eq_docs)
        assert _canonical(f_dict.result()) == _canonical(dict_serial)
        assert _canonical(f_eq.result()) == _canonical(eq_serial)


def test_e13_fleet_recycle_identical():
    """CI smoke: max_tasks_per_worker=1 — every task retires its worker
    and a fresh process takes over — still yields identical results."""
    automaton = workload_automaton()
    docs = log_corpus(60)
    serial = list(CompiledSpanner(automaton).evaluate_many(docs))
    with SpannerService(
        workers=2, chunk_size=4, max_tasks_per_worker=1
    ) as service:
        qid = service.register(CompiledSpanner(automaton))
        out = service.submit(qid, docs).result()
        assert _canonical(out) == _canonical(serial)
        assert service.workers_recycled > 0


def test_e13_shm_transport_parity_two_workers():
    """CI smoke: a 2-worker shard over forced shared-memory transport
    must reproduce the serial output byte-for-byte — on a real
    extraction workload, not the E13f probe — and leave no segment
    behind in ``/dev/shm`` after the fleet closes.
    """
    import glob
    import os

    import pytest

    from repro.runtime import shm_available

    if not shm_available():
        pytest.skip("POSIX shared memory unavailable on this platform")
    automaton = workload_automaton()
    # ~4 KiB documents assembled from log lines: big enough that shm
    # genuinely carries the bytes, small enough to evaluate quickly.
    lines = log_corpus(240)
    docs = [" ".join(lines[i : i + 48]) for i in range(0, 240, 48)] * 4
    serial = list(CompiledSpanner(automaton).evaluate_many(docs))
    with ParallelSpanner(
        automaton, workers=2, chunk_size=2, transport="shm"
    ) as engine:
        shard = list(engine.evaluate_many(docs))
    assert _canonical(shard) == _canonical(serial)
    if os.path.isdir("/dev/shm"):
        leftovers = glob.glob("/dev/shm/sjdoc-*")
        assert not leftovers, f"leaked shm segments: {leftovers}"


def test_e13_governed_fleet_identical():
    """CI smoke: a fleet with the whole governance layer armed at
    generous limits — shm budget, result caps, memory watchdog,
    compile admission — must match the ungoverned serial output
    byte-for-byte with every governance counter at 0.  Identity
    asserts only, no wall-clock bound (the overhead timing lives in
    the E13h table); this is the guard against governance checks
    perturbing the answer stream on the healthy path.
    """
    automaton = workload_automaton()
    docs = log_corpus(120)
    serial = list(CompiledSpanner(automaton).evaluate_many(docs))
    with SpannerService(
        workers=2,
        chunk_size=16,
        shm_budget=256 * 1024 * 1024,
        max_tuples=10_000_000,
        max_result_bytes=1 << 30,
        on_result_limit="truncate",
        worker_memory_limit=4 << 30,
        worker_memory_hard_limit=8 << 30,
        max_compile_states=100_000,
        compile_timeout=60.0,
    ) as service:
        qid = service.register(CompiledSpanner(automaton))
        out = service.submit(qid, docs).result()
        resources = service.health()["resources"]
    assert _canonical(out) == _canonical(serial)
    assert resources["degraded_to_pipe"] == 0
    assert resources["docs_truncated"] == 0
    assert resources["tasks_result_limited"] == 0
    assert resources["queries_rejected"] == 0
    assert resources["memory_recycles"] == 0
    assert resources["memory_kills"] == 0


def test_e13_fused_vs_sequential_identical():
    """CI smoke: submit_all over a mixed query set — two dictionary
    extractors and a fused equality query — must produce per-query
    results byte-identical between one fused scan (``fuse=True``),
    Q sequential scans (``fuse=False``) and the serial engines.
    Identity asserts only, no wall-clock bound (the fused economics
    live in the E13j table)."""
    from .bench_e10_equality import _wide_dedup_query, _wide_text
    from repro.queries.compiled import CompiledEvaluator

    dict_a = CompiledSpanner(workload_automaton())
    dict_b = CompiledSpanner(
        compile_regex(dictionary_spanner(DICTIONARY[::2])).compacted()
    )
    eq_engine = CompiledEvaluator().equality_runtime(_wide_dedup_query())
    assert eq_engine is not None
    # One shared corpus: every member of a fused batch answers the
    # same documents (that is what makes one scan serve all of them).
    docs = [_wide_text(24, seed=300 + i) for i in range(8)] + log_corpus(40)
    engines = [dict_a, dict_b, eq_engine]
    serial = [list(e.evaluate_many(docs)) for e in engines]

    with SpannerService(workers=2, chunk_size=8) as service:
        ids = [service.register(e) for e in engines]
        fused = service.submit_all(docs, queries=ids)
        sequential = service.submit_all(docs, queries=ids, fuse=False)
        for qid, expected in zip(ids, serial):
            assert _canonical(fused[qid].result()) == _canonical(expected)
            assert _canonical(sequential[qid].result()) == _canonical(
                expected
            )


def test_e13_parallel_speedup_when_cores_allow():
    """>= 2x docs/sec at 4 workers — on hardware that can deliver it.

    The timing bound only binds where >= 4 CPUs are available; on
    smaller hosts the identity assertion still runs but the bound is
    skipped.  CI deselects this test entirely (`-k "not parallel"` in
    the bench-smoke job): shared virtualized runners advertise vCPUs,
    not physical cores, and wall-clock asserts flake there — the E13d
    table records the measured curve instead.
    """
    import pytest

    automaton = workload_automaton()
    docs = log_corpus(600)
    spanner = CompiledSpanner(automaton)
    list(spanner.stream(docs[0]))
    serial_s, serial_out = _timed_best(
        lambda: list(spanner.evaluate_many(docs))
    )
    with ParallelSpanner(spanner, workers=4, chunk_size=32) as engine:
        par_s, par_out = _timed_best(lambda: list(engine.evaluate_many(docs)))
    assert par_out == serial_out
    if available_cpus() < 4:
        pytest.skip(
            f"only {available_cpus()} cpu(s) available — "
            "speedup bound needs >= 4"
        )
    speedup = serial_s / par_s
    assert speedup >= 2.0, f"speedup {speedup:.2f}x below the 2x target"
