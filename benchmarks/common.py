"""Shared utilities for the benchmark harness."""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.vset import VSetAutomaton, compile_regex, rename_variables, union

__all__ = [
    "available_cpus",
    "fit_loglog_slope",
    "time_call",
    "Table",
    "grown_automaton",
    "sweep",
]


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    The benchmarks assert *shape*, not absolute numbers: a claimed
    ``O(x^d)`` bound should fit with slope at most ``d`` plus tolerance
    (measured growth may be milder than the worst case, never wilder).
    Zero/negative samples are clamped to a small epsilon.
    """
    pairs = [
        (math.log(max(x, 1e-12)), math.log(max(y, 1e-12)))
        for x, y in zip(xs, ys)
    ]
    n = len(pairs)
    if n < 2:
        raise ValueError("need at least two samples to fit a slope")
    mean_x = sum(p[0] for p in pairs) / n
    mean_y = sum(p[1] for p in pairs) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    var = sum((x - mean_x) ** 2 for x, _ in pairs)
    if var == 0:
        raise ValueError("x values are all equal")
    return cov / var


def time_call(fn: Callable[[], object], repeat: int = 1) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``fn()``."""
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class Table:
    """A printable experiment table (what the harness shows per exp)."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: object) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        out = [f"== {self.title} =="]
        widths = [
            max(
                len(str(h)),
                max((len(_fmt(r[i])) for r in self.rows), default=0),
            )
            for i, h in enumerate(self.headers)
        ]
        out.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        out.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            out.append(
                "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
            )
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 10000:
            return f"{value:.2e}"
        return f"{value:.4f}"
    return str(value)


def grown_automaton(base_pattern: str, copies: int) -> VSetAutomaton:
    """An automaton with ~``copies`` times the states of the base but the
    same spanner: the union of ``copies`` identical branches.

    This is the standard way to sweep the state count ``n`` while
    holding the answer set fixed, isolating the ``n``-dependence of
    Theorem 3.3's delay and preprocessing bounds.
    """
    base = compile_regex(base_pattern)
    return union([base] * copies)


def sweep(values: Iterable[object], fn: Callable[[object], Sequence[object]], table: Table) -> None:
    """Run ``fn`` per value, adding its returned row to ``table``."""
    for value in values:
        table.add(*fn(value))


def rename_for(base_pattern: str, mapping: dict[str, str]) -> VSetAutomaton:
    """Compile + rename helper used by join workloads."""
    return rename_variables(compile_regex(base_pattern), mapping)
