"""Experiment harness: ``python -m benchmarks.harness <exp-id|all>``.

Prints the paper-shaped tables for every experiment in the DESIGN.md
index.  Timing numbers are machine-dependent; the *shapes* (slopes,
orderings, crossovers) are what EXPERIMENTS.md records against the
paper's claims.

``--json PATH`` additionally writes machine-readable per-experiment
timings and tables, so CI runs can record ``BENCH_*.json`` performance
trajectories across commits (checked for regressions by
``benchmarks.check_regression``).  Each record also stamps the
process's peak RSS after the experiment (``peak_rss_kb``, and
``peak_rss_children_kb`` for the worker processes of the multiprocess
experiments), so the trajectory tracks memory alongside throughput.
The full record schema is documented in ``benchmarks/results/README.md``
— the single place to look up what each field means.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

from . import (
    bench_e1_delay,
    bench_e2_compile,
    bench_e3_functional,
    bench_e4_sat,
    bench_e5_clique,
    bench_e6_canonical,
    bench_e7_join,
    bench_e8_kucq,
    bench_e9_keyattr,
    bench_e10_equality,
    bench_e11_w1,
    bench_e12_strategies,
    bench_e13_runtime,
    fig1_ag,
)

EXPERIMENTS = {
    "E1": (bench_e1_delay, "Thm 3.3: polynomial-delay enumeration"),
    "E2": (bench_e2_compile, "Lemma 3.4: linear regex->vset compilation"),
    "E3": (bench_e3_functional, "Thms 2.4/2.7: functionality tests"),
    "E4": (bench_e4_sat, "Thm 3.1: 3CNF on a single character"),
    "E5": (bench_e5_clique, "Thm 3.2: gamma-acyclic clique hardness"),
    "E6": (bench_e6_canonical, "Thm 3.5: canonical strategy"),
    "E7": (bench_e7_join, "Lemma 3.10: join construction"),
    "E8": (bench_e8_kucq, "Thm 3.11: k-UCQ polynomial delay"),
    "E9": (bench_e9_keyattr, "Prop 3.6: key attributes"),
    "E10": (bench_e10_equality, "Thm 5.4/Cor 5.5: string equalities"),
    "E11": (bench_e11_w1, "Thm 5.2: W[1]-hardness in |q|"),
    "E12": (bench_e12_strategies, "strategy ablation"),
    "E13": (bench_e13_runtime, "compiled-spanner runtime amortization"),
    "F1": (fig1_ag, "Figure 1 / Appendix A.3 regeneration"),
}


def _jsonable(value: object) -> object:
    """Coerce a table cell to something ``json.dump`` accepts."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def _peak_rss_kb() -> tuple[int | None, int | None]:
    """Peak RSS of this process and of its reaped children, in KiB.

    ``ru_maxrss`` is a high-water mark, so per-experiment values are
    "peak so far" — monotonically non-decreasing across the run; the
    per-experiment deltas still show which experiment first pushed the
    ceiling.  Linux reports KiB (normalized here; macOS reports bytes).
    ``(None, None)`` where :mod:`resource` is unavailable.
    """
    if resource is None:
        return None, None
    scale = 1024 if sys.platform == "darwin" else 1
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // scale
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss // scale
    return own, children


def _git_sha() -> str | None:
    """The commit the timings describe (None outside a git checkout).

    Recorded in the ``--json`` payload so committed ``BENCH_*.json``
    trajectory files stay self-identifying even if renamed.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.harness",
        description="Reproduce the paper's per-theorem experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (E1..E13, F1) or 'all'",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write machine-readable per-experiment timings and tables",
    )
    args = parser.parse_args(argv)
    wanted = args.experiments
    if not wanted or "all" in wanted:
        wanted = list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    records = []
    for exp in wanted:
        module, description = EXPERIMENTS[exp]
        print(f"\n### {exp} — {description}")
        start = time.perf_counter()
        tables = []
        for table in module.run():
            tables.append(table)
            print()
            print(table.render())
        elapsed = time.perf_counter() - start
        peak_rss_kb, peak_rss_children_kb = _peak_rss_kb()
        print(f"\n[{exp} completed in {elapsed:.1f}s]")
        records.append(
            {
                "experiment": exp,
                "description": description,
                "seconds": elapsed,
                "peak_rss_kb": peak_rss_kb,
                "peak_rss_children_kb": peak_rss_children_kb,
                "tables": [
                    {
                        "title": table.title,
                        "headers": list(table.headers),
                        "rows": [
                            [_jsonable(v) for v in row] for row in table.rows
                        ],
                        "notes": list(table.notes),
                    }
                    for table in tables
                ],
            }
        )
    if args.json:
        payload = {
            "unix_time": time.time(),
            "git_sha": _git_sha(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "experiments": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\n[wrote {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
