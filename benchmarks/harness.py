"""Experiment harness: ``python -m benchmarks.harness <exp-id|all>``.

Prints the paper-shaped tables for every experiment in the DESIGN.md
index.  Timing numbers are machine-dependent; the *shapes* (slopes,
orderings, crossovers) are what EXPERIMENTS.md records against the
paper's claims.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    bench_e1_delay,
    bench_e2_compile,
    bench_e3_functional,
    bench_e4_sat,
    bench_e5_clique,
    bench_e6_canonical,
    bench_e7_join,
    bench_e8_kucq,
    bench_e9_keyattr,
    bench_e10_equality,
    bench_e11_w1,
    bench_e12_strategies,
    fig1_ag,
)

EXPERIMENTS = {
    "E1": (bench_e1_delay, "Thm 3.3: polynomial-delay enumeration"),
    "E2": (bench_e2_compile, "Lemma 3.4: linear regex->vset compilation"),
    "E3": (bench_e3_functional, "Thms 2.4/2.7: functionality tests"),
    "E4": (bench_e4_sat, "Thm 3.1: 3CNF on a single character"),
    "E5": (bench_e5_clique, "Thm 3.2: gamma-acyclic clique hardness"),
    "E6": (bench_e6_canonical, "Thm 3.5: canonical strategy"),
    "E7": (bench_e7_join, "Lemma 3.10: join construction"),
    "E8": (bench_e8_kucq, "Thm 3.11: k-UCQ polynomial delay"),
    "E9": (bench_e9_keyattr, "Prop 3.6: key attributes"),
    "E10": (bench_e10_equality, "Thm 5.4/Cor 5.5: string equalities"),
    "E11": (bench_e11_w1, "Thm 5.2: W[1]-hardness in |q|"),
    "E12": (bench_e12_strategies, "strategy ablation"),
    "F1": (fig1_ag, "Figure 1 / Appendix A.3 regeneration"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.harness",
        description="Reproduce the paper's per-theorem experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (E1..E12, F1) or 'all'",
    )
    args = parser.parse_args(argv)
    wanted = args.experiments
    if not wanted or "all" in wanted:
        wanted = list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    for exp in wanted:
        module, description = EXPERIMENTS[exp]
        print(f"\n### {exp} — {description}")
        start = time.perf_counter()
        for table in module.run():
            print()
            print(table.render())
        print(f"\n[{exp} completed in {time.perf_counter() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
