"""E3 — Theorems 2.4 / 2.7: functionality tests are fast.

Claims: regex-formula functionality is testable in ``O(|alpha| v)``
(Theorem 2.4); vset-automaton functionality in ``O(vm + n)``
(Theorem 2.7).

Series reproduced: test time as the formula / automaton grows, for both
functional and non-functional inputs; slopes ~1.
"""

from __future__ import annotations

from repro.regex import check_functional, parse
from repro.vset import check_vset_functional, compile_regex

from .common import Table, fit_loglog_slope, grown_automaton, time_call


def _functional_source(blocks: int) -> str:
    return "x{" + "(ab|ba)" * blocks + "}c*"


def _nonfunctional_source(blocks: int) -> str:
    # The variable clash sits at the very end: the syntactic test still
    # walks the whole tree.
    return "x{" + "(ab|ba)" * blocks + "}x{a}"


def run() -> list[Table]:
    regex_table = Table(
        "E3a  regex functionality test (Theorem 2.4)",
        ["|alpha|", "functional", "time (s)"],
    )
    sizes, times = [], []
    for blocks in (16, 64, 256, 1024):
        for source_fn, expected in (
            (_functional_source, True),
            (_nonfunctional_source, False),
        ):
            formula = parse(source_fn(blocks))
            elapsed = time_call(
                lambda f=formula: check_functional(f), repeat=3
            )
            verdict = check_functional(formula).functional
            assert verdict is expected
            regex_table.add(formula.size(), verdict, elapsed)
            if expected:
                sizes.append(formula.size())
                times.append(elapsed)
    regex_table.note(
        f"time slope vs |alpha|: {fit_loglog_slope(sizes, times):.2f} "
        "(claim: ~1.0)"
    )

    vset_table = Table(
        "E3b  vset functionality test (Theorem 2.7)",
        ["states n", "transitions m", "time (s)"],
    )
    ns, vtimes = [], []
    for copies in (2, 8, 32, 128):
        automaton = grown_automaton("a*x{(a|b)*}b*", copies)
        elapsed = time_call(
            lambda a=automaton: check_vset_functional(a), repeat=3
        )
        assert check_vset_functional(automaton).functional
        ns.append(automaton.n_states)
        vtimes.append(elapsed)
        vset_table.add(automaton.n_states, automaton.n_transitions, elapsed)
    vset_table.note(
        f"time slope vs n: {fit_loglog_slope(ns, vtimes):.2f} (claim: ~1.0)"
    )
    return [regex_table, vset_table]


def test_e3_regex_functionality(benchmark):
    formula = parse(_functional_source(256))
    report = benchmark(lambda: check_functional(formula))
    assert report.functional


def test_e3_vset_functionality(benchmark):
    automaton = grown_automaton("a*x{(a|b)*}b*", 32)
    report = benchmark(lambda: check_vset_functional(automaton))
    assert report.functional


def test_e3_near_linear_shape():
    sizes, times = [], []
    for blocks in (32, 128, 512):
        formula = parse(_functional_source(blocks))
        sizes.append(formula.size())
        times.append(time_call(lambda f=formula: check_functional(f), repeat=3))
    assert fit_loglog_slope(sizes, times) < 1.8
