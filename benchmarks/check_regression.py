"""Perf-trajectory regression alerting: ``python -m benchmarks.check_regression``.

CI commits one ``benchmarks/results/BENCH_<sha>.json`` per main-branch
push (the perf-trajectory job).  This checker turns that history into a
gate: it extracts a throughput metric from the **newest** record,
compares it against the median of a trailing window of earlier records,
and exits nonzero when the newest value regresses by more than the
threshold (default: >30% docs/sec loss in E13's compiled-runtime
table).

The metric is the median of the ``compiled docs/s`` column of the E13a
table — median over both the corpus sizes and the baseline window, so
one noisy row or one noisy historical run cannot flip the verdict.
With fewer than two records the check passes trivially (no baseline
yet): the gate only starts to bind once a trajectory exists.

Timing on shared CI runners is noisy; 30% is deliberately far above
run-to-run jitter (single-digit percents on the E13 workload) so the
check only fires on real regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from statistics import median

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parent / "results"
DEFAULT_EXPERIMENT = "E13"
DEFAULT_TABLE_PREFIX = "E13a"
DEFAULT_METRIC_COLUMN = "compiled docs/s"
DEFAULT_THRESHOLD = 0.30
DEFAULT_WINDOW = 5


def extract_metric(
    record: dict,
    experiment: str = DEFAULT_EXPERIMENT,
    table_prefix: str = DEFAULT_TABLE_PREFIX,
    column: str = DEFAULT_METRIC_COLUMN,
) -> float | None:
    """The throughput metric of one ``BENCH_*.json`` payload.

    Median of ``column`` over the rows of the first ``experiment``
    table whose title starts with ``table_prefix``; ``None`` when the
    record predates the experiment/table/column (old layouts must not
    crash the gate — they are simply not comparable).
    """
    for exp in record.get("experiments", ()):
        if exp.get("experiment") != experiment:
            continue
        for table in exp.get("tables", ()):
            if not str(table.get("title", "")).startswith(table_prefix):
                continue
            headers = list(table.get("headers", ()))
            if column not in headers:
                return None
            idx = headers.index(column)
            values = [
                float(row[idx])
                for row in table.get("rows", ())
                if isinstance(row[idx], (int, float))
            ]
            return median(values) if values else None
    return None


def load_records(results_dir: Path) -> list[tuple[str, dict]]:
    """``(name, payload)`` for every BENCH_*.json, oldest first.

    Ordered by the recorded ``unix_time`` (fall back to file mtime), so
    renamed or re-committed files still line up chronologically.
    """
    records = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            print(f"warning: skipping unreadable {path.name}: {err}")
            continue
        stamp = payload.get("unix_time")
        if not isinstance(stamp, (int, float)):
            stamp = path.stat().st_mtime
        records.append((stamp, path.name, payload))
    records.sort(key=lambda item: item[0])
    return [(name, payload) for _stamp, name, payload in records]


def check(
    results_dir: Path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    experiment: str = DEFAULT_EXPERIMENT,
    table_prefix: str = DEFAULT_TABLE_PREFIX,
    column: str = DEFAULT_METRIC_COLUMN,
) -> int:
    """Exit code 0 = pass (or no baseline), 1 = regression, 2 = usage."""
    if not results_dir.is_dir():
        print(f"error: results dir {results_dir} does not exist")
        return 2
    records = load_records(results_dir)
    if len(records) < 2:
        print(
            f"perf-trajectory: {len(records)} record(s) in {results_dir} — "
            "no baseline yet, passing trivially"
        )
        return 0
    newest_name, newest = records[-1]
    newest_metric = extract_metric(newest, experiment, table_prefix, column)
    if newest_metric is None:
        print(
            f"error: newest record {newest_name} has no "
            f"{experiment}/{table_prefix!r}/{column!r} metric"
        )
        return 2
    baseline_values = []
    baseline_names = []
    for name, payload in records[-(window + 1) : -1]:
        value = extract_metric(payload, experiment, table_prefix, column)
        if value is not None:
            baseline_values.append(value)
            baseline_names.append(name)
    if not baseline_values:
        print(
            "perf-trajectory: no comparable baseline records in the "
            "trailing window — passing trivially"
        )
        return 0
    baseline = median(baseline_values)
    floor = baseline * (1.0 - threshold)
    verdict = "OK" if newest_metric >= floor else "REGRESSION"
    print(
        f"perf-trajectory [{experiment} {column}]: newest "
        f"{newest_name} = {newest_metric:.1f}, baseline median of "
        f"{len(baseline_values)} record(s) = {baseline:.1f}, floor "
        f"(-{threshold:.0%}) = {floor:.1f} -> {verdict}"
    )
    if verdict == "REGRESSION":
        print(f"  baseline window: {', '.join(baseline_names)}")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.check_regression",
        description=(
            "Fail when the newest BENCH_<sha>.json regresses the E13 "
            "compiled-runtime docs/sec by more than the threshold "
            "against a trailing-window median."
        ),
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_DIR,
        help="directory holding BENCH_*.json records",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional regression that fails the check (default 0.30)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help="how many trailing records form the baseline (default 5)",
    )
    parser.add_argument("--experiment", default=DEFAULT_EXPERIMENT)
    parser.add_argument("--table-prefix", default=DEFAULT_TABLE_PREFIX)
    parser.add_argument("--column", default=DEFAULT_METRIC_COLUMN)
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")
    if args.window < 1:
        parser.error("--window must be >= 1")
    return check(
        args.results_dir,
        threshold=args.threshold,
        window=args.window,
        experiment=args.experiment,
        table_prefix=args.table_prefix,
        column=args.column,
    )


if __name__ == "__main__":
    sys.exit(main())
