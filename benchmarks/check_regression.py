"""Perf-trajectory regression alerting: ``python -m benchmarks.check_regression``.

CI commits one ``benchmarks/results/BENCH_<sha>.json`` per main-branch
push (the perf-trajectory job).  This checker turns that history into a
**multi-metric gate**: for each gate below it extracts a metric from
the newest record, compares it against the median of a trailing window
of earlier records, and exits nonzero when the newest value regresses
by more than the threshold (default 30%) in the metric's bad direction.

Default gates:

* ``e13-docs-per-sec`` — median ``compiled docs/s`` of the E13a table
  (higher is better): the compiled-runtime throughput gate since PR 3.
* ``e10d-fused-seconds`` — median ``fused (s)`` of the E10d table
  (lower is better): the fused equality join must not silently slide
  back toward materializing ``A_eq``.
* ``e13j-fused-speedup`` — median ``fused speedup`` of the E13j table
  (higher is better): fused multi-query serving must keep beating Q
  sequential scans; a slide toward 1.0 means the one-pass sweep lost
  its sharing advantage.
* ``peak-rss-kib`` / ``peak-rss-children-kib`` — the run's peak
  resident-set high-water marks (max over the recorded experiments;
  lower is better): the memory trajectory PR 3 started stamping.

Every gate takes its metric's median over both the table rows and the
baseline window, so one noisy row or one noisy historical run cannot
flip the verdict.  **Old records are never an error**: a record that
predates an experiment, table, column or RSS field is simply not
comparable — it contributes nothing to that gate's baseline.  If the
*newest* record lacks a newer gate's metric the gate is skipped with
a notice (the E10/RSS gates only start to bind once the trajectory
contains data for them); the long-standing E13 gate is *required* —
its absence from the newest record means the table/column was renamed
or the experiment dropped, and exits 2 rather than silently disabling
the gate.  The RSS gates additionally only compare records that ran
the **same experiment set** (peak RSS is a process-lifetime high-water
mark, so adding an experiment to the trajectory job legitimately
raises it — that resets the baseline instead of tripping the gate).
With fewer than two records — including a missing or empty results
directory, the state of a freshly reset trajectory's first run —
the gate is skipped with a clear message and exit 0, never a crash.

Besides the gates, the checker reports (informationally, never as an
exit-code failure) the newest record's fleet fault counters — the
``timeouts`` / ``quarantines`` columns of the E13g table — its
resource-governance counters — the ``degraded`` / ``truncated``
columns of the E13h table — and its durable-store counters — the
``hits`` / ``corrupt`` / ``orphans`` columns of the E13i table.  All
three runs are the healthy path, so every fault counter must read 0
(and E13i's ``hits`` must be nonzero); a nonzero total flags the
record's timings as contaminated by deadline retries (E13g), limit
trips (E13h) or cache/crash recovery work (E13i).  Records predating
a table simply skip that report.

Timing on shared CI runners is noisy; 30% is deliberately far above
run-to-run jitter (single-digit percents on these workloads) so the
check only fires on real regressions.

The record schema the gates read is documented in
``benchmarks/results/README.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Callable

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parent / "results"
DEFAULT_THRESHOLD = 0.30
DEFAULT_WINDOW = 5

#: Directions: "higher" = throughput-like (a drop is a regression),
#: "lower" = cost-like (a rise is a regression).
HIGHER, LOWER = "higher", "lower"


def table_metric(
    record: dict, experiment: str, table_prefix: str, column: str
) -> float | None:
    """Median of ``column`` over the rows of one experiment table.

    ``None`` when the record predates the experiment/table/column (old
    layouts must not crash the gate — they are simply not comparable).
    """
    for exp in record.get("experiments", ()):
        if exp.get("experiment") != experiment:
            continue
        for table in exp.get("tables", ()):
            if not str(table.get("title", "")).startswith(table_prefix):
                continue
            headers = list(table.get("headers", ()))
            if column not in headers:
                return None
            idx = headers.index(column)
            values = [
                float(row[idx])
                for row in table.get("rows", ())
                if isinstance(row[idx], (int, float))
            ]
            return median(values) if values else None
    return None


def table_total(
    record: dict, experiment: str, table_prefix: str, column: str
) -> float | None:
    """Sum of ``column`` over the rows of one experiment table.

    Counter columns (timeouts fired, queries quarantined) aggregate by
    total, not median — one bad row must not be voted away.  ``None``
    when the record predates the experiment/table/column.
    """
    for exp in record.get("experiments", ()):
        if exp.get("experiment") != experiment:
            continue
        for table in exp.get("tables", ()):
            if not str(table.get("title", "")).startswith(table_prefix):
                continue
            headers = list(table.get("headers", ()))
            if column not in headers:
                return None
            idx = headers.index(column)
            values = [
                float(row[idx])
                for row in table.get("rows", ())
                if isinstance(row[idx], (int, float))
            ]
            return sum(values) if values else None
    return None


#: Fault-tolerance counters stamped into the E13g table since PR 6.
FLEET_COUNTER_COLUMNS = ("timeouts", "quarantines")

#: Resource-governance counters stamped into the E13h table since PR 7.
RESOURCE_COUNTER_COLUMNS = ("degraded", "truncated")


def report_fleet_counters(records: list[tuple[str, dict]]) -> None:
    """Informational: the newest record's fleet fault counters.

    The E13g table runs the healthy path with deadlines enabled, so
    both counters must read 0; a nonzero value means deadlines tripped
    *during the benchmark run* and its timings include retries.  That
    is a data-quality notice for whoever reads the trajectory — never
    an exit-code failure, and records predating E13g stay silent.
    """
    newest_name, newest = records[-1]
    totals = {
        column: table_total(newest, "E13", "E13g", column)
        for column in FLEET_COUNTER_COLUMNS
    }
    if all(value is None for value in totals.values()):
        return  # record predates the E13g table
    rendered = ", ".join(
        f"{column}={int(value or 0)}" for column, value in totals.items()
    )
    print(f"perf-trajectory [fleet-counters]: newest {newest_name}: {rendered}")
    if any(value for value in totals.values()):
        print(
            "  notice: nonzero fault counters — deadlines tripped during "
            "the benchmark run, so its fleet timings include retries; "
            "treat this record's throughput numbers with suspicion"
        )


def report_resource_counters(records: list[tuple[str, dict]]) -> None:
    """Informational: the newest record's governance counters.

    The E13h table arms every resource limit at values far above the
    workload, so both counters must read 0; a nonzero value means a
    limit tripped *during the benchmark run* — its "on" timings then
    include pipe fallbacks or truncated enumerations and the measured
    overhead is not the healthy-path cost.  A data-quality notice for
    the trajectory reader — never an exit-code failure, and records
    predating E13h stay silent.
    """
    newest_name, newest = records[-1]
    totals = {
        column: table_total(newest, "E13", "E13h", column)
        for column in RESOURCE_COUNTER_COLUMNS
    }
    if all(value is None for value in totals.values()):
        return  # record predates the E13h table
    rendered = ", ".join(
        f"{column}={int(value or 0)}" for column, value in totals.items()
    )
    print(
        f"perf-trajectory [resource-counters]: newest {newest_name}: "
        f"{rendered}"
    )
    if any(value for value in totals.values()):
        print(
            "  notice: nonzero governance counters — a resource limit "
            "tripped during the benchmark run, so its governed timings "
            "include degraded transport or truncated results; the "
            "measured overhead is not the healthy-path cost"
        )


#: Durable-store health counters stamped into the E13i table since PR 8.
STORE_COUNTER_COLUMNS = ("hits", "corrupt", "orphans")


def report_store_counters(records: list[tuple[str, dict]]) -> None:
    """Informational: the newest record's durable-store counters.

    The E13i table registers each query once cold and once warm through
    a fresh FileStore, so ``hits`` must equal the number of rows while
    ``corrupt`` and ``orphans`` must read 0 — a nonzero ``corrupt``
    means the benchmark revived (and silently recompiled past) a
    damaged cache entry, and a nonzero ``orphans`` means the runner's
    ``/dev/shm`` held leftovers of an earlier crashed run that the
    startup sweep had to reap.  Either way the warm timings are
    contaminated by recovery work.  A data-quality notice for the
    trajectory reader — never an exit-code failure, and records
    predating E13i stay silent.
    """
    newest_name, newest = records[-1]
    totals = {
        column: table_total(newest, "E13", "E13i", column)
        for column in STORE_COUNTER_COLUMNS
    }
    if all(value is None for value in totals.values()):
        return  # record predates the E13i table
    rendered = ", ".join(
        f"{column}={int(value or 0)}" for column, value in totals.items()
    )
    print(f"perf-trajectory [store-counters]: newest {newest_name}: {rendered}")
    if totals.get("corrupt") or totals.get("orphans"):
        print(
            "  notice: nonzero store recovery counters — the benchmark "
            "quarantined corrupt cache entries or swept crash-orphaned "
            "shm segments mid-run, so its warm-register timings include "
            "recovery work, not just the fingerprint-hit cost"
        )


def report_backend_comparison(records: list[tuple[str, dict]]) -> None:
    """Informational: the newest record's E13k backend head-to-head.

    Which compute backend wins the E13a workload depends on the
    interpreter build (GIL vs free-threaded), the core count and the
    document mix — machine-dependent by design, so this is surfaced
    for the trajectory reader rather than gated (every cell is already
    asserted byte-identical inside the benchmark itself).  Records
    predating E13k stay silent.
    """
    newest_name, newest = records[-1]
    for exp in newest.get("experiments", ()):
        if exp.get("experiment") != "E13":
            continue
        for table in exp.get("tables", ()):
            if not str(table.get("title", "")).startswith("E13k"):
                continue
            headers = list(table.get("headers", ()))
            try:
                cols = [headers.index(c) for c in
                        ("backend", "workers", "docs/s")]
            except ValueError:
                return
            cells = ", ".join(
                f"{row[cols[0]]}@{row[cols[1]]}w="
                f"{float(row[cols[2]]):.0f} docs/s"
                for row in table.get("rows", ())
                if isinstance(row[cols[2]], (int, float))
            )
            print(
                f"perf-trajectory [backend-comparison]: newest "
                f"{newest_name}: {cells}"
            )
            return


def rss_metric(record: dict, field: str) -> float | None:
    """The run's peak RSS: max of ``field`` over the experiments.

    ``ru_maxrss`` is a process-lifetime high-water mark, so the last
    experiment's value dominates anyway; the max is robust to record
    ordering.  ``None`` when no experiment carries the field (records
    predating PR 3, or non-POSIX runners where it is recorded as
    null).
    """
    values = [
        float(exp[field])
        for exp in record.get("experiments", ())
        if isinstance(exp.get(field), (int, float))
    ]
    return max(values) if values else None


def _experiment_ids(record: dict) -> frozenset:
    return frozenset(
        exp.get("experiment") for exp in record.get("experiments", ())
    )


def _same_experiment_set(newest: dict, baseline: dict) -> bool:
    """Whether two records measured the same experiment set.

    Process-lifetime metrics (peak RSS is an ``ru_maxrss`` high-water
    mark over the whole harness run) are only comparable between runs
    that executed the same experiments — adding an experiment to the
    trajectory job legitimately raises the peak, and must reset the
    baseline rather than read as a regression.
    """
    return _experiment_ids(newest) == _experiment_ids(baseline)


@dataclass(frozen=True)
class Gate:
    """One metric watched across the trajectory.

    ``required``: the metric must exist in the newest record — its
    absence is a configuration error (exit 2), not a skip.  The
    long-standing E13 gate is required so that renaming its table or
    column cannot silently disable the throughput gate; the newer
    gates skip instead, because trajectories genuinely predate them.

    ``comparable``: optional predicate restricting which baseline
    records the newest record may be compared against.
    """

    name: str
    direction: str  # HIGHER: drops fail; LOWER: rises fail
    extract: Callable[[dict], float | None]
    unit: str = ""
    required: bool = False
    comparable: Callable[[dict, dict], bool] | None = None

    def bound(self, baseline: float, threshold: float) -> float:
        """The worst acceptable newest value for ``baseline``."""
        if self.direction == HIGHER:
            return baseline * (1.0 - threshold)
        return baseline * (1.0 + threshold)

    def regressed(self, newest: float, bound: float) -> bool:
        if self.direction == HIGHER:
            return newest < bound
        return newest > bound


def default_gates() -> list[Gate]:
    return [
        Gate(
            "e13-docs-per-sec",
            HIGHER,
            lambda r: table_metric(r, "E13", "E13a", "compiled docs/s"),
            unit="docs/s",
            required=True,  # recorded since PR 1: absence = breakage
        ),
        Gate(
            "e10d-fused-seconds",
            LOWER,
            lambda r: table_metric(r, "E10", "E10d", "fused (s)"),
            unit="s",
        ),
        Gate(
            "e13j-fused-speedup",
            HIGHER,
            lambda r: table_metric(r, "E13", "E13j", "fused speedup"),
            unit="x",
        ),
        Gate(
            "peak-rss-kib",
            LOWER,
            lambda r: rss_metric(r, "peak_rss_kb"),
            unit="KiB",
            comparable=_same_experiment_set,
        ),
        Gate(
            "peak-rss-children-kib",
            LOWER,
            lambda r: rss_metric(r, "peak_rss_children_kb"),
            unit="KiB",
            comparable=_same_experiment_set,
        ),
    ]


def load_records(results_dir: Path) -> list[tuple[str, dict]]:
    """``(name, payload)`` for every BENCH_*.json, oldest first.

    Ordered by the recorded ``unix_time`` (fall back to file mtime), so
    renamed or re-committed files still line up chronologically.
    """
    records = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            print(f"warning: skipping unreadable {path.name}: {err}")
            continue
        stamp = payload.get("unix_time")
        if not isinstance(stamp, (int, float)):
            stamp = path.stat().st_mtime
        records.append((stamp, path.name, payload))
    records.sort(key=lambda item: item[0])
    return [(name, payload) for _stamp, name, payload in records]


def check_gate(
    gate: Gate,
    records: list[tuple[str, dict]],
    *,
    threshold: float,
    window: int,
) -> str:
    """Run one gate over the trajectory: "ok", "regression" or "error"."""
    newest_name, newest = records[-1]
    newest_metric = gate.extract(newest)
    if newest_metric is None:
        if gate.required:
            print(
                f"error: newest record {newest_name} does not record the "
                f"required {gate.name} metric — the gate's table/column "
                "was renamed or the experiment dropped"
            )
            return "error"
        print(
            f"perf-trajectory [{gate.name}]: newest record {newest_name} "
            "does not record this metric — skipping (not comparable)"
        )
        return "ok"
    baseline_values = []
    baseline_names = []
    for name, payload in records[-(window + 1) : -1]:
        if gate.comparable is not None and not gate.comparable(
            newest, payload
        ):
            continue
        value = gate.extract(payload)
        if value is not None:
            baseline_values.append(value)
            baseline_names.append(name)
    if not baseline_values:
        print(
            f"perf-trajectory [{gate.name}]: no comparable baseline "
            "records in the trailing window — passing trivially"
        )
        return "ok"
    baseline = median(baseline_values)
    bound = gate.bound(baseline, threshold)
    regressed = gate.regressed(newest_metric, bound)
    verdict = "REGRESSION" if regressed else "OK"
    sign = "-" if gate.direction == HIGHER else "+"
    print(
        f"perf-trajectory [{gate.name}]: newest {newest_name} = "
        f"{newest_metric:.1f} {gate.unit}, baseline median of "
        f"{len(baseline_values)} record(s) = {baseline:.1f}, "
        f"bound ({sign}{threshold:.0%}) = {bound:.1f} -> {verdict}"
    )
    if regressed:
        print(f"  baseline window: {', '.join(baseline_names)}")
    return "regression" if regressed else "ok"


def check(
    results_dir: Path,
    *,
    gates: list[Gate] | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> int:
    """Exit code 0 = all gates pass (or no baseline), 1 = any regression,
    2 = usage error."""
    if not results_dir.is_dir():
        # A freshly reset trajectory has no results directory at all;
        # the gate's job on that first run is to skip loudly, not to
        # crash the CI job that would produce the first record.
        print(
            f"perf-trajectory: no results dir at {results_dir} — "
            "no prior records, gate skipped"
        )
        return 0
    records = load_records(results_dir)
    if records:
        report_fleet_counters(records)
        report_resource_counters(records)
        report_store_counters(records)
        report_backend_comparison(records)
    if len(records) < 2:
        print(
            f"perf-trajectory: {len(records)} record(s) in {results_dir} — "
            "no baseline yet, gate skipped (passing trivially)"
        )
        return 0
    if gates is None:
        gates = default_gates()
    failures = []
    for gate in gates:
        verdict = check_gate(
            gate, records, threshold=threshold, window=window
        )
        if verdict == "error":
            return 2
        if verdict == "regression":
            failures.append(gate.name)
    if failures:
        print(f"perf-trajectory: FAILED gates: {', '.join(failures)}")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.check_regression",
        description=(
            "Fail when the newest BENCH_<sha>.json regresses E13 "
            "docs/sec, E10d fused timings or peak RSS by more than the "
            "threshold against a trailing-window median."
        ),
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_DIR,
        help="directory holding BENCH_*.json records",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional regression that fails the check (default 0.30)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help="how many trailing records form the baseline (default 5)",
    )
    parser.add_argument(
        "--experiment",
        help="run a single custom table gate over this experiment id "
        "instead of the default gate set",
    )
    parser.add_argument(
        "--table-prefix",
        help="table-title prefix for the custom gate (e.g. E13a)",
    )
    parser.add_argument(
        "--column", help="metric column name for the custom gate"
    )
    parser.add_argument(
        "--direction",
        choices=(HIGHER, LOWER),
        default=HIGHER,
        help="which way the custom gate's metric regresses "
        "(default: higher-is-better)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")
    if args.window < 1:
        parser.error("--window must be >= 1")
    custom = (args.experiment, args.table_prefix, args.column)
    gates: list[Gate] | None = None
    if any(v is not None for v in custom):
        if not all(v is not None for v in custom):
            parser.error(
                "--experiment, --table-prefix and --column must be "
                "given together"
            )
        gates = [
            Gate(
                f"{args.experiment}/{args.table_prefix}/{args.column}",
                args.direction,
                lambda r: table_metric(
                    r, args.experiment, args.table_prefix, args.column
                ),
                # An explicitly requested metric missing from the
                # newest record is a usage error, as it always was.
                required=True,
            )
        ]
    return check(
        args.results_dir,
        gates=gates,
        threshold=args.threshold,
        window=args.window,
    )


if __name__ == "__main__":
    sys.exit(main())
