"""E8 — Theorem 3.11: regex k-UCQs evaluate with polynomial delay.

Workload: for k = 1, 2, 3, a k-CQ joining k token extractors, compiled
to a single automaton and streamed on growing corpora.

Series reproduced: per-answer max delay vs |s| for each fixed k (claim:
polynomial for every fixed k; the compilation cost moves into
preprocessing), plus the union path of Lemma 3.9 (UCQ of several CQs).
"""

from __future__ import annotations

from repro.enumeration.instrumentation import measure_generator_delays
from repro.queries import CompiledEvaluator, RegexCQ, RegexUCQ
from repro.text import sentences

from .common import Table, fit_loglog_slope

_WORDS = ("police", "report", "station")


def _k_cq(k: int) -> RegexCQ:
    atoms = [
        f"(ε|.*[^a-z])v{i}{{{word}}}([^a-z].*|ε)"
        for i, word in enumerate(_WORDS[:k])
    ]
    return RegexCQ([f"v{i}" for i in range(k)], atoms)


def _corpus(n_sentences: int) -> str:
    # Guarantee every keyword occurs so all sizes produce answers.
    base = sentences(
        n_sentences, seed=2, plant_keyword="police",
        plant_addresses=n_sentences // 3,
    )
    return base + " the police report reached the station."


def run() -> list[Table]:
    table = Table(
        "E8  k-UCQ polynomial delay (Theorem 3.11)",
        ["k", "|s|", "answers", "prep (s)", "max delay (s)"],
    )
    for k in (1, 2, 3):
        query = _k_cq(k)
        evaluator = CompiledEvaluator()
        lengths, delays = [], []
        for n_sentences in (6, 12, 24):
            corpus = _corpus(n_sentences)
            report = measure_generator_delays(
                lambda e=evaluator, q=query, c=corpus: e.prepare(q, c)
            )
            lengths.append(len(corpus))
            delays.append(max(report.max_delay, 1e-9))
            table.add(
                k,
                len(corpus),
                report.count,
                report.preprocessing_seconds,
                report.max_delay,
            )
        slope = fit_loglog_slope(lengths, delays)
        table.note(f"k={k}: max-delay slope vs |s| = {slope:.2f} (polynomial)")

    union_table = Table(
        "E8b  UCQ with unbounded union width (Lemma 3.9)",
        ["disjuncts", "answers", "max delay (s)"],
    )
    corpus = sentences(10, seed=3, plant_keyword="police")
    for width in (1, 2, 3):
        disjuncts = [
            RegexCQ(["v0"], [f"(ε|.*[^a-z])v0{{{word}}}([^a-z].*|ε)"])
            for word in _WORDS[:width]
        ]
        ucq = RegexUCQ(disjuncts)
        evaluator = CompiledEvaluator()
        report = measure_generator_delays(
            lambda e=evaluator, q=ucq, c=corpus: e.stream(q, c)
        )
        union_table.add(width, report.count, report.max_delay)
    union_table.note("union width is unbounded in Theorem 3.11 — only the "
                     "per-disjunct atom count k matters")
    return [table, union_table]


def test_e8_k2_stream(benchmark):
    corpus = sentences(8, seed=2, plant_keyword="police")
    query = _k_cq(2)
    evaluator = CompiledEvaluator()
    count = benchmark(lambda: sum(1 for _ in evaluator.stream(query, corpus)))
    assert count >= 0


def test_e8_delay_polynomial_shape():
    query = _k_cq(2)
    evaluator = CompiledEvaluator()
    lengths, delays = [], []
    for n_sentences in (6, 12, 24):
        corpus = _corpus(n_sentences)
        report = measure_generator_delays(
            lambda c=corpus: evaluator.prepare(query, c)
        )
        lengths.append(len(corpus))
        delays.append(max(report.max_delay, 1e-9))
    assert fit_loglog_slope(lengths, delays) < 3.5
