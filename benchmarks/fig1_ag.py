"""F1 — Figure 1 and Appendix A.3: regenerating the NFA ``A_G``.

The paper's only figure shows ``A_G`` for the automaton of
``a* x{a*} a*`` on ``s = aa`` (Example 4.3), with the full run tables
for ``s = aaa`` in Example A.1 and the nondeterministic variant in
Example A.2.  This module rebuilds those artifacts from the engine's
own data structures and checks their shapes.
"""

from __future__ import annotations

from repro.alphabet import char_pred, close_marker, open_marker
from repro.automata.nfa import NFA
from repro.enumeration import SpannerEvaluator, build_evaluation_graph
from repro.spans import Span, SpanTuple
from repro.vset import VSetAutomaton, compile_regex

from .common import Table


def paper_a_fun() -> VSetAutomaton:
    """The exact 3-state automaton A_fun of Examples 2.6 / 4.1."""
    nfa = NFA()
    q0, q1, qf = nfa.add_state(), nfa.add_state(), nfa.add_state()
    nfa.set_initial(q0)
    nfa.add_final(qf)
    nfa.add_transition(q0, char_pred("a"), q0)
    nfa.add_transition(q0, open_marker("x"), q1)
    nfa.add_transition(q1, char_pred("a"), q1)
    nfa.add_transition(q1, close_marker("x"), qf)
    nfa.add_transition(qf, char_pred("a"), qf)
    return VSetAutomaton(nfa, {"x"})


def run() -> list[Table]:
    tables = []

    # -- Figure 1 / Example 4.3: A_G for A_fun on "aa" ----------------------
    automaton = paper_a_fun()
    graph = build_evaluation_graph(automaton, "aa")
    leveled = graph.leveled
    fig = Table(
        "F1  A_G for a*x{a*}a* on s = 'aa' (Figure 1 / Example 4.3)",
        ["level", "nodes", "edges out", "labels seen"],
    )
    per_level_nodes: dict[int, list[int]] = {}
    for node in sorted(leveled.live_nodes()):
        per_level_nodes.setdefault(leveled.level_of[node], []).append(node)
    for level in sorted(per_level_nodes):
        nodes = per_level_nodes[level]
        edges = sum(len(leveled.out_edges[v]) for v in nodes)
        labels = sorted(
            {
                str(label)
                for v in nodes
                for label, _ in leveled.out_edges[v]
            }
        )
        fig.add(level, len(nodes), edges, " ".join(labels))
    fig.note("paper: levels 0..2 hold {w,o,c}-labelled states, level 3 only c")
    tables.append(fig)

    # -- Example 4.2: the six tuples on "aa" --------------------------------
    table42 = Table(
        "Example 4.2  [[A_fun]]('aa') with configuration words",
        ["mu(x)", "c1 c2 c3"],
    )
    evaluator = SpannerEvaluator(paper_a_fun(), "aa")
    for word in evaluator.configuration_words():
        mu = SpanTuple(
            {"x": _decode_span(word)}
        )
        table42.add(str(mu["x"]), " ".join(str(k) for k in word))
    tables.append(table42)

    # -- Example A.2: exponential paths, single tuple -----------------------
    a2 = compile_regex("x{(a|aa)*}")
    s = "aaa"
    got = list(SpannerEvaluator(a2, s))
    tableA2 = Table(
        "Example A.2  x{(a|aa)*} on 'aaa': many paths, one tuple",
        ["answers", "tuple"],
    )
    tableA2.add(len(got), repr(got[0]))
    assert got == [SpanTuple({"x": Span(1, 4)})]
    tables.append(tableA2)
    return tables


def _decode_span(word) -> Span:
    from repro.vset.configurations import CLOSED, WAITING

    start = next(i for i, k in enumerate(word) if k.of("x") != WAITING) + 1
    end = next(i for i, k in enumerate(word) if k.of("x") == CLOSED) + 1
    return Span(start, end)


def test_f1_figure_shape():
    """A_G on 'aa' matches Figure 1: 3+3+3 inner nodes, one accepting."""
    automaton = paper_a_fun()
    graph = build_evaluation_graph(automaton, "aa")
    leveled = graph.leveled
    sizes = {}
    for node in leveled.live_nodes():
        if node == leveled.ROOT:
            continue
        sizes[leveled.level_of[node]] = sizes.get(leveled.level_of[node], 0) + 1
    # Levels 1 and 2 carry the three states (w/o/c); level 3 only q_f.
    assert sizes[1] == 3
    assert sizes[2] == 3
    assert sizes[3] == 1
    assert leveled.count_words() == 6


def test_f1_example_42_table():
    automaton = compile_regex("a*x{a*}a*")
    got = sorted(
        (mu["x"].start, mu["x"].end)
        for mu in SpannerEvaluator(automaton, "aa")
    )
    assert got == [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)]


def test_f1_example_a2(benchmark):
    a2 = compile_regex("x{(a|aa)*}")
    result = benchmark(lambda: list(SpannerEvaluator(a2, "a" * 12)))
    assert result == [SpanTuple({"x": Span(1, 13)})]
