"""E4 — Theorem 3.1: 3CNF-SAT as Boolean regex-CQ evaluation on "a".

Claims reproduced:

* the reduction is *correct*: the CQ is non-empty on ``a`` iff the
  formula is satisfiable (cross-checked against DPLL and brute force);
* the input string has length one and every atom has constant size —
  yet evaluation cost *grows super-polynomially with the clause count*
  for the generic evaluator, the hardness signature.
"""

from __future__ import annotations

from repro.queries import CanonicalEvaluator
from repro.reductions import SatReduction
from repro.util.sat import ThreeCNF, dpll_satisfiable

from .common import Table, time_call


def run() -> list[Table]:
    table = Table(
        "E4  3CNF -> Boolean regex CQ on s='a' (Theorem 3.1)",
        ["vars", "clauses", "DPLL", "regex CQ", "agree", "eval time (s)"],
    )
    evaluator = CanonicalEvaluator()
    for n_vars, n_clauses, seed in [
        (4, 6, 0),
        (5, 10, 1),
        (6, 14, 2),
        (7, 20, 3),
        (8, 28, 4),
        (9, 38, 5),
    ]:
        formula = ThreeCNF.random(n_vars, n_clauses, seed=seed)
        truth, _ = dpll_satisfiable(formula)
        reduction = SatReduction.build(formula)
        elapsed = time_call(
            lambda: evaluator.evaluate_boolean(reduction.query, "a")
        )
        got = evaluator.evaluate_boolean(reduction.query, "a")
        table.add(n_vars, n_clauses, truth, got, got == truth, elapsed)
        assert got == truth
    table.note("string length = 1; max atom size constant (7 branches)")
    table.note(
        "growth with clause count is the NP-hardness signature; the "
        "reduction itself is polynomial"
    )
    return [table]


def test_e4_reduction_correct(benchmark):
    formula = ThreeCNF.random(5, 8, seed=11)
    truth, _ = dpll_satisfiable(formula)
    reduction = SatReduction.build(formula)
    evaluator = CanonicalEvaluator()
    got = benchmark(
        lambda: evaluator.evaluate_boolean(reduction.query, "a")
    )
    assert got == truth


def test_e4_many_seeds_agree():
    evaluator = CanonicalEvaluator()
    for seed in range(8):
        formula = ThreeCNF.random(4, 7, seed=seed)
        truth, _ = dpll_satisfiable(formula)
        reduction = SatReduction.build(formula)
        assert evaluator.evaluate_boolean(reduction.query, "a") == truth
