"""E1 — Theorem 3.3: polynomial-delay enumeration.

Claim: after ``O(n^2 |s| + mn)`` preprocessing, consecutive answers of
``[[A]](s)`` arrive with delay ``O(n^2 |s|)``.

Series reproduced:

* max/mean per-answer delay and preprocessing time as ``N = |s|`` grows
  with the automaton fixed (claim: both polynomial in N; fitted log-log
  slope of max delay vs N should stay well below cubic);
* the same as ``n`` (state count) grows with N fixed, via the union-of-
  identical-branches construction that preserves the answer set;
* delay must *not* grow with the answer count beyond these bounds —
  the point of enumeration complexity.
"""

from __future__ import annotations

from repro.enumeration import SpannerEvaluator, measure_delays
from repro.text import unary_text
from repro.vset import compile_regex

from .common import Table, fit_loglog_slope, grown_automaton

BASE_PATTERN = "a*x{a*}a*"


def run() -> list[Table]:
    automaton = compile_regex(BASE_PATTERN).compacted()

    sweep_n_string = Table(
        "E1a  delay vs |s|  (automaton fixed: a*x{a*}a*)",
        ["N", "answers", "prep (s)", "max delay (s)", "mean delay (s)"],
    )
    lengths = [20, 40, 80, 160, 320]
    max_delays = []
    for n in lengths:
        report = measure_delays(automaton, unary_text(n))
        max_delays.append(report.max_delay)
        sweep_n_string.add(
            n,
            report.count,
            report.preprocessing_seconds,
            report.max_delay,
            report.mean_delay,
        )
    slope = fit_loglog_slope(lengths, max_delays)
    sweep_n_string.note(
        f"fitted max-delay slope vs N: {slope:.2f} "
        "(claim: polynomial, O(n^2 N) with n fixed => slope <= ~1 + noise)"
    )

    sweep_states = Table(
        "E1b  delay vs n  (|s| fixed at 60; union of identical branches)",
        ["branches", "states n", "answers", "prep (s)", "max delay (s)"],
    )
    s = unary_text(60)
    copies_list = [1, 2, 4, 8, 16]
    state_counts = []
    delays = []
    for copies in copies_list:
        grown = grown_automaton(BASE_PATTERN, copies)
        report = measure_delays(grown, s)
        state_counts.append(grown.n_states)
        delays.append(report.max_delay)
        sweep_states.add(
            copies,
            grown.n_states,
            report.count,
            report.preprocessing_seconds,
            report.max_delay,
        )
    slope_n = fit_loglog_slope(state_counts, delays)
    sweep_states.note(
        f"fitted max-delay slope vs n: {slope_n:.2f} (claim: O(n^2) => <= ~2)"
    )

    return [sweep_n_string, sweep_states]


# ---------------------------------------------------------------------------
# pytest-benchmark micro-benchmarks
# ---------------------------------------------------------------------------


def test_e1_preprocessing(benchmark):
    automaton = compile_regex(BASE_PATTERN).compacted()
    s = unary_text(120)
    benchmark(lambda: SpannerEvaluator(automaton, s))


def test_e1_full_enumeration(benchmark):
    automaton = compile_regex(BASE_PATTERN).compacted()
    s = unary_text(80)

    def enumerate_all():
        return sum(1 for _ in SpannerEvaluator(automaton, s))

    result = benchmark(enumerate_all)
    assert result == (80 + 1) * (80 + 2) // 2


def test_e1_delay_shape_polynomial():
    """Shape assertion: max delay grows sub-quadratically in N."""
    automaton = compile_regex(BASE_PATTERN).compacted()
    lengths = [25, 50, 100, 200]
    delays = [
        measure_delays(automaton, unary_text(n), limit=200).max_delay
        for n in lengths
    ]
    slope = fit_loglog_slope(lengths, delays)
    assert slope < 2.5, f"delay slope {slope:.2f} too steep for O(n^2 N)"
