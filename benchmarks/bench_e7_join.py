"""E7 — Lemma 3.10: the join construction's size and time.

Claims reproduced:

* binary join of automata with ``O(n)`` states runs in ``O(v n^4)`` and
  produces ``O(n^2)`` states — measured by sweeping ``n`` through the
  union-of-identical-branches construction;
* folding ``k`` joins costs ``O(n^{2k})``: the time and state count
  climb exponentially with ``k``, which is exactly why Theorem 3.11
  needs the atom count bounded.
"""

from __future__ import annotations

from repro.vset import compile_regex, join
from repro.vset.join import join_many
from repro.vset.operations import rename_variables, union

from .common import Table, fit_loglog_slope, grown_automaton, time_call


def run() -> list[Table]:
    binary = Table(
        "E7a  binary join vs operand size (Lemma 3.10)",
        ["n (each operand)", "product states", "join time (s)"],
    )
    ns, times = [], []
    for copies in (1, 2, 4, 8):
        a = grown_automaton(".*x{a+}.*", copies)
        b = grown_automaton(".*y{b+}.*", copies)
        elapsed = time_call(lambda: join(a, b))
        product = join(a, b)
        ns.append(a.n_states)
        times.append(elapsed)
        binary.add(a.n_states, product.n_states, elapsed)
    binary.note(
        f"time slope vs n: {fit_loglog_slope(ns, times):.2f} (claim: <= 4)"
    )

    kway = Table(
        "E7b  k-way join fold (O(n^{2k}))",
        ["k", "result states", "fold time (s)"],
    )
    atoms = [
        compile_regex(f".*v{i}{{[ab]+}}.*")
        for i in range(5)
    ]
    for k in (1, 2, 3, 4, 5):
        selection = atoms[:k]
        elapsed = time_call(lambda sel=tuple(selection): join_many(sel))
        result = join_many(selection)
        kway.add(k, result.n_states, elapsed)
    kway.note("states/time climbing with k is the bounded-atoms motivation")
    return [binary, kway]


def test_e7_binary_join(benchmark):
    a = grown_automaton(".*x{a+}.*", 2)
    b = grown_automaton(".*y{b+}.*", 2)
    product = benchmark(lambda: join(a, b))
    assert product.n_states > 0


def test_e7_shared_variable_join(benchmark):
    a = compile_regex(".*x{a+}.*y{b}.*")
    b = compile_regex(".*y{b}.*z{a+}.*")
    product = benchmark(lambda: join(a, b))
    assert product.variables == {"x", "y", "z"}


def test_e7_polynomial_shape():
    ns, times = [], []
    for copies in (1, 2, 4):
        a = grown_automaton(".*x{a+}.*", copies)
        b = grown_automaton(".*y{b+}.*", copies)
        ns.append(a.n_states)
        times.append(time_call(lambda: join(a, b)))
    assert fit_loglog_slope(ns, times) < 4.5


def test_e7_rename_union_helpers():
    renamed = rename_variables(compile_regex(".*x{a}.*"), {"x": "q"})
    both = union([renamed, rename_variables(compile_regex(".*y{a}.*"), {"y": "q"})])
    assert both.variables == {"q"}
