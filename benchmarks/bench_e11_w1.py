"""E11 — Theorem 5.2: W[1]-hardness in |q| via string equalities.

Claims reproduced:

* the query built from (G, k) has size independent of the *graph* —
  only the parameter k matters (contrast with Theorem 3.2's delta
  atoms, whose size grows with n);
* correctness against brute-force clique search;
* evaluation time climbs with k on a fixed graph (the W[1] signature).
"""

from __future__ import annotations

from repro.queries import CanonicalEvaluator
from repro.reductions import CliqueEqualityReduction, CliqueReduction
from repro.util.graphs import Graph

from .common import Table, time_call


def run() -> list[Table]:
    size_table = Table(
        "E11a  query size depends only on k (Theorem 5.2)",
        ["graph n", "k", "gamma size (nodes)", "equality groups"],
    )
    for n in (4, 8, 16):
        graph = Graph.random(n, 0.5, seed=n)
        reduction = CliqueEqualityReduction.build(graph, 3)
        size_table.add(
            n,
            3,
            reduction.query.regex_atoms[0].formula.size(),
            reduction.query.equality_count,
        )
    size_table.note("constant columns across n — |q| is a function of k only")
    size_table.note(
        "Theorem 3.2's delta atoms grow with n; compare E5"
    )

    contrast = Table(
        "E11b  Theorem 3.2 vs Theorem 5.2 query sizes (n sweep, k=3)",
        ["graph n", "Thm 3.2 total atom nodes", "Thm 5.2 total atom nodes"],
    )
    for n in (4, 8, 16):
        graph = Graph.random(n, 0.5, seed=n)
        with_deltas = sum(
            atom.formula.size()
            for atom in CliqueReduction.build(graph, 3).query.regex_atoms
        )
        with_equalities = sum(
            atom.formula.size()
            for atom in CliqueEqualityReduction.build(graph, 3).query.regex_atoms
        )
        contrast.add(n, with_deltas, with_equalities)

    timing = Table(
        "E11c  evaluation time vs k (fixed graph)",
        ["k", "truth", "regex CQ", "time (s)"],
    )
    graph = Graph.with_planted_clique(6, 0.2, 3, seed=2)
    evaluator = CanonicalEvaluator()
    for k in (2, 3):
        reduction = CliqueEqualityReduction.build(graph, k)
        truth = graph.has_clique(k)
        elapsed = time_call(
            lambda: evaluator.evaluate_boolean(
                reduction.query, reduction.string
            )
        )
        got = evaluator.evaluate_boolean(reduction.query, reduction.string)
        timing.add(k, truth, got, elapsed)
        assert got == truth
    return [size_table, contrast, timing]


def test_e11_reduction_correct(benchmark):
    graph = Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3)])
    reduction = CliqueEqualityReduction.build(graph, 3)
    evaluator = CanonicalEvaluator()
    got = benchmark(
        lambda: evaluator.evaluate_boolean(reduction.query, reduction.string)
    )
    assert got is True


def test_e11_query_size_constant_in_n():
    small = CliqueEqualityReduction.build(Graph.random(4, 0.5, seed=1), 3)
    large = CliqueEqualityReduction.build(Graph.random(12, 0.5, seed=2), 3)
    assert (
        small.query.regex_atoms[0].formula.size()
        == large.query.regex_atoms[0].formula.size()
    )
