"""E2 — Lemma 3.4: regex-to-vset compilation is linear.

Claim: a functional regex formula ``alpha`` compiles in ``O(|alpha|)``
time into a functional vset-automaton with ``O(|alpha|)`` states and
transitions.

Series reproduced: compile time, state count and transition count as
``|alpha|`` grows; fitted log-log slopes should be ~1.
"""

from __future__ import annotations

from repro.regex import parse
from repro.vset import compile_regex

from .common import Table, fit_loglog_slope, time_call


def _formula_of_size(blocks: int) -> str:
    """A formula family with one capture and growing body."""
    body = "(ab|ba)" * blocks
    return f".*x{{{body}}}.*"


def run() -> list[Table]:
    table = Table(
        "E2  regex -> vset compilation (Lemma 3.4)",
        ["|alpha| (nodes)", "states", "transitions", "compile (s)"],
    )
    sizes = []
    states = []
    times = []
    for blocks in (4, 16, 64, 256, 1024):
        source = _formula_of_size(blocks)
        formula = parse(source)
        size = formula.size()
        elapsed = time_call(lambda f=formula: compile_regex(f), repeat=3)
        automaton = compile_regex(formula)
        sizes.append(size)
        states.append(automaton.n_states)
        times.append(elapsed)
        table.add(size, automaton.n_states, automaton.n_transitions, elapsed)
    table.note(
        f"state-count slope vs |alpha|: {fit_loglog_slope(sizes, states):.2f} "
        "(claim: 1.0)"
    )
    table.note(
        f"compile-time slope vs |alpha|: {fit_loglog_slope(sizes, times):.2f} "
        "(claim: ~1.0)"
    )
    return [table]


def test_e2_compile(benchmark):
    formula = parse(_formula_of_size(128))
    automaton = benchmark(lambda: compile_regex(formula))
    assert automaton.n_states > 0


def test_e2_linear_states():
    small = compile_regex(parse(_formula_of_size(8)))
    large = compile_regex(parse(_formula_of_size(256)))
    ratio = large.n_states / small.n_states
    assert ratio < 40, "states must grow linearly with formula size"


def test_e2_compile_time_linearish():
    sizes, times = [], []
    for blocks in (16, 64, 256):
        formula = parse(_formula_of_size(blocks))
        sizes.append(formula.size())
        times.append(time_call(lambda f=formula: compile_regex(f), repeat=3))
    assert fit_loglog_slope(sizes, times) < 1.8
