"""E10 — Theorem 5.4 / Corollary 5.5: string equalities at runtime.

Claims reproduced:

* ``A_eq`` is built *per input string* (it must be: string equality is
  not expressible by regular spanners) with ``O(N^{3m+1})``-style size —
  we report the measured automaton size vs N for one binary group;
* for fixed m, evaluation of a k-CQ with m equality groups retains
  polynomial delay — measured via the compiled evaluator;
* the canonical path (Corollary 5.3) materializes the equality
  relation (O(N^3) rows for the binary case) and stays polynomial.

Engineering claims on top (the fused equality runtime):

* fusing the product construction with an *implicit* ``A_eq``
  (:func:`repro.runtime.equality.equality_join`) beats materializing
  the ``O(N^4)``-state automaton by >= 3x at N >= 80 — byte-identical
  span relations asserted (E10d);
* equality workloads shard: a :class:`CompiledEqualityQuery` shipped
  through :class:`ParallelSpanner` scales docs/sec with workers while
  reproducing the serial output exactly (E10e).
"""

from __future__ import annotations

import time

from repro.enumeration.instrumentation import measure_generator_delays
from repro.queries import CanonicalEvaluator, CompiledEvaluator, RegexCQ
from repro.runtime import ParallelSpanner
from repro.runtime.cache import LRUCache
from repro.text import repeats_text
from repro.vset import equality_automaton

from .common import Table, available_cpus, fit_loglog_slope, time_call


def _dedup_query(m: int = 1) -> RegexCQ:
    if m == 1:
        return RegexCQ(
            ["x", "y"],
            [".*x{[ab]+}.*", ".*y{[ab]+}.*"],
            equalities=[("x", "y")],
        )
    return RegexCQ(
        ["x", "y", "z"],
        [".*x{[ab]+}.*", ".*y{[ab]+}.*", ".*z{[ab]+}.*"],
        equalities=[("x", "y"), ("y", "z")],
    )


def _wide_dedup_query() -> RegexCQ:
    """The fused-vs-materialized workload: dedup over an 8-char alphabet.

    A wider alphabet keeps the equal-substring choice count (and with
    it the materializing baseline) polynomially bounded enough to run
    at N = 80, which is where the acceptance bar sits.
    """
    return RegexCQ(
        ["x", "y"],
        [".*x{[a-h]+}.*", ".*y{[a-h]+}.*"],
        equalities=[("x", "y")],
    )


def _wide_text(n: int, seed: int) -> str:
    return repeats_text(n, seed=seed, alphabet="abcdefgh", plant="abc")


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def run() -> list[Table]:
    sizes = Table(
        "E10a  A_eq size vs N (binary group; Theorem 5.4)",
        ["N", "A_eq states", "build time (s)"],
    )
    lengths, states = [], []
    for n in (4, 6, 8, 10, 12):
        s = repeats_text(n, seed=1)
        elapsed = time_call(lambda t=s: equality_automaton(t, ("x", "y")))
        automaton = equality_automaton(s, ("x", "y"))
        lengths.append(n)
        states.append(automaton.n_states)
        sizes.add(n, automaton.n_states, elapsed)
    sizes.note(
        f"state slope vs N: {fit_loglog_slope(lengths, states):.2f} "
        "(construction: O(N^4) for one binary group)"
    )

    strategies = Table(
        "E10b  dedup CQ with one equality: canonical vs compiled",
        ["N", "answers", "canonical (s)", "compiled (s)", "compiled max delay"],
    )
    canonical = CanonicalEvaluator()
    compiled = CompiledEvaluator()
    query = _dedup_query(1)
    for n in (4, 6, 8, 10):
        s = repeats_text(n, seed=2)
        can_time = time_call(lambda t=s: canonical.evaluate(query, t))
        answers = canonical.evaluate(query, s)
        report = measure_generator_delays(
            lambda t=s: compiled.stream(query, t)
        )
        strategies.add(
            n,
            len(answers),
            can_time,
            report.preprocessing_seconds + sum(report.delays),
            report.max_delay,
        )
        assert len(answers) == report.count
    strategies.note(
        "canonical materializes the O(N^3) equality relation "
        "(Corollary 5.3); compiled runs the fused equality join "
        "(Theorem 5.4 with an implicit A_eq)"
    )

    two_groups = Table(
        "E10c  two equality groups (m=2, Corollary 5.5)",
        ["N", "answers", "canonical (s)"],
    )
    query2 = _dedup_query(2)
    for n in (4, 6, 8):
        s = repeats_text(n, seed=3)
        elapsed = time_call(lambda t=s: canonical.evaluate(query2, t))
        answers = canonical.evaluate(query2, s)
        two_groups.add(n, len(answers), elapsed)

    fused_table = Table(
        "E10d  fused equality join vs materialized A_eq "
        "(dedup CQ, 8-char alphabet)",
        ["N", "answers", "materialized (s)", "fused (s)", "speedup"],
    )
    wide = _wide_dedup_query()
    fused_ev = CompiledEvaluator(LRUCache(32))
    mat_ev = CompiledEvaluator(LRUCache(32), materialize_equalities=True)
    fused_ev.compile_static(wide)  # warm the shared static fold
    mat_ev.compile_static(wide)
    for n in (20, 40, 80):
        s = _wide_text(n, seed=5)
        mat_s, mat_rel = _timed(lambda t=s: mat_ev.evaluate(wide, t))
        fus_s, fus_rel = _timed(lambda t=s: fused_ev.evaluate(wide, t))
        assert fus_rel == mat_rel, "fused relation diverged at N=%d" % n
        fused_table.add(n, len(fus_rel), mat_s, fus_s, mat_s / fus_s)
    fused_table.note(
        "identical span relations asserted per N; the fused product is "
        "driven off the static operand's cached tables with an implicit "
        "A_eq — target >= 3x at N >= 80"
    )

    eq_scaling = Table(
        "E10e  equality-workload sharding (CompiledEqualityQuery via "
        "ParallelSpanner): scaling vs the serial fused path",
        ["workers", "docs", "wall (s)", "docs/s", "speedup"],
    )
    engine = fused_ev.equality_runtime(wide)
    docs = [_wide_text(32, seed=100 + i) for i in range(48)]
    list(engine.stream(docs[0]))  # warm the per-process caches
    serial_s, serial_out = _timed(lambda: list(engine.evaluate_many(docs)))
    eq_scaling.add(1, len(docs), serial_s, len(docs) / serial_s, 1.0)
    for workers in (2, 4):
        with ParallelSpanner(engine, workers=workers, chunk_size=4) as pool:
            par_s, par_out = _timed(lambda: list(pool.evaluate_many(docs)))
        assert par_out == serial_out, (
            f"equality shard diverged from serial at {workers} workers"
        )
        eq_scaling.add(
            workers, len(docs), par_s, len(docs) / par_s, serial_s / par_s
        )
    eq_scaling.note(
        f"identical tuple sequences asserted per worker count; "
        f"{available_cpus()} cpu(s) available — per-document work is the "
        "fused join, so sharding pays off on far smaller corpora than "
        "the equality-free path needs"
    )

    return [sizes, strategies, two_groups, fused_table, eq_scaling]


def test_e10_equality_automaton_build(benchmark):
    s = repeats_text(8, seed=1)
    automaton = benchmark(lambda: equality_automaton(s, ("x", "y")))
    assert automaton.n_states > 0


def test_e10_strategies_agree(benchmark):
    s = repeats_text(6, seed=2)
    query = _dedup_query(1)
    canonical = CanonicalEvaluator()
    compiled = CompiledEvaluator()
    result = benchmark(lambda: canonical.evaluate(query, s))
    assert result == compiled.evaluate(query, s)


def test_e10_fused_matches_materialized():
    """CI smoke: fused and materialized equality paths agree exactly.

    Byte-identical per document: tuples, radix order, and the rendered
    form all have to match — across k=2 and k=3 (merged) groups.
    """
    fused = CompiledEvaluator(LRUCache(32))
    materializing = CompiledEvaluator(
        LRUCache(32), materialize_equalities=True
    )
    for query in (_dedup_query(1), _dedup_query(2)):
        for seed in (2, 7):
            for n in (6, 10):
                s = repeats_text(n, seed=seed)
                fus = list(fused.stream(query, s))
                mat = list(materializing.stream(query, s))
                assert fus == mat, (query, s)

    def canonical_bytes(tuples: list) -> bytes:
        lines = [
            " ".join(f"{v}={t[v]}" for v in sorted(t.variables))
            for t in tuples
        ]
        return "\n".join(lines).encode()

    wide = _wide_dedup_query()
    s = _wide_text(24, seed=11)
    assert canonical_bytes(list(fused.stream(wide, s))) == canonical_bytes(
        list(materializing.stream(wide, s))
    )


def test_e10_equality_parallel_two_workers_identical():
    """CI smoke: a 2-worker equality shard must reproduce serial output.

    The CompiledEqualityQuery artifact rides the worker-initializer
    path; every worker runs the fused per-document equality join
    locally.  Byte-identical output asserted, no timing bound.
    """
    evaluator = CompiledEvaluator(LRUCache(32))
    engine = evaluator.equality_runtime(_wide_dedup_query())
    docs = [_wide_text(20, seed=50 + i) for i in range(20)]
    serial = list(engine.evaluate_many(docs))
    with ParallelSpanner(engine, workers=2, chunk_size=4) as pool:
        parallel = list(pool.evaluate_many(docs))
    assert parallel == serial

    def canonical(out: list) -> bytes:
        lines = [
            ";".join(
                " ".join(f"{v}={t[v]}" for v in sorted(t.variables))
                for t in per_doc
            )
            for per_doc in out
        ]
        return "\n".join(lines).encode()

    assert canonical(parallel) == canonical(serial)


def test_e10_fused_speedup():
    """Acceptance: >= 3x over the materializing path at N = 80.

    One timed pass per path (the materialized side alone runs for tens
    of seconds — repetition would be all cost, no signal), identical
    span relations asserted.  The measured margin is ~two orders of
    magnitude, so single-pass noise cannot flip a 3x verdict.
    """
    wide = _wide_dedup_query()
    fused_ev = CompiledEvaluator(LRUCache(32))
    mat_ev = CompiledEvaluator(LRUCache(32), materialize_equalities=True)
    fused_ev.compile_static(wide)
    mat_ev.compile_static(wide)
    s = _wide_text(80, seed=5)
    mat_s, mat_rel = _timed(lambda: mat_ev.evaluate(wide, s))
    fus_s, fus_rel = _timed(lambda: fused_ev.evaluate(wide, s))
    assert fus_rel == mat_rel
    speedup = mat_s / fus_s
    assert speedup >= 3.0, f"speedup {speedup:.2f}x below the 3x target"
