"""E10 — Theorem 5.4 / Corollary 5.5: string equalities at runtime.

Claims reproduced:

* ``A_eq`` is built *per input string* (it must be: string equality is
  not expressible by regular spanners) with ``O(N^{3m+1})``-style size —
  we report the measured automaton size vs N for one binary group;
* for fixed m, evaluation of a k-CQ with m equality groups retains
  polynomial delay — measured via the compiled evaluator;
* the canonical path (Corollary 5.3) materializes the equality
  relation (O(N^3) rows for the binary case) and stays polynomial.
"""

from __future__ import annotations

from repro.enumeration.instrumentation import measure_generator_delays
from repro.queries import CanonicalEvaluator, CompiledEvaluator, RegexCQ
from repro.text import repeats_text
from repro.vset import equality_automaton

from .common import Table, fit_loglog_slope, time_call


def _dedup_query(m: int = 1) -> RegexCQ:
    if m == 1:
        return RegexCQ(
            ["x", "y"],
            [".*x{[ab]+}.*", ".*y{[ab]+}.*"],
            equalities=[("x", "y")],
        )
    return RegexCQ(
        ["x", "y", "z"],
        [".*x{[ab]+}.*", ".*y{[ab]+}.*", ".*z{[ab]+}.*"],
        equalities=[("x", "y"), ("y", "z")],
    )


def run() -> list[Table]:
    sizes = Table(
        "E10a  A_eq size vs N (binary group; Theorem 5.4)",
        ["N", "A_eq states", "build time (s)"],
    )
    lengths, states = [], []
    for n in (4, 6, 8, 10, 12):
        s = repeats_text(n, seed=1)
        elapsed = time_call(lambda t=s: equality_automaton(t, ("x", "y")))
        automaton = equality_automaton(s, ("x", "y"))
        lengths.append(n)
        states.append(automaton.n_states)
        sizes.add(n, automaton.n_states, elapsed)
    sizes.note(
        f"state slope vs N: {fit_loglog_slope(lengths, states):.2f} "
        "(construction: O(N^4) for one binary group)"
    )

    strategies = Table(
        "E10b  dedup CQ with one equality: canonical vs compiled",
        ["N", "answers", "canonical (s)", "compiled (s)", "compiled max delay"],
    )
    canonical = CanonicalEvaluator()
    compiled = CompiledEvaluator()
    query = _dedup_query(1)
    for n in (4, 6, 8, 10):
        s = repeats_text(n, seed=2)
        can_time = time_call(lambda t=s: canonical.evaluate(query, t))
        answers = canonical.evaluate(query, s)
        report = measure_generator_delays(
            lambda t=s: compiled.stream(query, t)
        )
        strategies.add(
            n,
            len(answers),
            can_time,
            report.preprocessing_seconds + sum(report.delays),
            report.max_delay,
        )
        assert len(answers) == report.count
    strategies.note(
        "canonical materializes the O(N^3) equality relation "
        "(Corollary 5.3); compiled joins A_eq at runtime (Theorem 5.4)"
    )

    two_groups = Table(
        "E10c  two equality groups (m=2, Corollary 5.5)",
        ["N", "answers", "canonical (s)"],
    )
    query2 = _dedup_query(2)
    for n in (4, 6, 8):
        s = repeats_text(n, seed=3)
        elapsed = time_call(lambda t=s: canonical.evaluate(query2, t))
        answers = canonical.evaluate(query2, s)
        two_groups.add(n, len(answers), elapsed)
    return [sizes, strategies, two_groups]


def test_e10_equality_automaton_build(benchmark):
    s = repeats_text(8, seed=1)
    automaton = benchmark(lambda: equality_automaton(s, ("x", "y")))
    assert automaton.n_states > 0


def test_e10_strategies_agree(benchmark):
    s = repeats_text(6, seed=2)
    query = _dedup_query(1)
    canonical = CanonicalEvaluator()
    compiled = CompiledEvaluator()
    result = benchmark(lambda: canonical.evaluate(query, s))
    assert result == compiled.evaluate(query, s)
