"""E6 — Theorem 3.5: canonical relational evaluation, polynomial total
time under its two conditions.

Workload: an acyclic chain CQ over token/dictionary extractors (each
atom has one variable — a polynomially bounded class) evaluated on
growing synthetic sentence corpora.

Series reproduced: total evaluation time, per-atom materialization
sizes, and answer counts vs corpus length; the fitted time slope must be
a small constant (the claim is "polynomial total time", the chain shape
gives roughly linear-to-quadratic behaviour).
"""

from __future__ import annotations

from repro.extractors import sentence_spanner, token_spanner
from repro.queries import CanonicalEvaluator, RegexAtom, RegexCQ
from repro.text import sentences

from .common import Table, fit_loglog_slope, time_call


def _query() -> RegexCQ:
    # Sentences x that contain the planted keyword (via the fused
    # sentence/keyword atom) joined with the keyword-token atom on w.
    fused = (
        "(ε|.*[.!?] )x{[^.!?]*w{police}[^a-zA-Z0-9][^.!?]*[.!?]}( .*|ε)"
    )
    return RegexCQ(
        ["x"],
        [
            RegexAtom.make("sen", sentence_spanner("x")),
            RegexAtom.make("senpol", fused),
            RegexAtom.make("plc", token_spanner("police", "w")),
        ],
    )


def run() -> list[Table]:
    table = Table(
        "E6  canonical relational evaluation (Theorem 3.5)",
        ["|s|", "answers", "max atom rows", "total time (s)"],
    )
    query = _query()
    lengths, times = [], []
    evaluator = CanonicalEvaluator()
    for n_sentences in (4, 8, 16, 32, 64):
        corpus = sentences(
            n_sentences, seed=5, plant_addresses=2, plant_keyword="police"
        )
        elapsed = time_call(lambda c=corpus: evaluator.evaluate(query, c))
        result = evaluator.evaluate(query, corpus)
        stats = evaluator.last_stats
        max_rows = max(stats.atom_cardinalities.values())
        lengths.append(len(corpus))
        times.append(elapsed)
        table.add(len(corpus), len(result), max_rows, elapsed)
    slope = fit_loglog_slope(lengths, times)
    table.note(
        f"fitted total-time slope vs |s|: {slope:.2f} "
        "(claim: polynomial; chain of 1-2 variable atoms => small constant)"
    )
    table.note("query: acyclic, Yannakakis engine"
               f" (used: {evaluator.last_stats.used_yannakakis})")
    return [table]


def test_e6_canonical_total_time(benchmark):
    corpus = sentences(12, seed=5, plant_addresses=1, plant_keyword="police")
    query = _query()
    evaluator = CanonicalEvaluator()
    result = benchmark(lambda: evaluator.evaluate(query, corpus))
    assert evaluator.last_stats.used_yannakakis


def test_e6_polynomial_shape():
    query = _query()
    evaluator = CanonicalEvaluator()
    lengths, times = [], []
    for n_sentences in (8, 16, 32):
        corpus = sentences(
            n_sentences, seed=5, plant_addresses=1, plant_keyword="police"
        )
        lengths.append(len(corpus))
        times.append(
            time_call(lambda c=corpus: evaluator.evaluate(query, c))
        )
    assert fit_loglog_slope(lengths, times) < 3.2
