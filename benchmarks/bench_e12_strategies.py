"""E12 — Strategy ablation: canonical vs compiled evaluation.

The paper proves two incomparable upper bounds (Theorems 3.5 and 3.11)
and asks, in its concluding remarks, for algorithms that exploit them.
This experiment ablates the planner on a workload family where the
trade-off flips:

* *full materialization* — canonical wins while atom relations stay
  small;
* *time to first answer* — compiled evaluation (polynomial delay) wins
  when the output is large, because it streams without materializing;
* the planner's automatic choice is reported alongside.
"""

from __future__ import annotations

from time import perf_counter

from repro.queries import (
    CanonicalEvaluator,
    CompiledEvaluator,
    RegexCQ,
    choose_strategy,
)
from repro.text import unary_text

from .common import Table, time_call


def _query() -> RegexCQ:
    # Two one-variable atoms: answers are quadratic in N per atom,
    # quartic after the Cartesian join — a large-output stress test.
    return RegexCQ(["x", "y"], ["a*x{a*}a*", "a*y{a*}a*"])


def _time_to_first(evaluator: CompiledEvaluator, query, s: str) -> float:
    start = perf_counter()
    for _ in evaluator.stream(query, s):
        break
    return perf_counter() - start


def run() -> list[Table]:
    table = Table(
        "E12  canonical vs compiled (ablation)",
        [
            "N",
            "answers",
            "canonical full (s)",
            "compiled full (s)",
            "compiled first answer (s)",
            "planner picks",
        ],
    )
    query = _query()
    for n in (8, 16, 24, 32):
        s = unary_text(n)
        canonical = CanonicalEvaluator()
        compiled = CompiledEvaluator()
        can_time = time_call(lambda t=s: canonical.evaluate(query, t))
        answers = len(canonical.evaluate(query, s))
        com_time = time_call(
            lambda t=s: sum(1 for _ in compiled.stream(query, t))
        )
        first = _time_to_first(compiled, query, s)
        decision = choose_strategy(query, s)
        table.add(n, answers, can_time, com_time, first, decision.strategy)
    table.note(
        "first-answer latency stays flat for the compiled strategy while "
        "full materialization grows ~quartically — the delay guarantee in "
        "action"
    )
    return [table]


def test_e12_agreement(benchmark):
    query = _query()
    s = unary_text(10)
    canonical = CanonicalEvaluator()
    compiled = CompiledEvaluator()
    result = benchmark(lambda: canonical.evaluate(query, s))
    assert result == compiled.evaluate(query, s)


def test_e12_first_answer_fast():
    query = _query()
    compiled = CompiledEvaluator()
    # First answer on a large instance must not require materializing
    # the ~N^4/4 answers.
    first_small = _time_to_first(compiled, query, unary_text(8))
    first_large = _time_to_first(compiled, query, unary_text(32))
    assert first_large < max(0.05, 400 * first_small)


def test_e12_planner_routes():
    query = _query()
    decision_small = choose_strategy(query, unary_text(10))
    assert decision_small.strategy in ("canonical", "compiled")
