"""E9 — Proposition 3.6: deciding key attributes in O(n^4).

Claims reproduced:

* correctness on known key / non-key families (with witness checks);
* time vs state count n, swept by the union construction; the fitted
  slope must stay below the claimed quartic.
"""

from __future__ import annotations

from repro.vset import compile_regex, is_key_attribute
from repro.vset.keyattr import key_attribute_witness

from .common import Table, fit_loglog_slope, grown_automaton, time_call


def run() -> list[Table]:
    correctness = Table(
        "E9a  key-attribute verdicts (Proposition 3.6)",
        ["automaton", "variable", "is key", "witness"],
    )
    cases = [
        ("x{a*}b", "x", True),
        ("x{a*}y{b}", "x", True),
        ("x{a*}a*y{a*}", "x", False),
        (".*x{a}.*y{b}.*", "x", False),
    ]
    for pattern, var, expected in cases:
        automaton = compile_regex(pattern)
        verdict = is_key_attribute(automaton, var)
        witness = key_attribute_witness(automaton, var)
        correctness.add(
            pattern,
            var,
            verdict,
            "-" if witness is None else repr(witness.string),
        )
        assert verdict is expected
        assert (witness is None) is expected

    scaling = Table(
        "E9b  decision time vs n",
        ["states n", "time (s)"],
    )
    ns, times = [], []
    for copies in (1, 2, 4, 8):
        automaton = grown_automaton("x{a*}a*y{a*}", copies)
        elapsed = time_call(lambda a=automaton: is_key_attribute(a, "x"))
        ns.append(automaton.n_states)
        times.append(elapsed)
        scaling.add(automaton.n_states, elapsed)
    scaling.note(
        f"time slope vs n: {fit_loglog_slope(ns, times):.2f} (claim: <= 4)"
    )
    return [correctness, scaling]


def test_e9_decision(benchmark):
    automaton = grown_automaton("x{a*}a*y{a*}", 2)
    verdict = benchmark(lambda: is_key_attribute(automaton, "x"))
    assert verdict is False


def test_e9_quartic_shape():
    ns, times = [], []
    for copies in (1, 2, 4):
        automaton = grown_automaton("x{a*}a*y{a*}", copies)
        ns.append(automaton.n_states)
        times.append(time_call(lambda a=automaton: is_key_attribute(a, "x")))
    assert fit_loglog_slope(ns, times) < 4.5
