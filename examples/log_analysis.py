"""Machine-log analysis with regex CQs (one of the paper's motivating
IE domains).

Run:  python examples/log_analysis.py

Extracts (component, error code) pairs from ERROR lines of a synthetic
log, then uses a *string equality* selection (Section 5) to find error
codes that repeat across different lines — a core-spanner query that no
regular spanner can express.
"""

from repro.queries import CanonicalEvaluator, RegexAtom, RegexCQ
from repro.text import log_lines

#: component + code of an ERROR line.
ERROR_ATOM = (
    "(ε|(.|\\n)*\\n)[0-9:]+ ERROR comp{[a-z]+}"
    "[a-z ]*code=code{[0-9]+}(\\n(.|\\n)*|ε)"
)

#: two error codes anywhere in the log (used with an equality atom).
TWO_CODES = [
    "(ε|(.|\\n)*[^0-9])c1{[0-9]+}(\\n(.|\\n)*|ε)",
    "(ε|(.|\\n)*[^0-9])c2{[0-9]+}((.|\\n)*|ε)",
]


def main() -> None:
    corpus = log_lines(14, seed=9, error_rate=0.45)
    print("log:")
    for line in corpus.split("\n"):
        print(f"  {line}")

    evaluator = CanonicalEvaluator()

    # --- errors with their components and codes ---------------------------
    errors = RegexCQ(
        ["comp", "code"], [RegexAtom.make("err", ERROR_ATOM)]
    )
    result = evaluator.evaluate(errors, corpus)
    print("\nERROR lines (component, code):")
    for mu in result.sorted():
        print(
            f"  {mu['comp'].extract(corpus):8s} "
            f"code={mu['code'].extract(corpus)}"
        )

    # --- repeated codes via string equality -------------------------------
    # c1 strictly precedes c2 (c1's context ends with a newline-reaching
    # pattern), and the equality selection keeps only equal code strings
    # — spans differ, substrings match: the zeta^= operator of §2.2.4.
    repeated = RegexCQ(
        ["c1", "c2"],
        TWO_CODES,
        equalities=[("c1", "c2")],
    )
    result = evaluator.evaluate(repeated, corpus)
    pairs = {
        (mu["c1"], mu["c2"])
        for mu in result
        if mu["c1"] != mu["c2"]  # genuinely different occurrences
        and len(mu["c1"]) == 3  # full codes, not digit sub-runs
    }
    print("\nrepeated full codes (different spans, equal strings):")
    for a, b in sorted(pairs):
        print(f"  {a} and {b}: {a.extract(corpus)}")


if __name__ == "__main__":
    main()
