"""Core spanners in action: string-equality selections (Section 5).

Run:  python examples/string_equality.py

String equality ``zeta^=`` compares the *substrings* spanned by two
variables, not the spans themselves — it is what separates core
spanners from regular spanners, and it cannot be compiled into a
vset-automaton statically.  The paper's Theorem 5.4 compiles it **at
runtime, against the concrete input string**; this example shows both
the raw mechanism (the A_eq automaton) and the query-level API.
"""

from repro import compile_regex, enumerate_tuples, equality_automaton, join
from repro.queries import CanonicalEvaluator, CompiledEvaluator, RegexCQ


def main() -> None:
    s = "bob met bob and ada met ada"

    # --- the raw mechanism: A_eq for this very string ----------------------
    a_eq = equality_automaton(s, ("x", "y"))
    print(f"A_eq for {s!r}: {a_eq.n_states} states")
    print("A_eq on a different string is empty:",
          not list(enumerate_tuples(a_eq, "something else")))

    # [[zeta= A]](s) = [[A join A_eq]](s)  — the Theorem 5.4 identity.
    names = compile_regex("(ε|.* )x{[a-z]+}( .*|ε)")
    names2 = compile_regex("(ε|.* )y{[a-z]+}( .*|ε)")
    joined = join(join(names, names2), a_eq)
    repeats = {
        (mu["x"], mu["y"])
        for mu in enumerate_tuples(joined, s)
        if mu["x"] != mu["y"]
    }
    print("\nrepeated tokens via the raw join:")
    for x, y in sorted(repeats):
        print(f"  {x} = {y} = {x.extract(s)!r}")

    # --- the query-level API ----------------------------------------------
    query = RegexCQ(
        ["x", "y"],
        ["(ε|.* )x{[a-z]+}( .*|ε)", "(ε|.* )y{[a-z]+}( .*|ε)"],
        equalities=[("x", "y")],
    )
    canonical = CanonicalEvaluator().evaluate(query, s)
    compiled = CompiledEvaluator().evaluate(query, s)
    assert canonical == compiled
    distinct = sorted(
        {
            mu["x"].extract(s)
            for mu in canonical
            if mu["x"] != mu["y"]
        }
    )
    print(f"\nquery API agrees across both strategies; "
          f"tokens appearing twice: {distinct}")


if __name__ == "__main__":
    main()
