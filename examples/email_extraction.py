"""Example 2.5 from the paper: extracting (simplified) email addresses.

Run:  python examples/email_extraction.py

The paper's formula is

    Sigma* ␣ xmail{xuser{gamma}@xdomain{gamma.gamma}} ␣ Sigma*

with gamma = (a|...|z)*.  We evaluate the verbatim formula and the
boundary-tolerant library variant on a synthetic corpus, then promote
the extractor into a regex CQ that filters on the domain's TLD by
joining with a second atom.
"""

from repro import compile_regex, enumerate_tuples
from repro.extractors import email_spanner, paper_email_spanner
from repro.queries import QueryEvaluator, RegexAtom, RegexCQ
from repro.text import email_text


def main() -> None:
    corpus = email_text(40, seed=4, email_rate=0.25)
    print(f"corpus ({len(corpus)} chars):\n  {corpus}\n")

    # --- the verbatim Example 2.5 formula ---------------------------------
    verbatim = compile_regex(paper_email_spanner())
    print("verbatim Example 2.5 formula (requires spaces on both sides):")
    for mu in enumerate_tuples(verbatim, corpus):
        print(
            f"  mail={mu['xmail'].extract(corpus)!r} "
            f"user={mu['xuser'].extract(corpus)!r} "
            f"domain={mu['xdomain'].extract(corpus)!r}"
        )

    # --- the library extractor inside a CQ --------------------------------
    # Join the email atom with a ".org-only" filter atom on the domain
    # variable: a 2-atom regex CQ, evaluated by the auto-planner.
    org_filter = "(ε|.* )domain{[a-z0-9]+\\.org}(ε| .*)"
    query = RegexCQ(
        ["user", "domain"],
        [
            RegexAtom.make("mail", email_spanner()),
            RegexAtom.make("org", org_filter),
        ],
    )
    evaluator = QueryEvaluator()
    result = evaluator.evaluate(query, corpus)
    decision = evaluator.last_decision
    print(f"\n.org addresses (strategy: {decision.strategy}):")
    for mu in result.sorted():
        print(
            f"  {mu['user'].extract(corpus)}@{mu['domain'].extract(corpus)}"
        )


if __name__ == "__main__":
    main()
