"""The lower-bound constructions as running code (Theorems 3.1/3.2/5.2).

Run:  python examples/hardness_demo.py

Builds the paper's three hardness reductions on concrete instances and
evaluates them with the production engine:

* a 3CNF formula decided by a Boolean regex CQ over the string "a";
* a k-clique question decided by a *gamma-acyclic* regex CQ;
* the same question decided by a constant-size-per-k query with string
  equalities (the W[1]-hardness construction).
"""

from repro.queries import CanonicalEvaluator
from repro.reductions import (
    CliqueEqualityReduction,
    CliqueReduction,
    SatReduction,
)
from repro.util.graphs import Graph
from repro.util.sat import Literal, ThreeCNF


def main() -> None:
    evaluator = CanonicalEvaluator()

    # --- Theorem 3.1: SAT on a single character ----------------------------
    #  (x0 | x1 | x2) & (~x0 | ~x1 | x2) & (x0 | ~x2 | x1)
    formula = ThreeCNF(
        3,
        (
            (Literal(0, True), Literal(1, True), Literal(2, True)),
            (Literal(0, False), Literal(1, False), Literal(2, True)),
            (Literal(0, True), Literal(2, False), Literal(1, True)),
        ),
    )
    reduction = SatReduction.build(formula, boolean=False)
    print(f"3CNF: {formula}")
    print(f"  encoded over string {reduction.string!r} with "
          f"{reduction.query.atom_count} atoms")
    answers = evaluator.evaluate(reduction.query, reduction.string)
    assignment = reduction.decode(next(iter(answers)))
    print(f"  satisfying assignment found: {assignment}")
    assert reduction.check_decoded(assignment)

    # --- Theorem 3.2: gamma-acyclic clique query ---------------------------
    graph = Graph.from_edges(
        5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 3)]
    )
    clique = CliqueReduction.build(graph, 3, boolean=False)
    print(f"\nk-clique (Theorem 3.2): graph n={graph.n}, k=3")
    print(f"  string encodes {len(graph.edges)} edges: {clique.string!r}")
    print(f"  query gamma-acyclic: {clique.query.is_gamma_acyclic()}")
    found = {
        tuple(sorted(clique.decode(mu)))
        for mu in evaluator.evaluate(clique.query, clique.string)
    }
    print(f"  triangles found: {sorted(found)}")

    # --- Theorem 5.2: constant-size query via equalities -------------------
    eq = CliqueEqualityReduction.build(graph, 3)
    print(f"\nk-clique via string equalities (Theorem 5.2):")
    print(f"  regex atoms: {eq.query.atom_count} "
          f"(size {eq.query.regex_atoms[0].formula.size()} nodes — "
          "independent of the graph)")
    print(f"  equality groups: {eq.query.equality_count}")
    verdict = evaluator.evaluate_boolean(eq.query, eq.string)
    print(f"  has a triangle: {verdict}")
    assert verdict == graph.has_clique(3)


if __name__ == "__main__":
    main()
