"""The paper's Section 1 motivating query: sentences containing both a
Belgian address and the token "police".

Run:  python examples/sentence_police.py

The query (1) of the paper is

    pi_x ( alpha_sen[x] ⋈ alpha_adr[y,z] ⋈ alpha_sub[y,x]
           ⋈ alpha_blg[z] ⋈ alpha_plc[w] ⋈ alpha_sub[w,x] )

This script evaluates it twice:

1. **verbatim**, with the standalone subspan atoms, on a tiny document —
   alpha_sub materializes Theta(N^4) tuples, the paper's §3.2 caveat in
   action (watch the atom cardinalities!);
2. **fused**, with the subspan constraints folded into the sentence
   atom, on a realistic synthetic corpus.
"""

from repro.extractors import (
    address_spanner,
    sentence_spanner,
    subspan_spanner,
    token_spanner,
)
from repro.queries import CanonicalEvaluator, RegexAtom, RegexCQ
from repro.text import sentences

FUSED_SEN_ADR = (
    "(ε|.*[.!?] )x{[^.!?]*y{[A-Z][a-z]+( [A-Z][a-z]+)* [0-9]+, "
    "[0-9]+ [A-Z][a-z]+, z{[A-Z][a-z]+}}[^.!?]*[.!?]}( .*|ε)"
)
FUSED_SEN_POL = (
    "(ε|.*[.!?] )x{[^.!?]*w{police}[^a-zA-Z0-9][^.!?]*[.!?]}( .*|ε)"
)


def verbatim_query() -> RegexCQ:
    return RegexCQ(
        ["x"],
        [
            RegexAtom.make("sen", sentence_spanner("x")),
            RegexAtom.make("adr", address_spanner("y", "z")),
            RegexAtom.make("subYX", subspan_spanner("y", "x")),
            RegexAtom.make("blg", token_spanner("Belgium", "z")),
            RegexAtom.make("plc", token_spanner("police", "w")),
            RegexAtom.make("subWX", subspan_spanner("w", "x")),
        ],
    )


def fused_query() -> RegexCQ:
    return RegexCQ(
        ["x"],
        [
            RegexAtom.make("senadr", FUSED_SEN_ADR),
            RegexAtom.make("blg", token_spanner("Belgium", "z")),
            RegexAtom.make("senpol", FUSED_SEN_POL),
        ],
    )


def main() -> None:
    # --- 1. the verbatim query on a tiny document -------------------------
    tiny = "police Rue 1, 10 Bru, Belgium!"
    query = verbatim_query()
    print(f"verbatim query ({query.atom_count} atoms, acyclic="
          f"{query.is_acyclic()}):\n  {query}\n")
    evaluator = CanonicalEvaluator()
    result = evaluator.evaluate(query, tiny)
    print(f"document: {tiny!r}")
    print(f"answers:  {[mu['x'].extract(tiny) for mu in result]}")
    print("atom cardinalities (note the quartic alpha_sub atoms):")
    for name, rows in sorted(evaluator.last_stats.atom_cardinalities.items()):
        print(f"  {name:8s} {rows:>8d} tuples")

    # --- 2. the fused query on a realistic corpus -------------------------
    corpus = sentences(12, seed=11, plant_addresses=4, plant_keyword="police")
    print(f"\nfused query on a {len(corpus)}-char corpus:")
    result = evaluator.evaluate(fused_query(), corpus)
    for mu in result.sorted():
        print(f"  -> {mu['x'].extract(corpus)!r}")


if __name__ == "__main__":
    main()
