"""The serving fleet: many queries, one resident pool of workers.

Run:  python examples/serving_fleet.py

A long-running extraction service evaluates *many* registered queries
over continuously arriving documents.  ``SpannerService`` keeps a
queue-fed worker fleet resident across every batch of every query:
each worker receives a query's compiled artifact at most once for its
lifetime, workers are recycled after ``max_tasks_per_worker`` tasks
(results never notice), a crashed worker's tasks re-dispatch to a
healthy one, and an asyncio front-end serves coroutine callers without
blocking the event loop.

The tour below registers three queries — an ERROR-component extractor,
an error-code extractor and a *string-equality* (dedup) query running
the fused equality runtime — and serves them all from one 2-worker
fleet, first through sync futures, then through asyncio — prints the
``health()`` snapshot a liveness endpoint would poll (including its
``resources`` section: shm bytes against the budget, per-worker RSS
and the governance counters) — demonstrates the resource-governance
layer (result caps with the ``truncate`` policy, compile-time
admission control) — then serves a final batch across a forced worker
recycle.
"""

import asyncio

from repro import CompiledSpanner, SpannerService
from repro.queries import CompiledEvaluator, RegexCQ
from repro.text import log_lines

#: Component of an ERROR line (the trailing space pins the full token).
COMPONENT_ATOM = ".*ERROR comp{[a-z]+} .*"

#: The error code a line ends with.
CODE_ATOM = ".*code=c{[0-9]+}"

#: Two codes anywhere in a multi-line log (for the equality selection).
TWO_CODES = [
    "(ε|(.|\\n)*[^0-9])c1{[0-9]+}(\\n(.|\\n)*|ε)",
    "(ε|(.|\\n)*[^0-9])c2{[0-9]+}((.|\\n)*|ε)",
]


def dedup_engine():
    """Fused equality: codes repeating across lines of one log."""
    query = RegexCQ(["c1", "c2"], TWO_CODES, equalities=[("c1", "c2")])
    engine = CompiledEvaluator().equality_runtime(query)
    assert engine is not None
    return engine


def main() -> None:
    # Per-line documents for the extractors, whole multi-line logs for
    # the cross-line dedup query — each log gets one *planted* repeat
    # of its first error code, for the equality query to find.
    lines = log_lines(40, seed=7, error_rate=0.5).split("\n")
    logs = []
    for i in range(6):
        log = log_lines(6, seed=100 + i, error_rate=0.6)
        first_code = log.split("code=")[1].split("\n")[0]
        logs.append(
            f"{log}\n23:59:59 ERROR db retry scheduled code={first_code}"
        )

    with SpannerService(workers=2, chunk_size=8) as service:
        # -- register: fingerprint-keyed, shipped once per worker ----------
        q_comp = service.register(CompiledSpanner(COMPONENT_ATOM))
        q_code = service.register(CompiledSpanner(CODE_ATOM))
        q_dedup = service.register(dedup_engine())
        print(f"registered queries: {service.queries}\n")

        # -- sync front-end: futures, dispatched concurrently --------------
        f_comp = service.submit(q_comp, lines)
        f_code = service.submit(q_code, lines)
        f_dedup = service.submit(q_dedup, logs)

        components = f_comp.result()
        print("ERROR components:")
        for doc, answers in zip(lines, components):
            for mu in answers:
                print(f"  {mu['comp'].extract(doc)}")

        codes = [
            mu["c"].extract(doc)
            for doc, answers in zip(lines, f_code.result())
            for mu in answers
        ]
        print(f"\nerror codes extracted: {len(codes)} ({', '.join(codes[:8])}, ...)")

        print("\ncodes repeating across lines (fused equality):")
        for doc, answers in zip(logs, f_dedup.result()):
            # Distinct spans only: equal substrings at different
            # positions, the ζ^= selection no regular spanner expresses.
            values = sorted(
                {
                    mu["c1"].extract(doc)
                    for mu in answers
                    if mu["c1"] != mu["c2"]
                }
            )
            print(f"  repeated codes: {values if values else '(none)'}")

        # -- asyncio front-end ---------------------------------------------
        async def serve() -> None:
            one, two = await service.gather(
                service.extract(q_comp, lines[:10]),
                service.extract(q_code, lines[:10]),
            )
            hits = sum(map(len, one)) + sum(map(len, two))
            print(f"\nasyncio front-end: {hits} tuples from two queries")

        asyncio.run(serve())
        print(f"fleet stats: {service!r}")

        # -- health snapshot: what a liveness endpoint would poll ----------
        health = service.health()
        print("\nhealth snapshot:")
        backend = health["backend"]
        print(
            f"  backend: {backend['name']} "
            f"(worker model: {backend['worker_model']})"
        )
        for worker in health["workers"]:
            beat = worker["heartbeat_age"]
            print(
                f"  worker {worker['worker_id']} pid={worker['pid']} "
                f"alive={worker['alive']} "
                f"in_flight={worker['tasks_in_flight']} "
                f"served={worker['tasks_assigned']} "
                f"heartbeat={'idle' if beat is None else f'{beat:.2f}s ago'}"
            )
        print(
            f"  backlog={health['backlog_depth']} "
            f"outstanding={health['tasks_outstanding']} "
            f"quarantined={list(health['quarantined_queries']) or 'none'}"
        )
        print(f"  counters: {health['counters']}")
        # The resource-governance view: shm bytes against the budget,
        # degraded-to-pipe episodes, per-worker RSS, and the
        # truncation / rejection / memory-recycle counters.
        res = health["resources"]
        rss = {
            wid: f"{v / 1024 / 1024:.1f}MiB" if v else "?"
            for wid, v in res["worker_rss_bytes"].items()
        }
        print(
            f"  resources: shm_in_flight={res['shm_bytes_in_flight']} "
            f"shm_pooled={res['shm_bytes_pooled']} "
            f"budget={res['shm_budget'] or 'unlimited'} "
            f"degraded_to_pipe={res['degraded_to_pipe']}"
        )
        print(
            f"             worker_rss={rss} "
            f"truncated={res['docs_truncated']} "
            f"result_limited={res['tasks_result_limited']} "
            f"rejected={res['queries_rejected']} "
            f"memory_recycles={res['memory_recycles']}"
        )

    # -- resource governance: caps and admission control -------------------
    from repro.errors import QueryRejectedError
    from repro.runtime import estimate_compile_states

    with SpannerService(
        workers=1, chunk_size=8,
        max_tuples=2, on_result_limit="truncate",
        max_compile_states=estimate_compile_states(CODE_ATOM),
    ) as service:
        # Per-query result caps: at most 2 tuples per document, the
        # truncate policy returning the exact enumeration-order prefix.
        # A lowercase-word extractor yields many tuples per log line,
        # so the cap genuinely bites.
        word_atom = "(ε|.*[^a-z])w{[a-z]+}([^a-z].*|ε)"
        qid = service.register(CompiledSpanner(word_atom))
        capped = service.submit(qid, lines).result()
        truncated = service.health()["resources"]["docs_truncated"]
        print(
            f"\ngovernance: max_tuples=2 (truncate) kept "
            f"{sum(map(len, capped))} tuples, {truncated} docs truncated"
        )
        # Admission control: a formula whose compile-size estimate
        # (Lemma 3.4: <= 2 states per AST node) exceeds the budget is
        # rejected at register() time, before any compilation — no
        # worker ever sees it.
        try:
            service.register(COMPONENT_ATOM)
        except QueryRejectedError as err:
            print(f"governance: oversized query rejected: {err}")

    # -- worker recycling: results are identical across worker churn -------
    with SpannerService(
        workers=2, chunk_size=4, max_tasks_per_worker=2
    ) as service:
        qid = service.register(CompiledSpanner(COMPONENT_ATOM))
        recycled_out = service.submit(qid, lines).result()
        assert recycled_out == components, "recycling changed the answers?!"
        print(
            f"\nrecycle run: {service.workers_recycled} workers recycled, "
            "results byte-identical"
        )


if __name__ == "__main__":
    main()
