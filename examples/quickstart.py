"""Quickstart: extract spans with a regex formula.

Run:  python examples/quickstart.py

Covers the 60-second tour: parse a regex formula with capture
variables, check functionality (Theorem 2.4), compile it to a
vset-automaton (Lemma 3.4), and enumerate all extracted tuples with
polynomial delay (Theorem 3.3).
"""

import repro

TEXT = "chocolate cookie"


def main() -> None:
    # A regex formula: ".*" is the paper's Sigma*, "x{...}" binds the
    # capture variable x.  This one extracts every maximal run of 'o's.
    formula = repro.parse("(ε|.*[^o])x{o+}([^o].*|ε)")
    print(f"formula:     {formula}")
    print(f"variables:   {sorted(formula.variables())}")
    print(f"functional:  {repro.is_functional(formula)}")

    # Compile to a functional vset-automaton (linear time, Lemma 3.4).
    automaton = repro.compile_regex(formula)
    print(f"automaton:   {automaton.n_states} states")

    # Stream the tuples of [[A]](TEXT) — each answer arrives with
    # polynomial delay, in a deterministic (radix) order.
    print(f"\nextractions from {TEXT!r}:")
    for mu in repro.enumerate_tuples(automaton, TEXT):
        span = mu["x"]
        print(f"  x = {span}  ->  {span.extract(TEXT)!r}")

    # Or materialize the whole relation at once.
    relation = repro.evaluate(formula, TEXT)
    print(f"\ntotal tuples: {len(relation)}")


if __name__ == "__main__":
    main()
