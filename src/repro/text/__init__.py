"""Synthetic corpus generators for examples, tests and benchmarks."""

from .generators import (
    email_text,
    log_lines,
    repeats_text,
    sentences,
    unary_text,
)

__all__ = ["sentences", "log_lines", "email_text", "repeats_text", "unary_text"]
