"""Synthetic corpus generators and string indexing for the engine."""

from .generators import (
    email_text,
    log_lines,
    repeats_text,
    sentences,
    unary_text,
)
from .substrings import SubstringIndex

__all__ = [
    "sentences",
    "log_lines",
    "email_text",
    "repeats_text",
    "unary_text",
    "SubstringIndex",
]
