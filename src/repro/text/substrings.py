"""Rolling-hash substring index: equal-substring bucketing in O(N) per length.

The equality constructions (Theorem 5.4 / Corollary 5.3) repeatedly ask
one combinatorial question about the input string: *which start
positions carry equal substrings of a given length?*  The original
``equal_span_choices`` answered it by materializing ``s[i:i+L]`` for
every start — ``O(N)`` string copies of length ``L`` per length, i.e.
``O(N^2)`` character work per length and ``O(N^3)`` over all lengths.

:class:`SubstringIndex` precomputes two polynomial prefix-hash arrays
(independent 61- and 89-bit Mersenne-prime moduli, fixed bases) in
``O(N)`` and then serves

* per-length *buckets* — start positions grouped by substring value,
  built lazily per length in ``O(N)`` hash lookups and cached;
* *class representatives* — the first occurrence of a substring value,
  a canonical id the fused equality runtime uses to merge product
  states across choices that share a substring;
* *occurrence* queries — "is there an occurrence of this substring
  value starting at or after position ``p``?" via binary search;
* O(log N) *longest common extension* between two suffixes, the
  pruning primitive for partially-opened equality groups.

Positions are 1-based throughout, matching :class:`~repro.spans.Span`:
the substring of length ``L`` at start ``p`` is ``s[p-1 : p-1+L]`` and
valid starts range over ``1 .. N-L+1``.

Equality of substrings is decided by the *pair* of hashes.  With
independent 61- and 89-bit Mersenne-prime moduli (~2^150 of combined
hash space) the collision probability over the ``O(N^2)`` substrings of
realistic inputs is ~``N^4 / 2^150`` — vanishing for any ``N`` this
engine can process; the bases are fixed so runs are reproducible.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["SubstringIndex"]

#: Two independent Mersenne-prime moduli and fixed odd bases.  The
#: hash *pair* is load-bearing for correctness (equal() has no
#: verbatim-comparison fallback), hence the large second modulus.
#: Fixed — not salted per process — so bucket layouts are reproducible
#: and worker processes agree with the driver.
_MOD1 = (1 << 61) - 1
_MOD2 = (1 << 89) - 1
_BASE1 = 1_000_003
_BASE2 = 92_821


class SubstringIndex:
    """Equal-substring queries over one string via double rolling hashes.

    Construction is ``O(N)``; every per-length artifact is built lazily
    on first use and cached, so a caller that only ever asks about a few
    lengths (the fused equality runtime) pays ``O(N)`` per distinct
    length, while a caller sweeping all lengths (the materializing
    choice enumeration) pays ``O(N^2)`` total — never ``O(N^3)``.
    """

    __slots__ = ("string", "n", "_h1", "_h2", "_p1", "_p2", "_by_length")

    def __init__(self, s: str):
        self.string = s
        self.n = n = len(s)
        h1 = [0] * (n + 1)
        h2 = [0] * (n + 1)
        p1 = [1] * (n + 1)
        p2 = [1] * (n + 1)
        for i, ch in enumerate(s):
            code = ord(ch) + 1
            h1[i + 1] = (h1[i] * _BASE1 + code) % _MOD1
            h2[i + 1] = (h2[i] * _BASE2 + code) % _MOD2
            p1[i + 1] = (p1[i] * _BASE1) % _MOD1
            p2[i + 1] = (p2[i] * _BASE2) % _MOD2
        self._h1 = h1
        self._h2 = h2
        self._p1 = p1
        self._p2 = p2
        # length -> {hash pair -> sorted list of 1-based starts};
        # dict insertion order is first-occurrence order, which callers
        # iterating buckets rely on (it reproduces the historical
        # substring-keyed bucketing exactly).
        self._by_length: dict[int, dict[tuple[int, int], list[int]]] = {}

    # -- Hashing ------------------------------------------------------------
    def signature(self, start: int, length: int) -> tuple[int, int]:
        """The hash pair of the substring at 1-based ``start``."""
        lo = start - 1
        hi = lo + length
        h1 = (self._h1[hi] - self._h1[lo] * self._p1[length]) % _MOD1
        h2 = (self._h2[hi] - self._h2[lo] * self._p2[length]) % _MOD2
        return (h1, h2)

    def equal(self, p: int, q: int, length: int) -> bool:
        """True iff the length-``length`` substrings at ``p``/``q`` agree."""
        if p == q:
            return True
        return self.signature(p, length) == self.signature(q, length)

    # -- Per-length bucketing -----------------------------------------------
    def buckets(self, length: int) -> dict[tuple[int, int], list[int]]:
        """Start positions grouped by substring value (lazily cached).

        Keys are hash pairs; values are ascending start lists.  Bucket
        iteration order is first-occurrence order — identical to the
        order a substring-keyed dict filled by an ascending start scan
        would produce.
        """
        table = self._by_length.get(length)
        if table is None:
            table = {}
            for start in range(1, self.n + 2 - length):
                table.setdefault(self.signature(start, length), []).append(
                    start
                )
            self._by_length[length] = table
        return table

    def class_rep(self, start: int, length: int) -> int:
        """The first occurrence of the substring value at ``start``.

        A canonical, order-stable id for the equivalence class "spans
        with this content": two starts share a representative iff their
        substrings are equal.
        """
        return self.buckets(length)[self.signature(start, length)][0]

    def occurrences(self, rep: int, length: int) -> list[int]:
        """All starts (ascending) whose substring equals the one at ``rep``."""
        return self.buckets(length)[self.signature(rep, length)]

    def first_occurrence_at_or_after(
        self, rep: int, length: int, min_start: int
    ) -> int | None:
        """Smallest occurrence start ``>= min_start``, or ``None``."""
        starts = self.occurrences(rep, length)
        idx = bisect_left(starts, min_start)
        return starts[idx] if idx < len(starts) else None

    # -- Longest common extension -------------------------------------------
    def lce(self, p: int, q: int) -> int:
        """Length of the longest common prefix of the suffixes at p and q.

        Binary search over hash-pair equality: ``O(log N)``.
        """
        if p == q:
            return self.n + 1 - p
        lo, hi = 0, min(self.n + 1 - p, self.n + 1 - q)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.signature(p, mid) == self.signature(q, mid):
                lo = mid
            else:
                hi = mid - 1
        return lo
