"""Seeded synthetic text workloads.

The paper evaluates nothing empirically, so the benchmark harness needs
workloads of its own.  These generators produce the corpus families the
paper's introduction motivates (natural-language sentences with planted
addresses and keywords, machine logs, email-laden text) plus two
structured families for the algorithmic benchmarks (unary strings and
repeat-heavy strings).  All of them take a seed, so every experiment is
reproducible.
"""

from __future__ import annotations

import random

__all__ = ["sentences", "log_lines", "email_text", "repeats_text", "unary_text"]

_VOCAB = (
    "the police found a report near the old station and filed it quickly "
    "while residents of the city watched the quiet street with some concern "
    "officers noted the case number and moved on to the next address"
).split()

_STREETS = ("Place de la Nation", "Rue Neuve", "Main Street", "Oak Avenue")
_CITIES = ("Bruxelles", "Antwerpen", "Springfield", "Riverton")
_COUNTRIES = ("Belgium", "France", "Utopia")


def sentences(
    n_sentences: int,
    seed: int = 0,
    plant_addresses: int = 0,
    plant_keyword: str | None = None,
    words_per_sentence: tuple[int, int] = (4, 9),
) -> str:
    """Natural-language-like text: sentences separated by single spaces.

    Args:
        n_sentences: number of sentences.
        seed: RNG seed.
        plant_addresses: how many sentences additionally contain a toy
            postal address of the :func:`address_spanner` shape.
        plant_keyword: a token inserted into the planted sentences
            (e.g. ``"police"`` for the intro example).
        words_per_sentence: inclusive range of words per sentence.

    Returns:
        The corpus string, e.g.
        ``"the police found a report. officers noted the case."``.
    """
    rng = random.Random(seed)
    planted = set(rng.sample(range(n_sentences), min(plant_addresses, n_sentences)))
    out: list[str] = []
    for index in range(n_sentences):
        count = rng.randint(*words_per_sentence)
        words = [rng.choice(_VOCAB) for _ in range(count)]
        if index in planted:
            street = rng.choice(_STREETS)
            number = rng.randint(1, 99)
            zipcode = rng.randint(1000, 9999)
            city = rng.choice(_CITIES)
            country = rng.choice(_COUNTRIES)
            address = f"{street} {number}, {zipcode} {city}, {country}"
            position = rng.randrange(len(words) + 1)
            words.insert(position, address)
            if plant_keyword:
                words.insert(rng.randrange(len(words) + 1), plant_keyword)
        ender = rng.choice(".!?")
        out.append(" ".join(words) + ender)
    return " ".join(out)


def log_lines(n_lines: int, seed: int = 0, error_rate: float = 0.2) -> str:
    """Machine-log text: ``HH:MM:SS LEVEL component message code=NNN``."""
    rng = random.Random(seed)
    components = ("disk", "net", "auth", "db", "cache")
    messages = (
        "request completed",
        "connection reset",
        "retry scheduled",
        "timeout exceeded",
        "checksum mismatch",
    )
    lines = []
    for _ in range(n_lines):
        hh = rng.randrange(24)
        mm = rng.randrange(60)
        ss = rng.randrange(60)
        level = "ERROR" if rng.random() < error_rate else "INFO"
        component = rng.choice(components)
        message = rng.choice(messages)
        code = rng.randrange(100, 1000)
        lines.append(
            f"{hh:02d}:{mm:02d}:{ss:02d} {level} {component} {message} "
            f"code={code}"
        )
    return "\n".join(lines)


def email_text(n_tokens: int, seed: int = 0, email_rate: float = 0.15) -> str:
    """Word text with planted lowercase emails (Example 2.5's shape)."""
    rng = random.Random(seed)
    users = ("ada", "alan", "grace", "edsger", "barbara")
    domains = ("example.com", "mail.net", "research.org")
    tokens = []
    for _ in range(n_tokens):
        if rng.random() < email_rate:
            tokens.append(f"{rng.choice(users)}@{rng.choice(domains)}")
        else:
            tokens.append(rng.choice(_VOCAB))
    return " ".join(tokens)


def repeats_text(
    length: int, seed: int = 0, alphabet: str = "ab", plant: str | None = "aba"
) -> str:
    """A random string over ``alphabet`` with a planted repeat.

    With the default planting, the substring ``plant`` occurs at least
    twice, guaranteeing non-trivial answers for string-equality
    workloads (experiment E10).
    """
    rng = random.Random(seed)
    chars = [rng.choice(alphabet) for _ in range(length)]
    if plant and length >= 2 * len(plant):
        first = rng.randrange(0, length // 2 - len(plant) + 1)
        second = rng.randrange(length // 2, length - len(plant) + 1)
        chars[first : first + len(plant)] = plant
        chars[second : second + len(plant)] = plant
    return "".join(chars)


def unary_text(length: int, symbol: str = "a") -> str:
    """The unary string ``symbol^length`` (the Theorem 3.3 examples)."""
    if len(symbol) != 1:
        raise ValueError("symbol must be a single character")
    return symbol * length
