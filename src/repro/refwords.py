"""Ref-words: the semantic backbone of spanner representations (§2.2.1).

A *ref-word* over variables ``V`` is a string over the extended alphabet
``Sigma ∪ Gamma_V``.  It is *valid* when every variable of ``V`` is
opened exactly once and closed exactly once, in that order.  The
*clearing morphism* ``clr`` erases the markers; a valid ref-word ``r``
with ``clr(r) = s`` encodes a ``(V, s)``-tuple ``mu_r``.

This module implements validity, ``clr``, the decoding ``r -> mu_r``,
the encoding ``mu -> r`` (one canonical ref-word per tuple), and the
exhaustive generator of all valid ref-words of a string — the latter is
the independent test oracle used to cross-check the production
evaluation pipeline.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Iterator, Sequence

from .alphabet import VariableMarker, close_marker, marker_sort_key, open_marker
from .errors import SpannerError
from .spans import Span, SpanTuple

__all__ = [
    "RefSymbol",
    "RefWord",
    "clr",
    "is_valid",
    "tuple_from_refword",
    "refword_from_tuple",
    "all_valid_refwords",
    "refword_str",
]

#: A ref-word symbol is either a character (str of length 1) or a marker.
RefSymbol = str | VariableMarker

#: A ref-word is a sequence of ref-symbols.
RefWord = tuple[RefSymbol, ...]


def clr(refword: Sequence[RefSymbol]) -> str:
    """The clearing morphism: erase markers, keep terminal characters."""
    return "".join(sym for sym in refword if isinstance(sym, str))


def refword_str(refword: Sequence[RefSymbol]) -> str:
    """Human-readable rendering, e.g. ``c ⊢x oo ⊣x kie``."""
    return "".join(str(sym) for sym in refword)


def is_valid(refword: Sequence[RefSymbol], variables: Iterable[str]) -> bool:
    """Check validity for ``variables`` (Definition in §2.2.1).

    Every variable must be opened exactly once and closed exactly once,
    with the opening occurring before the closing.  Markers of variables
    outside ``variables`` make the ref-word invalid for this set.
    """
    needed = set(variables)
    opened: set[str] = set()
    closed: set[str] = set()
    for sym in refword:
        if isinstance(sym, str):
            continue
        var = sym.variable
        if var not in needed:
            return False
        if sym.is_open:
            if var in opened:
                return False
            opened.add(var)
        else:
            if var not in opened or var in closed:
                return False
            closed.add(var)
    return opened == needed and closed == needed


def tuple_from_refword(
    refword: Sequence[RefSymbol], variables: Iterable[str]
) -> SpanTuple:
    """Decode a valid ref-word into its ``(V, s)``-tuple ``mu_r``.

    For each variable ``x`` with factorization
    ``r = r'_x . x⊢ . r_x . ⊣x . r''_x`` the span is
    ``[|clr(r'_x)| + 1, |clr(r'_x)| + |clr(r_x)| + 1>``.

    Raises:
        SpannerError: if the ref-word is not valid for ``variables``.
    """
    var_set = set(variables)
    if not is_valid(refword, var_set):
        raise SpannerError(
            f"ref-word {refword_str(refword)} is not valid for {sorted(var_set)}"
        )
    starts: dict[str, int] = {}
    ends: dict[str, int] = {}
    position = 1  # 1-based index of the next terminal character
    for sym in refword:
        if isinstance(sym, str):
            position += 1
        elif sym.is_open:
            starts[sym.variable] = position
        else:
            ends[sym.variable] = position
    return SpanTuple({v: Span(starts[v], ends[v]) for v in var_set})


def refword_from_tuple(mu: SpanTuple, s: str) -> RefWord:
    """Encode a tuple as one canonical valid ref-word with ``clr(r) = s``.

    When several markers fall between the same two characters, the
    canonical order is: closes of spans that *started earlier*, then all
    opens, then closes of empty spans ``[g, g>`` (whose open sits in the
    same gap).  This is always a valid interleaving; tests that need
    *all* interleavings use :func:`all_valid_refwords`.
    """
    for var, span in mu.items():
        if not span.fits(s):
            raise SpannerError(f"span {span} of variable {var} does not fit s")
    by_gap: dict[int, list[tuple[int, str, VariableMarker]]] = {}
    for var, span in mu.items():
        by_gap.setdefault(span.start, []).append((1, var, open_marker(var)))
        close_rank = 2 if span.is_empty() else 0
        by_gap.setdefault(span.end, []).append(
            (close_rank, var, close_marker(var))
        )
    out: list[RefSymbol] = []
    for gap in range(1, len(s) + 2):
        for _rank, _var, marker in sorted(
            by_gap.get(gap, ()), key=lambda item: item[:2]
        ):
            out.append(marker)
        if gap <= len(s):
            out.append(s[gap - 1])
    return tuple(out)


def all_valid_refwords(s: str, variables: Iterable[str]) -> Iterator[RefWord]:
    """Yield *every* valid ref-word ``r`` with ``clr(r) = s`` — ``Ref(s)``.

    This enumerates every tuple and, for each tuple, every interleaving
    of markers that share a gap.  The count grows very fast (it is
    exponential in ``|variables|``), so this is strictly a test oracle
    for tiny inputs.
    """
    var_list = sorted(set(variables))
    n = len(s)
    gaps = range(1, n + 2)

    def place(remaining: list[str], assignment: dict[str, Span]) -> Iterator[dict[str, Span]]:
        if not remaining:
            yield dict(assignment)
            return
        var = remaining[0]
        for i in gaps:
            for j in range(i, n + 2):
                assignment[var] = Span(i, j)
                yield from place(remaining[1:], assignment)
        del assignment[var]

    for assignment in place(var_list, {}):
        by_gap: dict[int, list[VariableMarker]] = {}
        for var, span in assignment.items():
            by_gap.setdefault(span.start, []).append(open_marker(var))
            by_gap.setdefault(span.end, []).append(close_marker(var))
        yield from _interleavings(s, by_gap)


def _interleavings(s: str, by_gap: dict[int, list[VariableMarker]]) -> Iterator[RefWord]:
    """All marker orderings per gap that keep the ref-word valid."""
    n = len(s)
    gap_orders: list[list[tuple[VariableMarker, ...]]] = []
    for gap in range(1, n + 2):
        markers = by_gap.get(gap, [])
        if not markers:
            gap_orders.append([()])
            continue
        seen: set[tuple[VariableMarker, ...]] = set()
        orders = []
        for perm in permutations(sorted(markers, key=marker_sort_key)):
            if perm in seen:
                continue
            seen.add(perm)
            # Within a single gap, x⊢ must still precede ⊣x for each x.
            position = {m: idx for idx, m in enumerate(perm)}
            ok = True
            for m in perm:
                if m.is_open:
                    closing = close_marker(m.variable)
                    if closing in position and position[closing] < position[m]:
                        ok = False
                        break
            if ok:
                orders.append(perm)
        gap_orders.append(orders)

    def build(gap_index: int, acc: list[RefSymbol]) -> Iterator[RefWord]:
        if gap_index == n + 1:
            yield tuple(acc)
            return
        for order in gap_orders[gap_index]:
            extended = acc + list(order)
            if gap_index < n:
                extended.append(s[gap_index])
            yield from build(gap_index + 1, extended)

    yield from build(0, [])
