"""Command-line interface: ``spanner-join``.

Subcommands:

* ``extract`` — evaluate one regex formula over one or more documents
  and print the extracted span tuples (streaming, polynomial delay);
  the formula is compiled **once** (the compiled-spanner runtime), so
  repeating ``--file`` streams a whole collection through the same
  precomputed tables; ``--workers N`` shards the documents across N
  worker processes sharing that one compiled artifact (output order
  and content are identical to the serial run);
* ``query`` — evaluate a regex CQ given repeated ``--atom`` formulas,
  an optional ``--head`` and optional ``--equal`` groups; with several
  ``--file`` arguments the per-query compilation is shared across the
  documents;
* ``info`` — parse a formula and report variables, functionality and
  compiled-automaton size.

Examples::

    spanner-join extract '(ε|.* )m{u{[a-z]+}@d{[a-z]+\\.[a-z]+}}( .*|ε)' \\
        --text 'write to ada@example.com today'
    spanner-join extract '.*x{[0-9]+}.*' --file a.log --file b.log
    spanner-join query --atom '.*x{[0-9]+}.*' --atom '.*y{ERROR}.*' \\
        --head x --file app.log
    spanner-join info 'a*x{a*}a*'
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable

from .errors import SpannerError
from .queries import QueryEvaluator, RegexCQ
from .regex import check_functional, parse
from .runtime.compiled import CompiledSpanner
from .spans import SpanTuple
from .vset import compile_regex

__all__ = ["main"]


def _read_documents(args: argparse.Namespace) -> list[tuple[str, str]]:
    """The ``(name, text)`` documents selected by --text/--file/stdin."""
    if args.text is not None:
        return [("<text>", args.text)]
    if args.file:
        docs = []
        for path in args.file:
            try:
                with open(path, encoding="utf-8") as handle:
                    docs.append((path, handle.read()))
            except OSError as err:
                # Surface as a SpannerError so main()'s single error
                # convention applies (prints "error: ...", exits 2).
                raise SpannerError(
                    f"cannot read {path}: {err.strerror or err}"
                ) from err
        return docs
    return [("<stdin>", sys.stdin.read())]


def _print_tuples(
    tuples: Iterable[SpanTuple],
    s: str,
    fmt: str,
    limit: int | None,
    prefix: str | None = None,
) -> int:
    count = 0
    for mu in tuples:
        if fmt == "spans":
            row = " ".join(f"{v}={mu[v]}" for v in sorted(mu.variables))
        elif fmt == "strings":
            row = " ".join(
                f"{v}={mu[v].extract(s)!r}" for v in sorted(mu.variables)
            )
        else:  # tsv
            row = "\t".join(mu[v].extract(s) for v in sorted(mu.variables))
        if prefix is not None:
            row = f"{prefix}\t{row}" if fmt == "tsv" else f"{prefix}: {row}"
        print(row)
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def _cmd_extract(args: argparse.Namespace) -> int:
    docs = _read_documents(args)
    spanner = CompiledSpanner(args.formula)
    label_docs = len(docs) > 1
    total = 0
    if args.workers > 1 and len(docs) > 1:
        # Shard the corpus across worker processes; results stream back
        # in input order, so the printed output matches the serial run.
        from .runtime.parallel import ParallelSpanner

        engine = ParallelSpanner(spanner, workers=args.workers)
        # Push --limit into the workers: a capped extraction must stop
        # enumerating at the cap there, as the serial path does here.
        answer_streams = engine.evaluate_many(
            (text for _name, text in docs), limit=args.limit
        )
        for (name, text), answers in zip(docs, answer_streams):
            total += _print_tuples(
                answers,
                text,
                args.format,
                args.limit,
                prefix=name if label_docs else None,
            )
    else:
        for name, text in docs:
            total += _print_tuples(
                spanner.stream(text),
                text,
                args.format,
                args.limit,
                prefix=name if label_docs else None,
            )
    if args.count:
        print(f"# {total} tuples", file=sys.stderr)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    docs = _read_documents(args)
    head = args.head or []
    equalities = [group.split(",") for group in (args.equal or [])]
    query = RegexCQ(head, args.atom, equalities=equalities)
    # One evaluator for all documents: its compilation caches (static
    # join folds, equality-free compiled spanners) amortize across them.
    evaluator = QueryEvaluator()
    label_docs = len(docs) > 1
    for name, text in docs:
        relation = evaluator.evaluate(query, text, strategy=args.strategy)
        decision = evaluator.last_decision
        if decision is not None and args.explain:
            print(
                f"# strategy: {decision.strategy} — {decision.reason}",
                file=sys.stderr,
            )
        if query.is_boolean:
            verdict = "true" if relation else "false"
            print(f"{name}: {verdict}" if label_docs else verdict)
            continue
        _print_tuples(
            relation.sorted(),
            text,
            args.format,
            args.limit,
            prefix=name if label_docs else None,
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    formula = parse(args.formula)
    report = check_functional(formula)
    print(f"formula:    {formula}")
    print(f"size:       {formula.size()} nodes")
    print(f"variables:  {sorted(formula.variables())}")
    print(f"functional: {report.functional}")
    if not report.functional:
        print(f"reason:     {report.reason}")
        return 1
    automaton = compile_regex(formula)
    compact = automaton.compacted()
    print(
        f"automaton:  {automaton.n_states} states "
        f"({compact.n_states} compacted), "
        f"{automaton.n_transitions} transitions"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spanner-join",
        description=(
            "Document-spanner extraction and regex-CQ evaluation "
            "(PODS 2018 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_io(p: argparse.ArgumentParser) -> None:
        p.add_argument("--text", help="input string (default: stdin)")
        p.add_argument(
            "--file",
            action="append",
            help=(
                "read input from a file (repeatable: the query is "
                "compiled once and streamed over every file)"
            ),
        )
        p.add_argument(
            "--format",
            choices=("spans", "strings", "tsv"),
            default="strings",
            help="output format (default: strings)",
        )
        p.add_argument(
            "--limit", type=int, help="stop after N tuples (per document)"
        )

    p_extract = sub.add_parser("extract", help="evaluate one regex formula")
    p_extract.add_argument("formula", help="regex formula (concrete syntax)")
    add_io(p_extract)
    p_extract.add_argument(
        "--count", action="store_true", help="print the tuple count to stderr"
    )
    p_extract.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard documents across N worker processes sharing one "
            "compiled artifact (default: 1 = serial; pays off on "
            "many/large documents)"
        ),
    )
    p_extract.set_defaults(func=_cmd_extract)

    p_query = sub.add_parser("query", help="evaluate a regex CQ")
    p_query.add_argument(
        "--atom",
        action="append",
        required=True,
        help="a regex-formula atom (repeatable)",
    )
    p_query.add_argument(
        "--head", nargs="*", help="projection variables (default: Boolean)"
    )
    p_query.add_argument(
        "--equal",
        action="append",
        help="comma-separated string-equality group (repeatable)",
    )
    p_query.add_argument(
        "--strategy",
        choices=("auto", "canonical", "compiled"),
        default="auto",
    )
    p_query.add_argument(
        "--explain", action="store_true", help="print the plan decision"
    )
    add_io(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_info = sub.add_parser("info", help="inspect a regex formula")
    p_info.add_argument("formula")
    p_info.set_defaults(func=_cmd_info)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpannerError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
