"""Command-line interface: ``spanner-join``.

Subcommands:

* ``extract`` — evaluate one or more regex formulas over one or more
  documents and print the extracted span tuples (streaming, polynomial
  delay); each formula is compiled **once** (the compiled-spanner
  runtime), so repeating ``--file`` streams a whole collection through
  the same precomputed tables; ``--workers N`` shards the work across
  N worker processes — with several formulas all of them are
  registered on **one** serving fleet (``SpannerService``) and
  dispatched concurrently, each worker holding every query's compiled
  artifact at most once; output order and content are identical to the
  serial run, and with ``--file`` inputs only the *paths* are shipped
  (each worker reads its own documents, so document bytes never ride
  the task pipe); ``--transport {auto,shm,pipe}`` picks how in-memory
  documents reach workers (shared-memory segments vs the task pipe),
  and ``--encoding``/``--errors`` decode legacy corpora without
  crashing mid-stream; ``--task-timeout`` bounds every dispatched
  chunk (a hung worker is killed and replaced instead of stalling the
  run) and ``--on-overload`` picks the load-shedding policy; the
  resource-governance knobs (``--shm-budget``, ``--max-tuples`` /
  ``--max-result-bytes`` / ``--on-result-limit``,
  ``--worker-memory-limit``, ``--max-compile-states`` /
  ``--compile-timeout``) bound shared memory, per-document output
  volume, worker RSS and compile time, degrading or rejecting
  gracefully instead of dying;
* ``query`` — evaluate a regex CQ given repeated ``--atom`` formulas,
  an optional ``--head`` and optional ``--equal`` groups; with several
  ``--file`` arguments the per-query compilation is shared across the
  documents, and ``--workers N`` shards them — string-equality
  queries included: workers run the fused per-document equality join
  against the one shipped static artifact; ``--next-query`` separates
  several CQs in one invocation (each group of ``--atom``/``--head``/
  ``--equal`` before the next separator is one query), served like
  ``extract``'s multi-formula path: with ``--workers N`` all of them
  register on one fleet and output is grouped per query (q0, q1, ...)
  with bytes identical to running each query serially;
* ``info`` — parse a formula and report variables, functionality and
  compiled-automaton size;
* ``cache`` — inspect and maintain the durable runtime state:
  ``cache ls --dir DIR`` lists a compiled-artifact cache's entries
  (and quarantined corpses), ``cache verify --dir DIR`` integrity-
  checks every entry without modifying anything (exit 1 when corrupt
  entries exist), and ``cache gc [--dir DIR]`` sweeps shared-memory
  segments orphaned by dead drivers plus (with ``--dir``) the cache's
  quarantined files.  ``extract``/``query`` grow ``--artifact-cache
  DIR``: fleet runs consult the cache before compiling each formula
  (warm start across CLI invocations) and persist what they compile.

Multi-query fleet runs (``extract`` with several formulas, ``query``
with ``--next-query``) default to **fused serving**: one document scan
answers every query, demultiplexed per query with output bytes
identical to the sequential scans; ``--no-fuse`` forces one scan per
query (same bytes, more passes).

Examples::

    spanner-join extract '(ε|.* )m{u{[a-z]+}@d{[a-z]+\\.[a-z]+}}( .*|ε)' \\
        --text 'write to ada@example.com today'
    spanner-join extract '.*x{[0-9]+}.*' --file a.log --file b.log
    spanner-join extract '.*x{[0-9]+}.*' --file a.log --workers 4 \\
        --artifact-cache ~/.cache/spanner-join
    spanner-join query --atom '.*x{[0-9]+}.*' --atom '.*y{ERROR}.*' \\
        --head x --file app.log
    spanner-join query --atom '.*x{[0-9]+}.*' --head x --next-query \\
        --atom '.*y{WARN|ERROR}.*' --head y --file app.log --workers 4
    spanner-join info 'a*x{a*}a*'
    spanner-join cache verify --dir ~/.cache/spanner-join
    spanner-join cache gc --dir ~/.cache/spanner-join
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable

from .errors import SpannerError
from .queries import QueryEvaluator, RegexCQ
from .regex import check_functional, parse
from .runtime.compiled import CompiledSpanner
from .spans import SpanRelation, SpanTuple
from .vset import compile_regex

__all__ = ["main"]


class _GroupedAppend(argparse.Action):
    """``append`` that tags each value with the current query group.

    ``query`` accepts several CQs in one invocation, separated by
    ``--next-query``; every ``--atom``/``--head``/``--equal`` belongs
    to the group open when it appears.  The tag is the group index, so
    ``_grouped_queries`` can reassemble the per-query argument sets
    without argparse needing nested parsers.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        items = list(getattr(namespace, self.dest) or ())
        items.append((getattr(namespace, "_query_group", 0), values))
        setattr(namespace, self.dest, items)


class _NextQuery(argparse.Action):
    """The ``--next-query`` separator: open the next query group."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(
            namespace,
            "_query_group",
            getattr(namespace, "_query_group", 0) + 1,
        )


def _read_documents(args: argparse.Namespace) -> list[tuple[str, str]]:
    """The ``(name, text)`` documents selected by --text/--file/stdin."""
    if args.text is not None:
        return [("<text>", args.text)]
    if args.file:
        return [
            (path, _read_file_text(path, args.encoding, args.errors))
            for path in args.file
        ]
    return [("<stdin>", sys.stdin.read())]


def _print_tuples(
    tuples: Iterable[SpanTuple],
    s: str,
    fmt: str,
    limit: int | None,
    prefix: str | None = None,
) -> int:
    count = 0
    for mu in tuples:
        if fmt == "spans":
            row = " ".join(f"{v}={mu[v]}" for v in sorted(mu.variables))
        elif fmt == "strings":
            row = " ".join(
                f"{v}={mu[v].extract(s)!r}" for v in sorted(mu.variables)
            )
        else:  # tsv
            row = "\t".join(mu[v].extract(s) for v in sorted(mu.variables))
        if prefix is not None:
            row = f"{prefix}\t{row}" if fmt == "tsv" else f"{prefix}: {row}"
        print(row)
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def _read_file_text(
    path: str, encoding: str = "utf-8", errors: str = "strict"
) -> str:
    """One document off disk, with the CLI's single error convention.

    Both failure kinds — unreadable file and undecodable bytes —
    surface as :class:`SpannerError` so ``main()`` prints ``error: ...``
    and exits 2 instead of dumping a traceback mid-stream.
    """
    try:
        from .runtime.transport import read_document

        return read_document(path, encoding=encoding, errors=errors)
    except OSError as err:
        raise SpannerError(
            f"cannot read {path}: {err.strerror or err}"
        ) from err
    except UnicodeDecodeError as err:
        raise SpannerError(
            f"cannot decode {path} as {encoding}: {err} "
            "(pick a codec with --encoding, or soften with "
            "--errors replace)"
        ) from err


def _stat_inputs(paths: Iterable[str]) -> None:
    """Fail before printing anything when an input is missing/unreadable."""
    for name in paths:
        try:
            os.stat(name)
        except OSError as err:
            raise SpannerError(
                f"cannot read {name}: {err.strerror or err}"
            ) from err


def _extract_prefix(
    query_index: int, name: str, label_queries: bool, label_docs: bool
) -> str | None:
    """The row prefix: query label, document label, both, or neither."""
    parts = []
    if label_queries:
        parts.append(f"q{query_index}")
    if label_docs:
        parts.append(name)
    return " ".join(parts) if parts else None


def _fleet_opts(args: argparse.Namespace) -> dict:
    """The fault-tolerance and resource knobs every fleet site shares.

    Validated here so a bad value prints ``error: ...`` (exit 2) like
    every other CLI mistake instead of a constructor traceback.  A task
    that then exceeds the deadline surfaces as
    :class:`~repro.errors.TaskTimeoutError`, and one that exceeds a
    result cap as :class:`~repro.errors.ResultLimitError` — both
    ``SpannerError``s, so ``main()`` renders them the same way.
    """
    if args.task_timeout is not None and args.task_timeout <= 0:
        raise SpannerError(
            f"--task-timeout must be > 0, got {args.task_timeout}"
        )
    for flag, value in (
        ("--shm-budget", args.shm_budget),
        ("--max-tuples", args.max_tuples),
        ("--max-result-bytes", args.max_result_bytes),
        ("--worker-memory-limit", args.worker_memory_limit),
    ):
        if value is not None and value < 1:
            raise SpannerError(f"{flag} must be >= 1, got {value}")
    return {
        "task_timeout": args.task_timeout,
        "on_overload": args.on_overload,
        "shm_budget": args.shm_budget,
        "max_tuples": args.max_tuples,
        "max_result_bytes": args.max_result_bytes,
        "on_result_limit": args.on_result_limit,
        "worker_memory_limit": args.worker_memory_limit,
        "artifact_store": _artifact_store(args),
    }


def _artifact_store(args: argparse.Namespace):
    """The ``--artifact-cache`` FileStore, or ``None`` when unset."""
    if getattr(args, "artifact_cache", None) is None:
        return None
    from .runtime.store import FileStore

    try:
        return FileStore(os.path.expanduser(args.artifact_cache))
    except OSError as err:
        raise SpannerError(
            f"cannot open artifact cache {args.artifact_cache}: "
            f"{err.strerror or err}"
        ) from err


def _admission_opts(args: argparse.Namespace) -> dict:
    """The register-time admission knobs (``SpannerService`` only —
    ``ParallelSpanner`` compiles its one query eagerly at construction,
    so there is no admission decision left to make there)."""
    if args.max_compile_states is not None and args.max_compile_states < 1:
        raise SpannerError(
            f"--max-compile-states must be >= 1, got {args.max_compile_states}"
        )
    if args.compile_timeout is not None and args.compile_timeout <= 0:
        raise SpannerError(
            f"--compile-timeout must be > 0, got {args.compile_timeout}"
        )
    return {
        "max_compile_states": args.max_compile_states,
        "compile_timeout": args.compile_timeout,
    }


def _extract_fleet(args: argparse.Namespace, formulas: list[str]) -> int:
    """Serve several formulas over one worker fleet (``--workers N``).

    Every formula is registered on one :class:`SpannerService`, so the
    workers hold each compiled artifact at most once, and the whole
    batch goes through one :meth:`submit_all` — with ``--fuse`` (the
    default) that is a single fused document scan answering every
    formula at once; ``--no-fuse`` dispatches one scan per formula.
    Output is grouped query-major then file-major, exactly as the
    serial loop prints it, fused or not.
    """
    from .runtime.service import SpannerService

    _stat_inputs(args.file)
    label_docs = len(args.file) > 1
    total = 0
    with SpannerService(
        workers=args.workers,
        backend=args.backend,
        transport=args.transport,
        encoding=args.encoding,
        errors=args.errors,
        **_fleet_opts(args),
        **_admission_opts(args),
    ) as service:
        # Register the raw formulas so admission control sees them
        # *before* compilation (the artifact — the compiled tables —
        # is identical either way).  A rejection surfaces as
        # ``error: query rejected: ...`` before any worker time.
        query_ids = [service.register(formula) for formula in formulas]
        # One submit_all for the whole batch (deduplicated: repeating a
        # formula repeats its rendering below, not its evaluation).
        futures = service.submit_all(
            args.file,
            queries=list(dict.fromkeys(query_ids)),
            kind="files",
            limit=args.limit,
            fuse=args.fuse,
        )
        for i, qid in enumerate(query_ids):
            try:
                per_file = futures[qid].result()
            except OSError as err:
                failed = getattr(err, "filename", None)
                raise SpannerError(
                    f"worker cannot read {failed or 'input'}: "
                    f"{err.strerror or err}"
                ) from err
            except UnicodeDecodeError as err:
                raise SpannerError(
                    f"worker cannot decode input as {args.encoding}: {err} "
                    "(pick a codec with --encoding, or soften with "
                    "--errors replace)"
                ) from err
            for name, answers in zip(args.file, per_file):
                # The driver only needs the text to render span
                # *contents*; the positional format skips the re-read.
                # (The re-read assumes the file is stable between the
                # worker's read and this one — the usual cost of
                # rendering against file-backed corpora.)
                text = (
                    ""
                    if args.format == "spans"
                    else _read_file_text(name, args.encoding, args.errors)
                )
                total += _print_tuples(
                    answers, text, args.format, args.limit,
                    prefix=_extract_prefix(i, name, len(formulas) > 1,
                                           label_docs),
                )
    return total


def _cmd_extract(args: argparse.Namespace) -> int:
    formulas = args.formula
    label_queries = len(formulas) > 1
    total = 0
    # --text takes precedence over --file (as _read_documents does), so
    # the fleet branch must not trigger when --text is present.
    if (
        args.workers > 1
        and args.text is None
        and args.file
        and (len(args.file) > 1 or label_queries)
    ):
        if (
            label_queries
            or args.max_compile_states is not None
            or args.compile_timeout is not None
        ):
            # Several formulas — or an admission knob, which only
            # register() on a SpannerService enforces (ParallelSpanner
            # compiles eagerly, before any admission decision exists).
            total = _extract_fleet(args, formulas)
        else:
            # One query: keep the streaming single-query session (the
            # fleet-backed ParallelSpanner) — results render as each
            # file's chunk completes instead of after the whole batch.
            from .runtime.parallel import ParallelSpanner

            _stat_inputs(args.file)
            # Hand over the syntax, not a pre-wrapped CompiledSpanner:
            # the session keys its --artifact-cache entry by the source
            # fingerprint, so warm runs (and the multi-file fleet path,
            # which registers the same syntax) share one cache entry.
            engine = ParallelSpanner(
                formulas[0],
                workers=args.workers,
                backend=args.backend,
                transport=args.transport,
                encoding=args.encoding,
                errors=args.errors,
                fuse=args.fuse,
                **_fleet_opts(args),
            )
            # Push --limit into the workers: a capped extraction must
            # stop enumerating at the cap there, as the serial path
            # does here.
            try:
                answer_streams = engine.evaluate_files(
                    args.file, limit=args.limit
                )
                for name, answers in zip(args.file, answer_streams):
                    text = (
                        ""
                        if args.format == "spans"
                        else _read_file_text(name, args.encoding, args.errors)
                    )
                    total += _print_tuples(
                        answers, text, args.format, args.limit, prefix=name
                    )
            except OSError as err:
                failed = getattr(err, "filename", None)
                raise SpannerError(
                    f"worker cannot read {failed or 'input'}: "
                    f"{err.strerror or err}"
                ) from err
            except UnicodeDecodeError as err:
                raise SpannerError(
                    f"worker cannot decode input as {args.encoding}: {err} "
                    "(pick a codec with --encoding, or soften with "
                    "--errors replace)"
                ) from err
    else:
        docs = _read_documents(args)
        label_docs = len(docs) > 1
        for i, formula in enumerate(formulas):
            spanner = CompiledSpanner(formula)
            for name, text in docs:
                total += _print_tuples(
                    spanner.stream(text),
                    text,
                    args.format,
                    args.limit,
                    prefix=_extract_prefix(i, name, label_queries, label_docs),
                )
    if args.count:
        print(f"# {total} tuples", file=sys.stderr)
    return 0


def _query_parallel(
    args: argparse.Namespace, query: RegexCQ, docs: list[tuple[str, str]]
) -> int:
    """Shard a query corpus across workers (compiled strategy).

    Equality queries ship their fused :class:`CompiledEqualityQuery`
    artifact; equality-free ones their compiled spanner.  Output
    matches the serial compiled run: per-document sorted tuples.
    """
    if args.strategy == "canonical":
        raise SpannerError(
            "--workers shards the compiled strategy; drop "
            "--strategy canonical or run with --workers 1"
        )
    from .queries.compiled import CompiledEvaluator
    from .runtime.parallel import ParallelSpanner

    evaluator = CompiledEvaluator()
    engine = evaluator.equality_runtime(query) or evaluator.runtime(query)
    assert engine is not None
    label_docs = len(docs) > 1
    # The serial path sorts the *full* relation before applying --limit,
    # so workers must not cap enumeration early (the first tuples in
    # radix order are not the first tuples in sorted order).  Boolean
    # queries only need non-emptiness: one tuple decides the verdict.
    limit = 1 if query.is_boolean else None
    with ParallelSpanner(
        engine,
        workers=args.workers,
        backend=args.backend,
        transport=args.transport,
        encoding=args.encoding,
        errors=args.errors,
        fuse=args.fuse,
        **_fleet_opts(args),
    ) as pool:
        streams = pool.evaluate_many(
            (text for _name, text in docs), limit=limit
        )
        for (name, text), answers in zip(docs, streams):
            if args.explain:
                # Mirror the serial per-document plan line; sharding
                # fixes the strategy statically.
                print(
                    f"# strategy: compiled — sharded across "
                    f"{args.workers} workers"
                    + (
                        " (fused equality runtime)"
                        if query.equality_atoms
                        else ""
                    ),
                    file=sys.stderr,
                )
            if query.is_boolean:
                verdict = "true" if answers else "false"
                print(f"{name}: {verdict}" if label_docs else verdict)
                continue
            relation = SpanRelation(query.head, answers)
            _print_tuples(
                relation.sorted(),
                text,
                args.format,
                args.limit,
                prefix=name if label_docs else None,
            )
    return 0


def _grouped_queries(args: argparse.Namespace) -> list[RegexCQ]:
    """The CQs of one invocation, reassembled from ``--next-query`` groups.

    ``--atom``/``--head``/``--equal`` values carry the index of the
    query group open when they appeared (:class:`_GroupedAppend`); this
    rebuilds one :class:`RegexCQ` per group, validating that every
    group has at least one atom and at most one ``--head``.
    """
    n_groups = getattr(args, "_query_group", 0) + 1
    atoms: list[list[str]] = [[] for _ in range(n_groups)]
    heads: list[list[str] | None] = [None] * n_groups
    equalities: list[list[list[str]]] = [[] for _ in range(n_groups)]
    for group, atom in args.atom or ():
        atoms[group].append(atom)
    for group, head in args.head or ():
        if heads[group] is not None:
            raise SpannerError(f"query q{group}: --head given twice")
        heads[group] = head
    for group, spec in args.equal or ():
        equalities[group].append(spec.split(","))
    queries = []
    for g in range(n_groups):
        if not atoms[g]:
            raise SpannerError(
                f"query q{g} needs at least one --atom (each "
                "--next-query group is a separate CQ)"
            )
        queries.append(
            RegexCQ(heads[g] or [], atoms[g], equalities=equalities[g])
        )
    return queries


def _query_serial(
    args: argparse.Namespace,
    queries: list[RegexCQ],
    docs: list[tuple[str, str]],
) -> int:
    # One evaluator for all queries and documents: its compilation
    # caches (static join folds, equality-free compiled spanners)
    # amortize across them.
    evaluator = QueryEvaluator()
    label_queries = len(queries) > 1
    label_docs = len(docs) > 1
    for i, query in enumerate(queries):
        for name, text in docs:
            relation = evaluator.evaluate(query, text, strategy=args.strategy)
            decision = evaluator.last_decision
            if decision is not None and args.explain:
                print(
                    f"# strategy: {decision.strategy} — {decision.reason}",
                    file=sys.stderr,
                )
            prefix = _extract_prefix(i, name, label_queries, label_docs)
            if query.is_boolean:
                verdict = "true" if relation else "false"
                print(f"{prefix}: {verdict}" if prefix else verdict)
                continue
            _print_tuples(
                relation.sorted(),
                text,
                args.format,
                args.limit,
                prefix=prefix,
            )
    return 0


def _query_fleet(
    args: argparse.Namespace,
    queries: list[RegexCQ],
    docs: list[tuple[str, str]],
) -> int:
    """Serve several CQs over one worker fleet (``--workers N``).

    The ``query`` twin of :func:`_extract_fleet`: every CQ's compiled
    engine (fused equality artifact or plain spanner) registers on one
    :class:`SpannerService`, the document batch goes through one
    :meth:`submit_all` — a single fused scan with ``--fuse`` (default),
    one scan per query with ``--no-fuse`` — and output is grouped
    query-major (q0, q1, ...) then document-major, byte-identical to
    running each query serially.
    """
    if args.strategy == "canonical":
        raise SpannerError(
            "--workers shards the compiled strategy; drop "
            "--strategy canonical or run with --workers 1"
        )
    from .queries.compiled import CompiledEvaluator
    from .runtime.service import SpannerService

    evaluator = CompiledEvaluator()
    engines = [
        evaluator.equality_runtime(q) or evaluator.runtime(q)
        for q in queries
    ]
    label_docs = len(docs) > 1
    # The serial path sorts the *full* relation before applying
    # --limit, so workers must not cap enumeration early; only an
    # all-Boolean batch can stop at the one tuple that decides it.
    limit = 1 if all(q.is_boolean for q in queries) else None
    with SpannerService(
        workers=args.workers,
        backend=args.backend,
        transport=args.transport,
        encoding=args.encoding,
        errors=args.errors,
        **_fleet_opts(args),
        **_admission_opts(args),
    ) as service:
        query_ids = [service.register(engine) for engine in engines]
        futures = service.submit_all(
            [text for _name, text in docs],
            queries=list(dict.fromkeys(query_ids)),
            limit=limit,
            fuse=args.fuse,
        )
        for i, (query, qid) in enumerate(zip(queries, query_ids)):
            per_doc = futures[qid].result()
            if args.explain:
                print(
                    f"# strategy: compiled — q{i} served on a "
                    f"{args.workers}-worker fleet"
                    + (
                        " (fused equality runtime)"
                        if query.equality_atoms
                        else ""
                    ),
                    file=sys.stderr,
                )
            for (name, text), answers in zip(docs, per_doc):
                prefix = _extract_prefix(i, name, True, label_docs)
                if query.is_boolean:
                    verdict = "true" if answers else "false"
                    print(f"{prefix}: {verdict}")
                    continue
                relation = SpanRelation(query.head, answers)
                _print_tuples(
                    relation.sorted(),
                    text,
                    args.format,
                    args.limit,
                    prefix=prefix,
                )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    queries = _grouped_queries(args)
    docs = _read_documents(args)
    if len(queries) > 1 and args.workers > 1:
        return _query_fleet(args, queries, docs)
    if len(queries) == 1 and args.workers > 1 and len(docs) > 1:
        return _query_parallel(args, queries[0], docs)
    return _query_serial(args, queries, docs)


def _cmd_info(args: argparse.Namespace) -> int:
    formula = parse(args.formula)
    report = check_functional(formula)
    print(f"formula:    {formula}")
    print(f"size:       {formula.size()} nodes")
    print(f"variables:  {sorted(formula.variables())}")
    print(f"functional: {report.functional}")
    if not report.functional:
        print(f"reason:     {report.reason}")
        return 1
    automaton = compile_regex(formula)
    compact = automaton.compacted()
    print(
        f"automaton:  {automaton.n_states} states "
        f"({compact.n_states} compacted), "
        f"{automaton.n_transitions} transitions"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect/maintain the artifact cache and orphaned shm segments."""
    from .runtime.store import FileStore

    store = None
    if args.dir is not None:
        try:
            store = FileStore(os.path.expanduser(args.dir))
        except OSError as err:
            raise SpannerError(
                f"cannot open artifact cache {args.dir}: "
                f"{err.strerror or err}"
            ) from err
    if args.action in ("ls", "verify") and store is None:
        raise SpannerError(f"cache {args.action} needs --dir DIR")
    if args.action == "ls":
        for key, size, _mtime in store.entries():
            print(f"{key}\t{size}")
        for name in store.quarantined():
            print(f"{name}\tquarantined")
        return 0
    if args.action == "verify":
        report = store.verify()
        corrupt = 0
        for key in sorted(report):
            print(f"{key}\t{report[key]}")
            corrupt += report[key] == "corrupt"
        if corrupt:
            print(
                f"# {corrupt} corrupt entries (cache gc --dir removes "
                "their quarantined corpses after the next read "
                "quarantines them)",
                file=sys.stderr,
            )
            return 1
        return 0
    # gc: shm orphans always; quarantined cache files only with --dir.
    from .runtime.transport import sweep_orphaned_segments

    swept = sweep_orphaned_segments()
    for name in swept:
        print(f"{name}\tswept")
    removed = store.gc_quarantined() if store is not None else 0
    print(
        f"# swept {len(swept)} orphaned shm segments, "
        f"removed {removed} quarantined cache files",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spanner-join",
        description=(
            "Document-spanner extraction and regex-CQ evaluation "
            "(PODS 2018 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_io(p: argparse.ArgumentParser) -> None:
        p.add_argument("--text", help="input string (default: stdin)")
        p.add_argument(
            "--file",
            action="append",
            help=(
                "read input from a file (repeatable: the query is "
                "compiled once and streamed over every file)"
            ),
        )
        p.add_argument(
            "--format",
            choices=("spans", "strings", "tsv"),
            default="strings",
            help="output format (default: strings)",
        )
        p.add_argument(
            "--limit", type=int, help="stop after N tuples (per document)"
        )
        p.add_argument(
            "--encoding",
            default="utf-8",
            help=(
                "text codec for --file inputs, serial and worker-side "
                "alike (default: utf-8)"
            ),
        )
        p.add_argument(
            "--errors",
            default="strict",
            help=(
                "codec error handler for --file inputs: strict, "
                "replace, ignore, surrogateescape, ... (default: strict)"
            ),
        )
        p.add_argument(
            "--transport",
            choices=("auto", "shm", "pipe"),
            default="auto",
            help=(
                "how --workers ships in-memory documents: auto "
                "(shared memory above a size threshold, pipe below), "
                "shm (always shared memory), pipe (always the task "
                "pipe); --file corpora ship paths either way"
            ),
        )
        p.add_argument(
            "--backend",
            choices=("auto", "serial", "thread", "process"),
            default="auto",
            help=(
                "compute substrate for --workers fleets: auto "
                "(serial at --workers 1, threads on a free-threaded "
                "interpreter, processes otherwise), serial (inline, "
                "for debugging), thread (shared-memory workers, no "
                "pickling), process (isolated OS processes)"
            ),
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            metavar="SECONDS",
            help=(
                "per-task deadline for --workers fleets: a chunk "
                "running longer has its worker killed and replaced and "
                "the run fails with a timeout error instead of hanging "
                "forever (default: no deadline)"
            ),
        )
        p.add_argument(
            "--on-overload",
            choices=("block", "shed_oldest", "reject"),
            default="block",
            help=(
                "what a --workers fleet does when its in-flight bound "
                "is hit: block submission (default), shed the oldest "
                "queued chunk, or reject the new one"
            ),
        )
        p.add_argument(
            "--shm-budget",
            type=int,
            metavar="BYTES",
            help=(
                "byte budget for the shared-memory transport; chunks "
                "the budget (or /dev/shm) cannot fit fall back to the "
                "task pipe, never fail (default: unbounded)"
            ),
        )
        p.add_argument(
            "--max-tuples",
            type=int,
            metavar="N",
            help=(
                "per-document result cap in tuples for --workers "
                "fleets; a document past it fails its chunk (or is "
                "truncated, see --on-result-limit) instead of "
                "ballooning memory (default: uncapped)"
            ),
        )
        p.add_argument(
            "--max-result-bytes",
            type=int,
            metavar="BYTES",
            help=(
                "per-document result cap in encoded bytes for "
                "--workers fleets (default: uncapped)"
            ),
        )
        p.add_argument(
            "--on-result-limit",
            choices=("error", "truncate"),
            default="error",
            help=(
                "what a capped document does: error (default, fail "
                "that chunk) or truncate (keep the exact serial "
                "prefix up to the cap)"
            ),
        )
        p.add_argument(
            "--worker-memory-limit",
            type=int,
            metavar="BYTES",
            help=(
                "RSS past which a fleet worker is drained and "
                "recycled at its next task boundary (default: no "
                "watchdog)"
            ),
        )
        p.add_argument(
            "--max-compile-states",
            type=int,
            metavar="N",
            help=(
                "reject formulas whose estimated automaton size "
                "exceeds N before compiling them (fleet extract; "
                "default: admit everything)"
            ),
        )
        p.add_argument(
            "--compile-timeout",
            type=float,
            metavar="SECONDS",
            help=(
                "deadline for compiling each registered formula "
                "(fleet extract; a compile past it is killed and the "
                "formula rejected; default: unbounded)"
            ),
        )
        p.add_argument(
            "--fuse",
            action=argparse.BooleanOptionalAction,
            default=True,
            help=(
                "serve multi-query --workers batches through one fused "
                "document scan answering every query at once (default); "
                "--no-fuse forces one scan per query — output bytes are "
                "identical either way"
            ),
        )
        p.add_argument(
            "--artifact-cache",
            metavar="DIR",
            help=(
                "directory of compiled-artifact blobs consulted by "
                "--workers fleets before compiling and updated after "
                "(warm starts across invocations; corrupt entries are "
                "quarantined and recompiled; default: no cache)"
            ),
        )

    p_extract = sub.add_parser(
        "extract", help="evaluate one or more regex formulas"
    )
    p_extract.add_argument(
        "formula",
        nargs="+",
        help=(
            "regex formula (concrete syntax); repeatable — several "
            "formulas are served over one worker fleet with --workers, "
            "output grouped per formula (q0, q1, ...)"
        ),
    )
    add_io(p_extract)
    p_extract.add_argument(
        "--count", action="store_true", help="print the tuple count to stderr"
    )
    p_extract.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard documents across N worker processes (default: 1 = "
            "serial; pays off on many/large documents); with several "
            "formulas, all of them are served concurrently by one "
            "SpannerService fleet"
        ),
    )
    p_extract.set_defaults(func=_cmd_extract)

    p_query = sub.add_parser(
        "query", help="evaluate one or more regex CQs"
    )
    p_query.add_argument(
        "--atom",
        action=_GroupedAppend,
        required=True,
        help="a regex-formula atom (repeatable)",
    )
    p_query.add_argument(
        "--head",
        nargs="*",
        action=_GroupedAppend,
        help="projection variables (default: Boolean)",
    )
    p_query.add_argument(
        "--equal",
        action=_GroupedAppend,
        help="comma-separated string-equality group (repeatable)",
    )
    p_query.add_argument(
        "--next-query",
        action=_NextQuery,
        dest="_query_group",
        default=0,
        help=(
            "start another CQ: the --atom/--head/--equal before each "
            "--next-query form one query; several queries print q0-, "
            "q1-, ... prefixed rows and share one fleet with --workers "
            "(fused into a single document scan unless --no-fuse)"
        ),
    )
    p_query.add_argument(
        "--strategy",
        choices=("auto", "canonical", "compiled"),
        default="auto",
    )
    p_query.add_argument(
        "--explain", action="store_true", help="print the plan decision"
    )
    p_query.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard documents across N worker processes (compiled "
            "strategy; equality queries run the fused per-document "
            "join worker-side against one shipped static artifact); "
            "with several --next-query CQs all of them are served "
            "concurrently by one SpannerService fleet"
        ),
    )
    add_io(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_info = sub.add_parser("info", help="inspect a regex formula")
    p_info.add_argument("formula")
    p_info.set_defaults(func=_cmd_info)

    p_cache = sub.add_parser(
        "cache",
        help=(
            "inspect/maintain durable runtime state: artifact caches "
            "and orphaned shared-memory segments"
        ),
    )
    p_cache.add_argument(
        "action",
        choices=("ls", "verify", "gc"),
        help=(
            "ls: list cache entries and quarantined corpses; verify: "
            "integrity-check every entry read-only (exit 1 on "
            "corruption); gc: unlink shm segments whose driver is dead "
            "and, with --dir, delete quarantined cache files"
        ),
    )
    p_cache.add_argument(
        "--dir",
        metavar="DIR",
        help="artifact-cache directory (required for ls/verify)",
    )
    p_cache.set_defaults(func=_cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpannerError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
