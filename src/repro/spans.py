"""Spans, (V, s)-tuples and (V, s)-relations (Section 2.1 of the paper).

A *span* of a string ``s`` is an expression ``[i, j>`` with
``1 <= i <= j <= len(s) + 1``; it denotes the substring ``s[i-1 : j-1]``
in Python's 0-based slicing.  Two spans are equal iff both endpoints
agree — equality of the *substrings* they select does not imply equality
of the spans (Example 2.1).

A ``(V, s)``-tuple maps every variable in a finite set ``V`` to a span of
``s``; a ``(V, s)``-relation is a set of such tuples.  A *spanner* maps
every string to a ``(V, s)``-relation; spanners in this library are
represented by regex formulas (:mod:`repro.regex`) and vset-automata
(:mod:`repro.vset`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .errors import InvalidSpanError, SchemaError

__all__ = ["Span", "SpanTuple", "SpanRelation"]


@dataclass(frozen=True, slots=True, order=True)
class Span:
    """A span ``[start, end>`` with 1-based, end-exclusive indices.

    The paper's notation ``[i, j>`` maps directly to ``Span(i, j)``.
    ``Span`` is ordered lexicographically by ``(start, end)``, which is
    handy for deterministic output.

    Attributes:
        start: 1-based index of the first selected character.
        end: 1-based index *one past* the last selected character.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 1 or self.end < self.start:
            raise InvalidSpanError(
                f"invalid span [{self.start}, {self.end}>: "
                "need 1 <= start <= end"
            )

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of characters selected by the span."""
        return self.end - self.start

    def is_empty(self) -> bool:
        """True for spans of the form ``[i, i>`` (empty substring)."""
        return self.start == self.end

    def contains(self, other: "Span") -> bool:
        """True when ``other`` lies within this span (subspan relation).

        This is the relation extracted by the paper's ``alpha_sub[y, x]``
        regex formula: ``x.contains(y)`` iff y's boundaries are within x.
        """
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Span") -> bool:
        """True when the two spans share at least one character.

        Empty spans select no characters, so they overlap nothing.
        """
        return max(self.start, other.start) < min(self.end, other.end)

    def precedes(self, other: "Span") -> bool:
        """True when this span ends before or where ``other`` starts."""
        return self.end <= other.start

    # ------------------------------------------------------------------
    # String access
    # ------------------------------------------------------------------
    def extract(self, s: str) -> str:
        """Return the substring of ``s`` selected by this span.

        Raises:
            InvalidSpanError: if the span does not fit ``s``.
        """
        if self.end > len(s) + 1:
            raise InvalidSpanError(
                f"span [{self.start}, {self.end}> does not fit a string "
                f"of length {len(s)}"
            )
        return s[self.start - 1 : self.end - 1]

    def fits(self, s: str) -> bool:
        """True when this span is a span *of* ``s``."""
        return self.end <= len(s) + 1

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_slice(cls, start: int, stop: int) -> "Span":
        """Build a span from Python 0-based slice indices."""
        return cls(start + 1, stop + 1)

    def to_slice(self) -> tuple[int, int]:
        """Return 0-based ``(start, stop)`` slice indices."""
        return self.start - 1, self.end - 1

    @classmethod
    def whole(cls, s: str) -> "Span":
        """The span ``[1, len(s)+1>`` selecting all of ``s``."""
        return cls(1, len(s) + 1)

    @classmethod
    def all_spans(cls, s: str) -> Iterator["Span"]:
        """Yield every span of ``s`` in lexicographic order.

        A string of length N has ``(N+1)(N+2)/2`` spans; this quadratic
        bound is what makes single-variable spanner relations (and key
        attributes, Proposition 3.6) polynomially bounded.
        """
        n = len(s)
        for i in range(1, n + 2):
            for j in range(i, n + 2):
                yield cls(i, j)

    def __str__(self) -> str:
        return f"[{self.start}, {self.end}>"


class SpanTuple(Mapping[str, Span]):
    """An immutable ``(V, s)``-tuple: a mapping from variables to spans.

    Instances are hashable and compare by their variable/span content, so
    they can live in sets — a :class:`SpanRelation` is exactly such a set.
    """

    __slots__ = ("_items",)

    def __init__(self, assignment: Mapping[str, Span] | Iterable[tuple[str, Span]]):
        items = dict(assignment)
        for var, span in items.items():
            if not isinstance(span, Span):
                raise TypeError(f"value for {var!r} is not a Span: {span!r}")
        self._items: tuple[tuple[str, Span], ...] = tuple(sorted(items.items()))

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, var: str) -> Span:
        for name, span in self._items:
            if name == var:
                return span
        raise KeyError(var)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    # -- Value semantics ---------------------------------------------------
    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SpanTuple):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __lt__(self, other: "SpanTuple") -> bool:
        """Lexicographic order over the sorted (variable, span) pairs."""
        return self._items < other._items

    # -- Spanner-algebra helpers -------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return frozenset(name for name, _ in self._items)

    def restrict(self, variables: Iterable[str]) -> "SpanTuple":
        """Project the tuple onto ``variables`` (paper: ``mu|_Y``)."""
        keep = set(variables)
        missing = keep - self.variables
        if missing:
            raise SchemaError(f"cannot restrict to unknown variables {sorted(missing)}")
        return SpanTuple((n, s) for n, s in self._items if n in keep)

    def compatible(self, other: "SpanTuple") -> bool:
        """True when the tuples agree on every shared variable."""
        shared = self.variables & other.variables
        return all(self[v] == other[v] for v in shared)

    def merge(self, other: "SpanTuple") -> "SpanTuple":
        """Combine two compatible tuples (the heart of natural join).

        Raises:
            SchemaError: if the tuples disagree on a shared variable.
        """
        if not self.compatible(other):
            raise SchemaError("cannot merge incompatible tuples")
        combined = dict(self._items)
        combined.update(other._items)
        return SpanTuple(combined)

    def strings(self, s: str) -> dict[str, str]:
        """Map every variable to the substring its span selects in ``s``."""
        return {name: span.extract(s) for name, span in self._items}

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={s}" for n, s in self._items)
        return f"{{{inner}}}"


#: The empty tuple over no variables.  A Boolean spanner returns either
#: the empty relation (false) or the relation containing only this tuple
#: (true) — see Section 2.1.
EMPTY_TUPLE = SpanTuple({})


class SpanRelation:
    """An immutable ``(V, s)``-relation: a set of (V, s)-tuples.

    All tuples must be over exactly the relation's variable set.  The
    class offers the spanner algebra of Section 2.2.4 in materialized
    form; the streaming/enumeration counterparts live in
    :mod:`repro.enumeration` and :mod:`repro.queries`.
    """

    __slots__ = ("_variables", "_tuples")

    def __init__(self, variables: Iterable[str], tuples: Iterable[SpanTuple] = ()):
        self._variables = frozenset(variables)
        tuple_set = frozenset(tuples)
        for t in tuple_set:
            if t.variables != self._variables:
                raise SchemaError(
                    f"tuple over {sorted(t.variables)} does not match "
                    f"relation schema {sorted(self._variables)}"
                )
        self._tuples = tuple_set

    # -- Container protocol --------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return self._variables

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[SpanTuple]:
        return iter(self._tuples)

    def __contains__(self, item: object) -> bool:
        return item in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanRelation):
            return NotImplemented
        return self._variables == other._variables and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self._variables, self._tuples))

    def sorted(self) -> list[SpanTuple]:
        """Tuples in deterministic (lexicographic) order."""
        return sorted(self._tuples)

    # -- Boolean semantics -----------------------------------------------------
    @property
    def is_boolean(self) -> bool:
        """True when the relation is over the empty variable set."""
        return not self._variables

    def __bool__(self) -> bool:
        """Non-emptiness; for Boolean relations this is the truth value."""
        return bool(self._tuples)

    # -- Algebra (Section 2.2.4) -----------------------------------------------
    def project(self, variables: Iterable[str]) -> "SpanRelation":
        """Projection ``pi_Y``: restrict every tuple to ``variables``."""
        target = frozenset(variables)
        if not target <= self._variables:
            raise SchemaError(
                f"projection variables {sorted(target - self._variables)} "
                "not in relation schema"
            )
        return SpanRelation(target, (t.restrict(target) for t in self._tuples))

    def union(self, other: "SpanRelation") -> "SpanRelation":
        """Union; both relations must share the same variable set."""
        if self._variables != other._variables:
            raise SchemaError(
                "union requires identical variable sets: "
                f"{sorted(self._variables)} vs {sorted(other._variables)}"
            )
        return SpanRelation(self._variables, self._tuples | other._tuples)

    def natural_join(self, other: "SpanRelation") -> "SpanRelation":
        """Natural join, implemented as a hash join on shared variables.

        This materialized join is the reference implementation used by
        tests; the query evaluators use :mod:`repro.relational` (for the
        canonical strategy) or automaton products (Lemma 3.10).
        """
        shared = tuple(sorted(self._variables & other._variables))
        buckets: dict[tuple[Span, ...], list[SpanTuple]] = {}
        for t in other._tuples:
            buckets.setdefault(tuple(t[v] for v in shared), []).append(t)
        out = []
        for t in self._tuples:
            key = tuple(t[v] for v in shared)
            for u in buckets.get(key, ()):
                out.append(t.merge(u))
        return SpanRelation(self._variables | other._variables, out)

    def select_string_equality(self, s: str, variables: Iterable[str]) -> "SpanRelation":
        """String-equality selection ``zeta^=_{x1,...,xk}``.

        Keeps the tuples whose spans for all of ``variables`` select the
        *same substring* of ``s`` (the spans themselves may differ).
        """
        group = tuple(variables)
        unknown = set(group) - self._variables
        if unknown:
            raise SchemaError(f"selection over unknown variables {sorted(unknown)}")
        if len(group) < 2:
            return self
        kept = []
        for t in self._tuples:
            first = t[group[0]].extract(s)
            if all(t[v].extract(s) == first for v in group[1:]):
                kept.append(t)
        return SpanRelation(self._variables, kept)

    def difference(self, other: "SpanRelation") -> "SpanRelation":
        """Set difference (regular spanners are closed under it)."""
        if self._variables != other._variables:
            raise SchemaError("difference requires identical variable sets")
        return SpanRelation(self._variables, self._tuples - other._tuples)

    def __repr__(self) -> str:
        rows = ", ".join(repr(t) for t in self.sorted()[:8])
        more = "" if len(self) <= 8 else f", ... ({len(self)} total)"
        return f"SpanRelation({sorted(self._variables)}: {rows}{more})"
