"""Independent brute-force oracle used to cross-validate the engine."""

from .refword_oracle import oracle_evaluate

__all__ = ["oracle_evaluate"]
