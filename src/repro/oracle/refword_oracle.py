"""Exhaustive ref-word oracle (independent reference semantics).

The production pipeline evaluates ``[[A]](s)`` through variable
configurations and the leveled radix enumeration.  To validate it we
implement the paper's *definition* directly and independently:

    ``[[A]](s) = { mu_r | r ∈ R(A) ∩ Ref(s) }``

by generating **every** valid ref-word ``r`` with ``clr(r) = s``
(:func:`repro.refwords.all_valid_refwords`) and testing membership of
``r`` in ``R(A)`` with a plain set-based NFA simulation — no
configurations, no leveled graphs, no radix order.  The cost is wildly
exponential, so the oracle is only usable for tiny ``|s|`` and at most
two or three variables; that is exactly its job in the test suite.
"""

from __future__ import annotations

from ..automata.ops import simulate
from ..refwords import all_valid_refwords, tuple_from_refword
from ..regex.ast import RegexFormula
from ..regex.parser import parse
from ..spans import SpanTuple
from ..vset.automaton import VSetAutomaton

__all__ = ["oracle_evaluate"]


def oracle_evaluate(
    spanner: VSetAutomaton | RegexFormula | str, s: str
) -> set[SpanTuple]:
    """Compute ``[[spanner]](s)`` by brute force over valid ref-words.

    Accepts a vset-automaton, a regex-formula AST, or concrete regex
    syntax.  Marker-set transitions are expanded to the strict model so
    the simulation can match ref-words symbol by symbol.
    """
    automaton = _as_automaton(spanner)
    automaton = automaton.expand_multi_ops()
    results: set[SpanTuple] = set()
    variables = automaton.variables
    for refword in all_valid_refwords(s, variables):
        if simulate(automaton.nfa, refword):
            results.add(tuple_from_refword(refword, variables))
    return results


def _as_automaton(spanner: VSetAutomaton | RegexFormula | str) -> VSetAutomaton:
    if isinstance(spanner, VSetAutomaton):
        return spanner
    from ..automata.thompson import thompson_nfa

    if isinstance(spanner, str):
        spanner = parse(spanner)
    # Deliberately skip the functionality gate: the oracle implements
    # the ref-word definition, which only ever collects *valid* words,
    # so it is meaningful for non-functional inputs too.
    return VSetAutomaton(thompson_nfa(spanner), spanner.variables())
