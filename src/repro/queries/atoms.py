"""Query atoms: regex atoms and string-equality atoms (§2.3).

A regex CQ's atoms are regex formulas; a regex CQ *with string
equalities* adds equality atoms ``ζ^=_{x,y}``.  Following the paper's
remark in §5.1, equality atoms here are k-ary groups (binary equalities
over overlapping variable sets merge into one group), and the paper's
constraint applies: every variable of an equality atom must also occur
in some regex atom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import QueryError
from ..regex.ast import RegexFormula
from ..regex.parser import parse
from ..vset.automaton import VSetAutomaton
from ..vset.compile import compile_regex

__all__ = ["RegexAtom", "EqualityAtom"]


@dataclass(frozen=True)
class RegexAtom:
    """A named regex-formula atom.

    Distinct atoms carry distinct names, which is exactly what makes a
    regex CQ "map to" a relational CQ without self-joins (§2.3).

    Attributes:
        name: the relational symbol this atom maps to.
        formula: the regex formula (parsed AST).
    """

    name: str
    formula: RegexFormula
    _automaton: list = field(default_factory=list, compare=False, repr=False)

    @classmethod
    def make(cls, name: str, formula: RegexFormula | str) -> "RegexAtom":
        if isinstance(formula, str):
            formula = parse(formula)
        return cls(name, formula)

    @property
    def variables(self) -> frozenset[str]:
        return self.formula.variables()

    def automaton(self) -> VSetAutomaton:
        """The compiled functional vset-automaton (cached; Lemma 3.4).

        The automaton is epsilon-compacted after compilation: the
        Thompson construction is epsilon-rich, and downstream joins
        (Lemma 3.10) and evaluation graphs (Theorem 3.3) scan its
        variable-epsilon closures.
        """
        if not self._automaton:
            self._automaton.append(compile_regex(self.formula).compacted())
        return self._automaton[0]

    def __str__(self) -> str:
        return f"{self.name}[{','.join(sorted(self.variables))}] := {self.formula}"


@dataclass(frozen=True)
class EqualityAtom:
    """A string-equality selection ``ζ^=_{z_1,...,z_k}`` (k >= 2).

    Selects tuples whose spans for all of ``variables`` select the same
    substring (the spans themselves may differ — contrast with join).
    """

    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.variables) < 2:
            raise QueryError("equality atom needs at least two variables")
        if len(set(self.variables)) != len(self.variables):
            raise QueryError("equality atom variables must be distinct")

    @classmethod
    def make(cls, variables: Sequence[str]) -> "EqualityAtom":
        return cls(tuple(variables))

    @property
    def variable_set(self) -> frozenset[str]:
        return frozenset(self.variables)

    def __str__(self) -> str:
        return "ζ=(" + ",".join(self.variables) + ")"


def merge_equality_atoms(atoms: Sequence[EqualityAtom]) -> tuple[EqualityAtom, ...]:
    """Merge equality atoms with overlapping variable sets (§5.1 remark).

    ``ζ=_{x,y}`` and ``ζ=_{y,z}`` collapse into ``ζ=_{x,y,z}``; the
    result's groups are pairwise disjoint.
    """
    groups: list[set[str]] = []
    for atom in atoms:
        vars_ = set(atom.variables)
        touching = [g for g in groups if g & vars_]
        for g in touching:
            vars_ |= g
            groups.remove(g)
        groups.append(vars_)
    return tuple(EqualityAtom(tuple(sorted(g))) for g in groups)
