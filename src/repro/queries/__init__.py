"""Regex CQs and UCQs and their two evaluation strategies (§2.3, §3.3).

* :mod:`.atoms` — regex atoms and (k-ary) string-equality atoms;
* :mod:`.cq` / :mod:`.ucq` — query classes, hypergraphs, acyclicity,
  the "maps to a relational CQ" view;
* :mod:`.canonical` — the canonical relational strategy (Theorem 3.5,
  Corollary 5.3): materialize atoms, then Yannakakis / generic joins;
* :mod:`.compiled` — compilation to a single functional vset-automaton
  (Theorem 3.11, Corollary 5.5): join + project + union, equalities
  compiled at runtime, then polynomial-delay enumeration;
* :mod:`.planner` — a small cost-based strategy chooser (the paper's
  concluding "translate the upper bounds into algorithms" direction);
* :mod:`.bounded` — certificates of polynomial boundedness (§3.3.2).
"""

from .atoms import EqualityAtom, RegexAtom
from .bounded import PolynomialBoundCertificate, polynomial_bound_certificate
from .canonical import CanonicalEvaluator
from .compiled import CompiledEvaluator
from .cq import RegexCQ
from .planner import PlanDecision, QueryEvaluator, choose_strategy
from .ucq import RegexUCQ

__all__ = [
    "RegexAtom",
    "EqualityAtom",
    "RegexCQ",
    "RegexUCQ",
    "CanonicalEvaluator",
    "CompiledEvaluator",
    "QueryEvaluator",
    "PlanDecision",
    "choose_strategy",
    "PolynomialBoundCertificate",
    "polynomial_bound_certificate",
]
