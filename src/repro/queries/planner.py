"""Strategy selection between canonical and compiled evaluation.

The paper proves two incomparable upper bounds:

* canonical evaluation is polynomial total time when atoms are
  polynomially bounded *and* the relational shape is tractable
  (Theorem 3.5 / Corollary 5.3);
* compiled evaluation has polynomial delay whenever the number of atoms
  (and equality groups) per disjunct is bounded (Theorem 3.11 /
  Corollary 5.5), regardless of atom cardinalities.

The planner applies exactly this case split, using cheap syntactic
certificates (variable counts, acyclicity, atom counts) plus the input
length; its decisions are ablated by experiment E12.  This module is a
deliberate step into the paper's concluding future-work direction
("translating the upper bounds into algorithms").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spans import SpanRelation
from .bounded import polynomial_bound_certificate
from .canonical import CanonicalEvaluator
from .compiled import CompiledEvaluator
from .cq import RegexCQ
from .ucq import RegexUCQ

__all__ = ["PlanDecision", "choose_strategy", "QueryEvaluator"]

#: Above this estimated per-atom cardinality the planner avoids
#: materialization even for certified-polynomial atoms.
DEFAULT_MATERIALIZATION_CEILING = 2_000_000

#: Above this many atoms per disjunct the join fold (O(n^{2k})) is
#: considered too expensive to compile.
DEFAULT_MAX_COMPILED_ATOMS = 4


@dataclass(frozen=True, slots=True)
class PlanDecision:
    """The chosen strategy plus a human-readable justification."""

    strategy: str  # "canonical" | "compiled"
    reason: str
    estimated_atom_cardinality: int | None


def _estimate_atom_cardinality(query: RegexUCQ, n: int) -> int | None:
    """Worst-case tuple-count estimate across atoms, or None if unbounded."""
    worst = 0
    spans = (n + 1) * (n + 2) // 2
    for cq in query:
        for atom in cq.regex_atoms:
            certificate = polynomial_bound_certificate(atom)
            if not certificate.bounded:
                return None
            assert certificate.degree is not None
            # degree counts string-length exponents; convert via spans
            # per variable: spans^(degree/2).
            worst = max(worst, spans ** (certificate.degree // 2))
    return worst


def choose_strategy(
    query: RegexCQ | RegexUCQ,
    s: str,
    materialization_ceiling: int = DEFAULT_MATERIALIZATION_CEILING,
    max_compiled_atoms: int = DEFAULT_MAX_COMPILED_ATOMS,
) -> PlanDecision:
    """Pick canonical vs compiled evaluation for ``query`` on ``s``."""
    if isinstance(query, RegexCQ):
        query = RegexUCQ([query])
    estimate = _estimate_atom_cardinality(query, len(s))
    acyclic = query.is_acyclic()
    small_k = query.max_atom_count <= max_compiled_atoms

    if acyclic and estimate is not None and estimate <= materialization_ceiling:
        return PlanDecision(
            "canonical",
            "acyclic query with polynomially-bounded atoms "
            f"(estimate {estimate} tuples) — Theorem 3.5 applies",
            estimate,
        )
    if small_k:
        return PlanDecision(
            "compiled",
            f"at most {query.max_atom_count} atoms per disjunct — "
            "Theorem 3.11 / Corollary 5.5 applies",
            estimate,
        )
    return PlanDecision(
        "canonical",
        "no polynomial guarantee either way (many atoms, unbounded or "
        "cyclic); falling back to materialize-then-join",
        estimate,
    )


class QueryEvaluator:
    """Facade evaluating queries with automatic strategy selection.

    Usage::

        evaluator = QueryEvaluator()
        relation = evaluator.evaluate(query, text)            # auto
        relation = evaluator.evaluate(query, text, "compiled")  # forced
    """

    def __init__(
        self,
        materialization_ceiling: int = DEFAULT_MATERIALIZATION_CEILING,
        max_compiled_atoms: int = DEFAULT_MAX_COMPILED_ATOMS,
    ):
        self.materialization_ceiling = materialization_ceiling
        self.max_compiled_atoms = max_compiled_atoms
        self.canonical = CanonicalEvaluator()
        self.compiled = CompiledEvaluator()
        self.last_decision: PlanDecision | None = None

    def evaluate(
        self,
        query: RegexCQ | RegexUCQ,
        s: str,
        strategy: str = "auto",
    ) -> SpanRelation:
        """Evaluate ``query`` on ``s`` with the given or chosen strategy."""
        if strategy == "auto":
            decision = choose_strategy(
                query,
                s,
                self.materialization_ceiling,
                self.max_compiled_atoms,
            )
        elif strategy in ("canonical", "compiled"):
            decision = PlanDecision(strategy, "forced by caller", None)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.last_decision = decision
        if decision.strategy == "canonical":
            return self.canonical.evaluate(query, s)
        return self.compiled.evaluate(query, s)
