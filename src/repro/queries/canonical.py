"""The canonical relational evaluation strategy (§3.3.2).

Steps, per disjunct:

(a) evaluate each regex atom with the Theorem 3.3 enumerator and
    materialize the result — efficient *whenever the materialization is
    small*, which is exactly the polynomially-bounded-class condition of
    Theorem 3.5 (the enumerator is polynomial **total** time, so "one
    algorithm fits all" cardinality guarantees);
(b) materialize each equality atom's relation over the input string
    (polynomially many rows, Corollary 5.3);
(c) run relational evaluation: Yannakakis on a GYO join forest when the
    mapped relational CQ is acyclic, greedy generic joins otherwise;
(d) project onto the head; union the disjuncts.

An optional ``atom_budget`` guards against the paper's central caveat —
an atomic regex formula may define an exponentially large relation — by
aborting with :class:`EvaluationError` instead of thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EvaluationError
from ..enumeration.enumerator import SpannerEvaluator
from ..relational.hypergraph import Hypergraph
from ..relational.relation import Relation
from ..relational.generic import evaluate_generic
from ..relational.yannakakis import evaluate_acyclic
from ..spans import SpanRelation, SpanTuple
from ..vset.equality import equality_relation_rows
from .cq import RegexCQ
from .ucq import RegexUCQ

__all__ = ["CanonicalEvaluator", "CanonicalStats"]


@dataclass(slots=True)
class CanonicalStats:
    """Observability for benchmarks: materialization sizes and routing."""

    atom_cardinalities: dict[str, int] = field(default_factory=dict)
    used_yannakakis: bool = False


class CanonicalEvaluator:
    """Evaluate regex CQs / UCQs via materialize-then-join.

    Args:
        atom_budget: maximum number of tuples any single atom may
            materialize before evaluation aborts (None = unlimited).
    """

    def __init__(self, atom_budget: int | None = None):
        self.atom_budget = atom_budget
        self.last_stats: CanonicalStats | None = None

    # -- Public API -----------------------------------------------------------
    def evaluate(self, query: RegexCQ | RegexUCQ, s: str) -> SpanRelation:
        """Materialize the query's answer relation on ``s``."""
        if isinstance(query, RegexCQ):
            query = RegexUCQ([query])
        head = query.head
        result: SpanRelation | None = None
        stats = CanonicalStats()
        for cq in query:
            part = self._evaluate_cq(cq, s, stats)
            result = part if result is None else result.union(part)
        self.last_stats = stats
        assert result is not None
        return result

    def evaluate_boolean(self, query: RegexCQ | RegexUCQ, s: str) -> bool:
        """Boolean convenience: non-emptiness of the answer."""
        return bool(self.evaluate(query, s))

    # -- Internals ---------------------------------------------------------------
    def _evaluate_cq(
        self, cq: RegexCQ, s: str, stats: CanonicalStats
    ) -> SpanRelation:
        relations: dict[str, Relation] = {}
        for atom in cq.regex_atoms:
            relations[atom.name] = self._materialize_atom(atom, s, stats)
        for index, eq in enumerate(cq.equality_atoms):
            schema = tuple(sorted(eq.variable_set))
            rows = (
                tuple(mapping[v] for v in schema)
                for mapping in equality_relation_rows(s, schema)
            )
            relation = Relation(schema, rows)
            relations[f"eq{index}"] = relation
            stats.atom_cardinalities[f"eq{index}"] = len(relation)

        hypergraph = cq.hypergraph(include_equalities=True)
        gyo = hypergraph.gyo()
        if gyo.acyclic:
            stats.used_yannakakis = True
            output = evaluate_acyclic(relations, gyo, cq.head)
        else:
            output = evaluate_generic(relations, cq.head)
        return SpanRelation(
            cq.head,
            (
                SpanTuple(dict(zip(output.schema, row)))
                for row in output.rows
            ),
        )

    def _materialize_atom(
        self, atom, s: str, stats: CanonicalStats
    ) -> Relation:
        evaluator = SpannerEvaluator(atom.automaton(), s)
        schema = tuple(sorted(atom.variables))
        rows: list[tuple] = []
        for mu in evaluator:
            rows.append(tuple(mu[v] for v in schema))
            if self.atom_budget is not None and len(rows) > self.atom_budget:
                raise EvaluationError(
                    f"atom {atom.name} exceeded the materialization "
                    f"budget of {self.atom_budget} tuples (the relation "
                    "defined by a regex formula can be exponentially "
                    "large — see §3.2)"
                )
        relation = Relation(schema, rows)
        stats.atom_cardinalities[atom.name] = len(relation)
        return relation
