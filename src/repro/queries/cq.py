"""Regex conjunctive queries (§2.3).

A regex CQ is ``pi_Y (alpha_1 ⋈ ... ⋈ alpha_k)``; with string
equalities, ``pi_Y (ζ^= ... ζ^= (alpha_1 ⋈ ... ⋈ alpha_k))``.  The
class validates the paper's structural constraints, exposes the mapped
relational hypergraph (atoms become relation symbols, no self-joins by
construction), and answers the acyclicity questions of Theorem 3.2.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import QueryError
from ..regex.ast import RegexFormula
from ..relational.hypergraph import Hypergraph
from .atoms import EqualityAtom, RegexAtom, merge_equality_atoms

__all__ = ["RegexCQ"]

FormulaLike = RegexFormula | str | RegexAtom


class RegexCQ:
    """A regex CQ (optionally with string equalities).

    Attributes:
        head: the projection variables ``Y``, in output order.
        regex_atoms: the regex atoms, auto-named ``R0, R1, ...`` unless
            constructed from explicit :class:`RegexAtom` objects.
        equality_atoms: the string-equality groups.
    """

    __slots__ = ("head", "regex_atoms", "equality_atoms")

    def __init__(
        self,
        head: Sequence[str],
        atoms: Sequence[FormulaLike],
        equalities: Sequence[EqualityAtom | Sequence[str]] = (),
    ):
        if not atoms:
            raise QueryError("a regex CQ needs at least one regex atom")
        named: list[RegexAtom] = []
        for index, atom in enumerate(atoms):
            if isinstance(atom, RegexAtom):
                named.append(atom)
            else:
                named.append(RegexAtom.make(f"R{index}", atom))
        names = [a.name for a in named]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate atom names: {names}")
        self.regex_atoms: tuple[RegexAtom, ...] = tuple(named)

        eq_atoms: list[EqualityAtom] = []
        for eq in equalities:
            if isinstance(eq, EqualityAtom):
                eq_atoms.append(eq)
            else:
                eq_atoms.append(EqualityAtom.make(tuple(eq)))
        self.equality_atoms: tuple[EqualityAtom, ...] = tuple(eq_atoms)

        body_vars = self.body_variables
        for eq in self.equality_atoms:
            missing = eq.variable_set - body_vars
            if missing:
                raise QueryError(
                    f"equality variables {sorted(missing)} occur in no "
                    "regex atom (forbidden by §2.3)"
                )
        self.head: tuple[str, ...] = tuple(head)
        if len(set(self.head)) != len(self.head):
            raise QueryError(f"duplicate head variables: {self.head}")
        missing_head = set(self.head) - body_vars
        if missing_head:
            raise QueryError(
                f"head variables {sorted(missing_head)} occur in no atom"
            )

    # -- Shape ------------------------------------------------------------
    @property
    def body_variables(self) -> frozenset[str]:
        """Variables of the regex atoms (equality vars are a subset)."""
        out: set[str] = set()
        for atom in self.regex_atoms:
            out |= atom.variables
        return frozenset(out)

    @property
    def variables(self) -> frozenset[str]:
        return self.body_variables

    @property
    def head_set(self) -> frozenset[str]:
        return frozenset(self.head)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    @property
    def atom_count(self) -> int:
        """``k`` in "regex k-CQ": the number of regex atoms."""
        return len(self.regex_atoms)

    @property
    def equality_count(self) -> int:
        """``m``: the number of (merged) binary-equality groups."""
        return len(self.equality_atoms)

    def merged_equalities(self) -> tuple[EqualityAtom, ...]:
        """Equality groups merged over shared variables (§5.1)."""
        return merge_equality_atoms(self.equality_atoms)

    # -- Relational view ----------------------------------------------------
    def hypergraph(self, include_equalities: bool = True) -> Hypergraph:
        """The hypergraph of the relational CQ this query maps to.

        Atom names are the hyperedge names; equality atoms add their own
        edges (named ``eq0, eq1, ...``) when requested — the mapping of
        §2.3 treats them as binary (here: k-ary) atoms.
        """
        edges: dict[str, Iterable[str]] = {
            atom.name: atom.variables for atom in self.regex_atoms
        }
        if include_equalities:
            for index, eq in enumerate(self.equality_atoms):
                edges[f"eq{index}"] = eq.variable_set
        return Hypergraph(edges)

    def is_acyclic(self) -> bool:
        """Alpha-acyclicity of the mapped relational CQ."""
        return self.hypergraph().is_alpha_acyclic()

    def is_gamma_acyclic(self) -> bool:
        """Gamma-acyclicity of the mapped relational CQ (Theorem 3.2)."""
        return self.hypergraph().is_gamma_acyclic()

    def __str__(self) -> str:
        head = ",".join(self.head)
        parts = [str(a) for a in self.regex_atoms]
        parts += [str(e) for e in self.equality_atoms]
        return f"pi[{head}](" + " ⋈ ".join(parts) + ")"

    def __repr__(self) -> str:
        return (
            f"RegexCQ(head={self.head}, atoms={len(self.regex_atoms)}, "
            f"equalities={len(self.equality_atoms)})"
        )
