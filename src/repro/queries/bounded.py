"""Certificates of polynomial boundedness (§3.3.2).

Theorem 3.5's canonical strategy is safe when every regex atom belongs
to a *polynomially bounded* class.  The paper names two checkable ones:

* **bounded variables** — with at most ``d`` variables the relation has
  at most ``O(|s|^{2d})`` tuples (each variable picks one of the
  quadratically many spans);
* **key attribute** — some variable functionally determines the whole
  tuple, capping the relation at the number of spans, ``O(|s|^2)``;
  decidable in ``O(n^4)`` by Proposition 3.6.

:func:`polynomial_bound_certificate` tries the cheap certificate first
and falls back to the key-attribute decision procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vset.keyattr import is_key_attribute
from .atoms import RegexAtom

__all__ = ["PolynomialBoundCertificate", "polynomial_bound_certificate"]


@dataclass(frozen=True, slots=True)
class PolynomialBoundCertificate:
    """Why an atom's relation is polynomially bounded.

    Attributes:
        kind: ``"bounded-variables"`` or ``"key-attribute"`` (or
            ``"none"`` when no certificate was found — which does *not*
            prove unboundedness).
        degree: an exponent ``d`` with ``|[[alpha]](s)| = O(|s|^d)``
            whenever a certificate exists.
        detail: the certificate payload (variable count or key name).
    """

    kind: str
    degree: int | None
    detail: str

    @property
    def bounded(self) -> bool:
        return self.kind != "none"


def polynomial_bound_certificate(
    atom: RegexAtom, max_variables: int = 3
) -> PolynomialBoundCertificate:
    """Find a polynomial-boundedness certificate for ``atom``.

    Args:
        atom: the regex atom to certify.
        max_variables: threshold for the bounded-variables certificate
            (the class "regex formulas with at most k variables").
    """
    n_vars = len(atom.variables)
    if n_vars <= max_variables:
        return PolynomialBoundCertificate(
            "bounded-variables",
            2 * n_vars,
            f"{n_vars} variables <= {max_variables}",
        )
    automaton = atom.automaton()
    for variable in sorted(atom.variables):
        if is_key_attribute(automaton, variable):
            return PolynomialBoundCertificate(
                "key-attribute", 2, f"variable {variable!r} is a key"
            )
    return PolynomialBoundCertificate("none", None, "no certificate found")
