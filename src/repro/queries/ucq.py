"""Regex unions of conjunctive queries (§2.3).

A regex UCQ is ``q_1 ∪ ... ∪ q_l`` where all disjuncts share the same
head variables.  A regex *k*-UCQ additionally bounds every disjunct to
at most ``k`` regex atoms — the class for which Theorem 3.11 guarantees
polynomial-delay evaluation.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import QueryError
from .cq import RegexCQ

__all__ = ["RegexUCQ"]


class RegexUCQ:
    """A union of regex CQs with identical head variable sets."""

    __slots__ = ("disjuncts",)

    def __init__(self, disjuncts: Sequence[RegexCQ]):
        if not disjuncts:
            raise QueryError("a regex UCQ needs at least one disjunct")
        head_set = disjuncts[0].head_set
        for cq in disjuncts[1:]:
            if cq.head_set != head_set:
                raise QueryError(
                    "all UCQ disjuncts must share head variables: "
                    f"{sorted(head_set)} vs {sorted(cq.head_set)}"
                )
        self.disjuncts: tuple[RegexCQ, ...] = tuple(disjuncts)

    # -- Shape ------------------------------------------------------------
    @property
    def head(self) -> tuple[str, ...]:
        return self.disjuncts[0].head

    @property
    def head_set(self) -> frozenset[str]:
        return self.disjuncts[0].head_set

    @property
    def is_boolean(self) -> bool:
        return not self.head

    @property
    def max_atom_count(self) -> int:
        """The smallest ``k`` for which this is a regex k-UCQ."""
        return max(cq.atom_count for cq in self.disjuncts)

    @property
    def max_equality_count(self) -> int:
        """The smallest ``m`` such that every disjunct has <= m groups."""
        return max(cq.equality_count for cq in self.disjuncts)

    @property
    def has_equalities(self) -> bool:
        return any(cq.equality_atoms for cq in self.disjuncts)

    def tagged_disjuncts(self) -> tuple[tuple[str, RegexCQ], ...]:
        """The disjuncts with stable tags ``d0, d1, ...`` (fusion hook).

        A UCQ is already a union evaluated in one pass (Theorem 3.11);
        the fused serving runtime (:mod:`repro.runtime.fusion`)
        generalizes that shape to arbitrary registered query sets by
        tagging each disjunct/member with the id it answers for and
        demultiplexing tuples on the way out.  This accessor exposes
        the UCQ's disjuncts in exactly that tagged form, so a UCQ can
        be fed to the fusion layer member-by-member with per-disjunct
        attribution preserved.
        """
        return tuple(
            (f"d{i}", cq) for i, cq in enumerate(self.disjuncts)
        )

    def __iter__(self) -> Iterator[RegexCQ]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def is_acyclic(self) -> bool:
        """True when every disjunct maps to an acyclic relational CQ."""
        return all(cq.is_acyclic() for cq in self.disjuncts)

    def __str__(self) -> str:
        return " ∪ ".join(str(cq) for cq in self.disjuncts)

    def __repr__(self) -> str:
        return f"RegexUCQ({len(self.disjuncts)} disjuncts, head={self.head})"
