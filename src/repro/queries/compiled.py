"""The compilation-to-automaton strategy (§3.3.3, §5.2).

Per disjunct: compile every regex atom (Lemma 3.4), fold the joins
(Lemma 3.10), join in one runtime equality automaton per equality group
(Theorem 5.4), push the projection (Lemma 3.8); then union the
disjuncts (Lemma 3.9) and enumerate with Theorem 3.3.

Consequences implemented here:

* regex k-UCQs evaluate with **polynomial delay** for fixed ``k``
  (Theorem 3.11) — the compilation is polynomial because each disjunct
  folds a bounded number of joins;
* with at most ``m`` equality groups per disjunct the guarantee
  persists (Corollary 5.5), with the equality automata built against
  the concrete input string (they cannot exist statically — regular
  spanners are strictly weaker than core spanners);
* duplicate elimination across disjuncts is free: enumeration works on
  the *configuration-sequence language* of the union automaton, and two
  disjuncts producing the same tuple produce the same word.

The string-free part of the compilation (everything except equality
automata) is cached per query *structure* in the **process-wide**
bounded LRU of :mod:`repro.runtime.cache`, so repeated evaluation over
a document collection pays the join fold once — and so do independent
evaluators, the CLI and parallel workers compiling the same structure;
for equality-free queries the fully compiled automaton is additionally
wrapped in a :class:`~repro.runtime.CompiledSpanner`, amortizing
Theorem 3.3's string-independent preprocessing across the collection
as well.
"""

from __future__ import annotations

from typing import Iterator

from ..enumeration.enumerator import SpannerEvaluator
from ..runtime.cache import LRUCache, compilation_cache
from ..runtime.compiled import CompiledSpanner
from ..runtime.equality import CompiledEqualityQuery, equality_join
from ..spans import SpanRelation, SpanTuple
from ..text.substrings import SubstringIndex
from ..vset.automaton import VSetAutomaton
from ..vset.equality import equality_automaton
from ..vset.join import join, join_many
from ..vset.operations import project, union
from .cq import RegexCQ
from .ucq import RegexUCQ

__all__ = ["CompiledEvaluator", "query_fingerprint"]


def query_fingerprint(query: RegexCQ | RegexUCQ) -> tuple:
    """A structural key identifying what the compilation depends on.

    Two queries with equal fingerprints compile to the same automata:
    per disjunct the regex-atom formulas (the ASTs are frozen
    dataclasses, so equality is structural), the head, and the merged
    equality groups.  Keying caches by this — instead of ``id(query)``
    — survives garbage collection: a recycled object id can otherwise
    silently serve a stale compilation for a *different* query.
    """
    if isinstance(query, RegexCQ):
        query = RegexUCQ([query])
    return (
        query.head,
        tuple(
            (
                tuple(atom.formula for atom in cq.regex_atoms),
                tuple(eq.variables for eq in cq.merged_equalities()),
            )
            for cq in query
        ),
    )


class CompiledEvaluator:
    """Evaluate regex CQs / UCQs by compiling to one vset-automaton.

    Compiled artifacts (static join folds, equality-free compiled
    spanners) live in a bounded LRU keyed by query *structure*.  By
    default that is the process-wide :func:`compilation_cache`, so any
    number of evaluator instances — and the CLI and parallel workers —
    share one compilation per structure; pass ``cache`` for an
    isolated (e.g. per-test or differently-sized) cache.  Structural
    keys make slot recycling safe: after an eviction, a reappearing
    fingerprint can only belong to a structurally equal query, which
    recompiles to an interchangeable artifact — never a stale one.

    Equality groups evaluate through the **fused** runtime
    (:func:`repro.runtime.equality.equality_join`) by default: the
    per-string ``A_eq`` is never materialized, the product is driven
    off the static operand's cached tables.  Pass
    ``materialize_equalities=True`` to force the explicit
    Theorem 5.4 construction — the parity reference the fused path is
    tested against.
    """

    def __init__(
        self,
        cache: LRUCache | None = None,
        *,
        materialize_equalities: bool = False,
    ) -> None:
        self.cache = cache if cache is not None else compilation_cache()
        self.materialize_equalities = materialize_equalities

    # -- Compilation -----------------------------------------------------------
    def compile_static(self, query: RegexCQ | RegexUCQ) -> list[VSetAutomaton]:
        """The string-independent part: per-disjunct joined automata.

        Returns one automaton per disjunct, *before* equality joins and
        projection (both may depend on the input string / head).
        """
        if isinstance(query, RegexCQ):
            query = RegexUCQ([query])
        # The static fold ignores head and equalities, so key by the
        # formulas alone: queries differing only in projection share it.
        key = (
            "static-fold",
            tuple(
                tuple(atom.formula for atom in cq.regex_atoms) for cq in query
            ),
        )

        def build() -> list[VSetAutomaton]:
            return [
                join_many([atom.automaton() for atom in cq.regex_atoms])
                for cq in query
            ]

        return self.cache.get_or_create(key, build)

    def compile(self, query: RegexCQ | RegexUCQ, s: str) -> VSetAutomaton:
        """The full compilation for input ``s`` (one automaton).

        For queries without equalities the result is independent of
        ``s`` apart from the cache; with equalities, the per-group
        ``A_eq`` automata are built against ``s`` and joined in.
        """
        if isinstance(query, RegexCQ):
            query = RegexUCQ([query])
        per_disjunct: list[VSetAutomaton] = []
        statics = self.compile_static(query)
        head = query.head
        index: SubstringIndex | None = None
        for cq, automaton in zip(query, statics):
            for eq in cq.merged_equalities():
                group = tuple(sorted(eq.variable_set))
                if self.materialize_equalities:
                    automaton = join(automaton, equality_automaton(s, group))
                else:
                    if index is None:
                        index = SubstringIndex(s)
                    automaton = equality_join(automaton, group, s, index=index)
            per_disjunct.append(project(automaton, head))
        if len(per_disjunct) == 1:
            return per_disjunct[0]
        return union(per_disjunct)

    def runtime(self, query: RegexCQ | RegexUCQ) -> CompiledSpanner | None:
        """A reusable compiled spanner for an equality-free query.

        Without string equalities the fully compiled automaton is
        independent of the input string, so it — and its Theorem 3.3
        string-independent tables — can be cached once per query
        structure and streamed over any number of documents.  Returns
        ``None`` when the query has equalities (those automata only
        exist per string).
        """
        if isinstance(query, RegexCQ):
            query = RegexUCQ([query])
        if query.has_equalities:
            return None
        key = ("compiled-spanner", query_fingerprint(query))
        return self.cache.get_or_create(
            key, lambda: CompiledSpanner(self.compile(query, ""))
        )

    def equality_runtime(
        self, query: RegexCQ | RegexUCQ
    ) -> CompiledEqualityQuery | None:
        """A reusable fused-equality engine for a query *with* equalities.

        The string-independent half — the per-disjunct static join
        folds and their tables — is cached per query structure; each
        document then pays only the fused per-string equality joins.
        The artifact is picklable (its tables ride the worker-
        initializer path), so
        :class:`~repro.runtime.parallel.ParallelSpanner` can shard it.
        Returns ``None`` for equality-free queries (use
        :meth:`runtime`, which amortizes strictly more).
        """
        if isinstance(query, RegexCQ):
            query = RegexUCQ([query])
        if not query.has_equalities:
            return None
        key = ("equality-query", query_fingerprint(query))

        def build() -> CompiledEqualityQuery:
            statics = self.compile_static(query)
            groups = [
                tuple(
                    tuple(sorted(eq.variable_set))
                    for eq in cq.merged_equalities()
                )
                for cq in query
            ]
            return CompiledEqualityQuery(statics, groups, query.head)

        return self.cache.get_or_create(key, build)

    # -- Evaluation ------------------------------------------------------------
    def prepare(self, query: RegexCQ | RegexUCQ, s: str) -> SpannerEvaluator:
        """Run all preprocessing eagerly; the result is iterable.

        This is the two-phase split of Theorem 3.3 surfaced at the query
        level: compilation (joins, equalities, projection, union) plus
        the evaluation-graph construction happen here; iterating the
        returned evaluator then yields answers with polynomial delay.

        Equality-free queries route through the compiled-spanner
        runtime, so repeated calls over a document collection pay the
        automaton-side preprocessing once; equality queries route
        through the fused :class:`CompiledEqualityQuery` engine, which
        amortizes the static join folds the same way and fuses the
        per-string equality joins.
        """
        spanner = self.runtime(query)
        if spanner is not None:
            return spanner.evaluator(s)
        if not self.materialize_equalities:
            engine = self.equality_runtime(query)
            if engine is not None:
                return engine.evaluator(s)
        return SpannerEvaluator(self.compile(query, s), s)

    def stream(self, query: RegexCQ | RegexUCQ, s: str) -> Iterator[SpanTuple]:
        """Enumerate the answers with polynomial delay (fixed k, m)."""
        yield from self.prepare(query, s)

    def evaluate(self, query: RegexCQ | RegexUCQ, s: str) -> SpanRelation:
        """Materialized convenience wrapper around :meth:`stream`."""
        head = (
            query.head if isinstance(query, RegexUCQ) else tuple(query.head)
        )
        return SpanRelation(head, self.stream(query, s))

    def evaluate_boolean(self, query: RegexCQ | RegexUCQ, s: str) -> bool:
        """Non-emptiness without materializing: first answer or bust."""
        for _mu in self.stream(query, s):
            return True
        return False
