"""spanner-join: document spanners, regex CQs/UCQs, and their evaluation.

A faithful, from-scratch reproduction of

    D. D. Freydenberger, B. Kimelfeld, L. Peterfreund.
    "Joining Extractions of Regular Expressions", PODS 2018.

Quickstart::

    import repro

    spanner = repro.compile_regex(".*x{[a-z]+}@y{[a-z]+}.*")
    for mu in repro.enumerate_tuples(spanner, "mail me: ada@lovelace now"):
        print(mu.strings("mail me: ada@lovelace now"))

Layering (bottom-up): :mod:`repro.spans` / :mod:`repro.refwords` →
:mod:`repro.regex` / :mod:`repro.automata` → :mod:`repro.vset` →
:mod:`repro.runtime` (string-independent tables) →
:mod:`repro.enumeration` → :mod:`repro.runtime.compiled`
(:class:`CompiledSpanner`) → :mod:`repro.relational` →
:mod:`repro.queries` → :mod:`repro.reductions` / :mod:`repro.extractors`.
"""

from .errors import (
    EvaluationError,
    InvalidSpanError,
    NotFunctionalError,
    OverloadedError,
    QueryError,
    QueryQuarantinedError,
    RegexParseError,
    SchemaError,
    ServiceClosedError,
    SpannerError,
    TaskTimeoutError,
    TransientTaskError,
)
from .spans import Span, SpanRelation, SpanTuple
from .regex import parse, is_functional, check_functional
from .vset import (
    VSetAutomaton,
    compile_regex,
    equality_automaton,
    is_key_attribute,
    is_vset_functional,
    join,
    project,
    rename_variables,
    union,
)
from .enumeration import SpannerEvaluator, enumerate_tuples, measure_delays
from .runtime.cache import cache_metrics
from .runtime.compiled import CompiledSpanner
from .runtime.equality import CompiledEqualityQuery, equality_join
from .runtime.parallel import ParallelSpanner
from .runtime.service import SpannerService

__version__ = "1.0.0"

__all__ = [
    "Span",
    "SpanTuple",
    "SpanRelation",
    "parse",
    "is_functional",
    "check_functional",
    "VSetAutomaton",
    "compile_regex",
    "project",
    "union",
    "join",
    "rename_variables",
    "equality_automaton",
    "is_key_attribute",
    "is_vset_functional",
    "SpannerEvaluator",
    "CompiledSpanner",
    "CompiledEqualityQuery",
    "ParallelSpanner",
    "SpannerService",
    "equality_join",
    "cache_metrics",
    "enumerate_tuples",
    "measure_delays",
    "evaluate",
    "SpannerError",
    "RegexParseError",
    "NotFunctionalError",
    "InvalidSpanError",
    "SchemaError",
    "QueryError",
    "EvaluationError",
    "TaskTimeoutError",
    "QueryQuarantinedError",
    "OverloadedError",
    "ServiceClosedError",
    "TransientTaskError",
]


def evaluate(spanner, s: str) -> SpanRelation:
    """Materialize ``[[spanner]](s)`` as a :class:`SpanRelation`.

    ``spanner`` may be a vset-automaton, a regex-formula AST, or a
    string in the concrete regex syntax.
    """
    if not isinstance(spanner, VSetAutomaton):
        spanner = compile_regex(spanner)
    return spanner.evaluate(s)
