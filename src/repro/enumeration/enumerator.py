"""The public tuple enumerator (Theorem 3.3).

:class:`SpannerEvaluator` separates the two phases the theorem
distinguishes: the ``O(n^2 |s| + mn)`` preprocessing happens in the
constructor (building the pruned ``A_G``); iteration then yields each
tuple of ``[[A]](s)`` exactly once with ``O(n^2 |s|)`` delay, in the
radix order of configuration sequences.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..spans import Span, SpanTuple
from ..automata.leveled import RadixEnumerator
from ..runtime.tables import AutomatonTables
from ..vset.automaton import VSetAutomaton
from ..vset.configurations import CLOSED, WAITING, VariableConfiguration
from .graph import EvaluationGraph, build_evaluation_graph

__all__ = ["SpannerEvaluator", "enumerate_tuples", "decode_configuration_word"]


def decode_configuration_word(
    word: Sequence[VariableConfiguration], variables: frozenset[str]
) -> SpanTuple:
    """Decode ``κ_0 ... κ_N`` into the (V, s)-tuple it encodes (§4.1).

    ``κ_i`` is the configuration immediately before reading ``σ_{i+1}``;
    for each variable the span starts at the first index where it is no
    longer waiting and ends at the first index where it is closed
    (1-based: index ``i`` maps to position ``i + 1``).
    """
    assignment: dict[str, Span] = {}
    for var in variables:
        start = None
        end = None
        for i, kappa in enumerate(word):
            state = kappa.of(var)
            if start is None and state != WAITING:
                start = i + 1
            if end is None and state == CLOSED:
                end = i + 1
            if start is not None and end is not None:
                break
        if start is None or end is None:
            raise ValueError(
                f"configuration word never closes variable {var!r}"
            )
        assignment[var] = Span(start, end)
    return SpanTuple(assignment)


class SpannerEvaluator:
    """Enumerate ``[[A]](s)`` with polynomial delay.

    Usage::

        evaluator = SpannerEvaluator(automaton, "chocolate cookie")
        for mu in evaluator:          # streaming, polynomial delay
            ...
        evaluator.count()             # distinct-tuple count without
                                      # materializing the tuples

    The constructor performs Theorem 3.3's preprocessing; it raises
    :class:`~repro.errors.NotFunctionalError` on non-functional input.

    The string-independent half of that preprocessing is factored into
    :class:`~repro.runtime.tables.AutomatonTables`; pass ``tables`` to
    reuse a precomputed set (``CompiledSpanner`` does this to amortize
    it across a document stream), otherwise a fresh one is built for
    this call.
    """

    def __init__(
        self,
        automaton: VSetAutomaton,
        s: str,
        *,
        tables: AutomatonTables | None = None,
    ):
        self.automaton = automaton
        self.string = s
        self.graph: EvaluationGraph = build_evaluation_graph(
            automaton, s, tables=tables
        )

    # -- Introspection ------------------------------------------------------
    @property
    def graph_nodes(self) -> int:
        return self.graph.leveled.n_nodes

    @property
    def graph_edges(self) -> int:
        return self.graph.leveled.n_edges

    def is_empty(self) -> bool:
        """True iff ``[[A]](s)`` is empty — O(1) after preprocessing."""
        return self.graph.leveled.is_empty

    def count(self, cap: int | None = None) -> int:
        """Number of distinct tuples (without decoding them)."""
        return self.graph.leveled.count_words(cap=cap)

    # -- Enumeration -----------------------------------------------------------
    def configuration_words(self) -> Iterator[tuple[VariableConfiguration, ...]]:
        """The raw words of ``L(A_G)`` in radix order."""
        enumerator = RadixEnumerator(
            self.graph.leveled, lambda config: config.sort_key()
        )
        yield from enumerator

    def __iter__(self) -> Iterator[SpanTuple]:
        variables = self.graph.variables
        for word in self.configuration_words():
            yield decode_configuration_word(word, variables)


def enumerate_tuples(automaton: VSetAutomaton, s: str) -> Iterator[SpanTuple]:
    """Stream the tuples of ``[[A]](s)`` (Theorem 3.3)."""
    yield from SpannerEvaluator(automaton, s)
