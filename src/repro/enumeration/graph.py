"""Construction of the evaluation graph ``G`` and NFA ``A_G`` (§4.2).

Given a functional vset-automaton ``A`` (with configurations ``~c_q``)
and a string ``s = σ_1 ... σ_N``, the paper builds:

* a leveled graph ``G`` whose nodes ``(i, q)`` mean "``A`` can be in
  state ``q`` immediately before reading ``σ_{i+1}``" (after absorbing
  any burst of variable operations / epsilon moves);
* the NFA ``A_G`` over the alphabet ``K = {~c_q | q ∈ Q}`` obtained by
  labelling every edge into ``(i, q)`` with ``~c_q`` and adding a
  virtual initial state.

``L(A_G)`` then consists of words of length ``N + 1`` in one-to-one
correspondence with ``[[A]](s)``, so enumerating the language without
repetition (radix order, Algorithms 1–3) enumerates the tuples.

We realize ``A_G`` directly as a
:class:`~repro.automata.leveled.LeveledNFA`: the virtual initial state
is the root; a paper node ``(i, q)`` sits at level ``i + 1``; level
``N + 1`` keeps only ``(N, q_f)``.  Pruning non-co-reachable nodes — the
paper's "remove nodes from which ``(N, q_f)`` cannot be reached" — is
:meth:`LeveledNFA.prune`.

Sizes: ``G`` has at most ``N*n + 1`` nodes and ``N*n^2`` edges, and the
construction runs in ``O(N n^2)`` after the ``O(mn)`` closure
precomputation — the preprocessing bound of Theorem 3.3.
"""

from __future__ import annotations

from ..automata.leveled import LeveledNFA
from ..runtime.tables import AutomatonTables
from ..vset.automaton import VSetAutomaton

__all__ = ["build_evaluation_graph", "EvaluationGraph"]


class EvaluationGraph:
    """The leveled NFA ``A_G`` plus the data needed to decode words.

    Attributes:
        leveled: the pruned :class:`LeveledNFA` over configurations.
        variables: the automaton's variable set (for decoding).
        n_slots: ``N + 1`` — the uniform word length.
    """

    __slots__ = ("leveled", "variables", "n_slots")

    def __init__(
        self, leveled: LeveledNFA, variables: frozenset[str], n_slots: int
    ):
        self.leveled = leveled
        self.variables = variables
        self.n_slots = n_slots


def build_evaluation_graph(
    automaton: VSetAutomaton,
    s: str,
    tables: AutomatonTables | None = None,
) -> EvaluationGraph:
    """Preprocessing of Theorem 3.3: build the pruned ``A_G`` for (A, s).

    The string-independent half (trim, configuration sweep, VE closures,
    terminal-edge lists) lives in :class:`AutomatonTables`; pass
    precomputed ``tables`` (the compiled-spanner runtime does) to skip
    it entirely and pay only the per-string sweep.  Without ``tables``
    the artifacts are rebuilt for this call — the cold path of
    ``SpannerEvaluator``.

    Raises:
        NotFunctionalError: when the automaton is not functional (the
            configuration sweep detects a conflict, or the final
            configuration leaves a variable unclosed).
    """
    if tables is None:
        tables = AutomatonTables(automaton)
    n = len(s)
    leveled = LeveledNFA(n + 1)

    if tables.is_empty:
        leveled.prune()
        return EvaluationGraph(leveled, tables.variables, n + 1)

    tables.require_all_closed_final()
    configs = tables.configs
    # The construction below appends nodes/edges directly instead of
    # going through the checked add_node/add_edge: it only ever creates
    # nodes at ``position + 1`` and edges advancing exactly one level,
    # and this is the per-document hot path of the whole engine.
    level_of = leveled.level_of
    out_edges = leveled.out_edges

    node_of: dict[int, int] = {}
    # Level 1: states reachable from q0 by a burst, read before sigma_1.
    frontier: list[int] = []
    root_edges = out_edges[LeveledNFA.ROOT]
    for q in tables.initial_ve:
        level_of.append(1)
        out_edges.append([])
        node = len(level_of) - 1
        node_of[q] = node
        root_edges.append((configs[q], node))
        frontier.append(q)

    for position in range(1, n + 1):
        steps = tables.burst_step(s[position - 1])
        next_nodes: dict[int, int] = {}
        next_frontier: list[int] = []
        next_level = position + 1
        for p in frontier:
            succs = steps[p]
            if not succs:
                continue
            src_edges = out_edges[node_of[p]]
            for q in succs:
                dst = next_nodes.get(q)
                if dst is None:
                    level_of.append(next_level)
                    out_edges.append([])
                    dst = len(level_of) - 1
                    next_nodes[q] = dst
                    next_frontier.append(q)
                src_edges.append((configs[q], dst))
        node_of = next_nodes
        frontier = next_frontier
        if not frontier:
            # The frontier only ever shrinks from here: no state
            # survived this position, so every remaining level would be
            # empty and prune() would discard it all.  Stopping now
            # makes a non-matching document cost O(matched prefix)
            # instead of O(|s|) — with node_of empty, the final-state
            # lookup below misses and the graph prunes to the same
            # empty result the full sweep would have produced.
            break

    final_node = node_of.get(tables.automaton.final)
    if final_node is not None:
        leveled.mark_accepting(final_node)
    leveled.prune()
    return EvaluationGraph(leveled, tables.variables, n + 1)
