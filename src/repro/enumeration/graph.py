"""Construction of the evaluation graph ``G`` and NFA ``A_G`` (§4.2).

Given a functional vset-automaton ``A`` (with configurations ``~c_q``)
and a string ``s = σ_1 ... σ_N``, the paper builds:

* a leveled graph ``G`` whose nodes ``(i, q)`` mean "``A`` can be in
  state ``q`` immediately before reading ``σ_{i+1}``" (after absorbing
  any burst of variable operations / epsilon moves);
* the NFA ``A_G`` over the alphabet ``K = {~c_q | q ∈ Q}`` obtained by
  labelling every edge into ``(i, q)`` with ``~c_q`` and adding a
  virtual initial state.

``L(A_G)`` then consists of words of length ``N + 1`` in one-to-one
correspondence with ``[[A]](s)``, so enumerating the language without
repetition (radix order, Algorithms 1–3) enumerates the tuples.

We realize ``A_G`` directly as a
:class:`~repro.automata.leveled.LeveledNFA`: the virtual initial state
is the root; a paper node ``(i, q)`` sits at level ``i + 1``; level
``N + 1`` keeps only ``(N, q_f)``.  Pruning non-co-reachable nodes — the
paper's "remove nodes from which ``(N, q_f)`` cannot be reached" — is
:meth:`LeveledNFA.prune`.

Sizes: ``G`` has at most ``N*n + 1`` nodes and ``N*n^2`` edges, and the
construction runs in ``O(N n^2)`` after the ``O(mn)`` closure
precomputation — the preprocessing bound of Theorem 3.3.
"""

from __future__ import annotations

from ..alphabet import is_epsilon, is_marker, is_marker_set, is_symbol
from ..automata.leveled import LeveledNFA
from ..automata.ops import closure
from ..errors import NotFunctionalError
from ..vset.automaton import VSetAutomaton
from ..vset.configurations import (
    VariableConfiguration,
    compute_state_configurations,
)

__all__ = ["build_evaluation_graph", "EvaluationGraph"]


def _variable_epsilon(label: object) -> bool:
    return is_epsilon(label) or is_marker(label) or is_marker_set(label)


class EvaluationGraph:
    """The leveled NFA ``A_G`` plus the data needed to decode words.

    Attributes:
        leveled: the pruned :class:`LeveledNFA` over configurations.
        variables: the automaton's variable set (for decoding).
        n_slots: ``N + 1`` — the uniform word length.
    """

    __slots__ = ("leveled", "variables", "n_slots")

    def __init__(
        self, leveled: LeveledNFA, variables: frozenset[str], n_slots: int
    ):
        self.leveled = leveled
        self.variables = variables
        self.n_slots = n_slots


def build_evaluation_graph(automaton: VSetAutomaton, s: str) -> EvaluationGraph:
    """Preprocessing of Theorem 3.3: build the pruned ``A_G`` for (A, s).

    Raises:
        NotFunctionalError: when the automaton is not functional (the
            configuration sweep detects a conflict, or the final
            configuration leaves a variable unclosed).
    """
    trimmed = automaton.trimmed()
    n = len(s)
    leveled = LeveledNFA(n + 1)

    if trimmed.is_empty_language():
        leveled.prune()
        return EvaluationGraph(leveled, automaton.variables, n + 1)

    configs = compute_state_configurations(trimmed)
    final_config = configs[trimmed.final]
    if final_config is None or not final_config.is_all_closed:
        raise NotFunctionalError(
            "final state configuration leaves variables unclosed"
        )

    nfa = trimmed.nfa
    ve = [closure(nfa, (q,), _variable_epsilon) for q in range(nfa.n_states)]
    terminal_edges = [
        [(label, dst) for label, dst in nfa.transitions[q] if is_symbol(label)]
        for q in range(nfa.n_states)
    ]

    def config(q: int) -> VariableConfiguration:
        c = configs[q]
        if c is None:
            raise AssertionError("trimmed state without configuration")
        return c

    node_of: dict[int, int] = {}
    # Level 1: states reachable from q0 by a burst, read before sigma_1.
    frontier: list[int] = []
    for q in ve[trimmed.initial]:
        node = leveled.add_node(1)
        node_of[q] = node
        leveled.add_edge(LeveledNFA.ROOT, config(q), node)
        frontier.append(q)

    for position in range(1, n + 1):
        ch = s[position - 1]
        next_nodes: dict[int, int] = {}
        next_frontier: list[int] = []
        seen_edges: set[tuple[int, int]] = set()
        for p in frontier:
            src = node_of[p]
            for pred, r in terminal_edges[p]:
                if not pred.matches(ch):
                    continue
                for q in ve[r]:
                    if (src, q) in seen_edges:
                        continue
                    seen_edges.add((src, q))
                    dst = next_nodes.get(q)
                    if dst is None:
                        dst = leveled.add_node(position + 1)
                        next_nodes[q] = dst
                        next_frontier.append(q)
                    leveled.add_edge(src, config(q), dst)
        node_of = next_nodes
        frontier = next_frontier

    final_node = node_of.get(trimmed.final)
    if final_node is not None:
        leveled.mark_accepting(final_node)
    leveled.prune()
    return EvaluationGraph(leveled, automaton.variables, n + 1)
