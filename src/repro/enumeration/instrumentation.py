"""Delay instrumentation for enumeration benchmarks (E1, E8, E10).

Theorem 3.3 is a statement about *delay* — the wall-clock gap between
consecutive answers — not total time.  :func:`measure_delays` samples
``perf_counter`` around preprocessing and around every ``__next__`` so
the benchmark harness can report max/mean delay as the paper's bounds
predict, without perturbing the algorithmic path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable, Iterator

from ..spans import SpanTuple
from ..vset.automaton import VSetAutomaton
from .enumerator import SpannerEvaluator

__all__ = ["DelayReport", "measure_delays", "measure_generator_delays"]


@dataclass(slots=True)
class DelayReport:
    """Timing profile of one enumeration run.

    Attributes:
        preprocessing_seconds: time to build ``A_G`` (Theorem 3.3's
            preprocessing phase).
        delays: per-answer delays in seconds, in output order; the
            first entry is the time from end-of-preprocessing to the
            first answer.
        truncated: True when ``limit`` stopped the run early.
    """

    preprocessing_seconds: float
    delays: list[float] = field(default_factory=list)
    truncated: bool = False

    @property
    def count(self) -> int:
        return len(self.delays)

    @property
    def max_delay(self) -> float:
        return max(self.delays, default=0.0)

    @property
    def mean_delay(self) -> float:
        if not self.delays:
            return 0.0
        return sum(self.delays) / len(self.delays)

    @property
    def total_seconds(self) -> float:
        return self.preprocessing_seconds + sum(self.delays)


def measure_delays(
    automaton: VSetAutomaton, s: str, limit: int | None = None
) -> DelayReport:
    """Enumerate ``[[A]](s)`` and record per-answer delays.

    Args:
        automaton: a functional vset-automaton.
        s: the input string.
        limit: optional cap on the number of answers timed.
    """
    start = perf_counter()
    evaluator = SpannerEvaluator(automaton, s)
    report = DelayReport(preprocessing_seconds=perf_counter() - start)
    _drain(iter(evaluator), report, limit)
    return report


def measure_generator_delays(
    make_iterator: Callable[[], Iterable[SpanTuple]], limit: int | None = None
) -> DelayReport:
    """Delay-profile an arbitrary tuple stream (e.g. a UCQ evaluator).

    ``make_iterator`` is invoked inside the timed region, so whatever
    preprocessing it performs lazily lands in the first delay sample;
    evaluators that precompute eagerly should be wrapped so that their
    setup happens inside ``make_iterator``.
    """
    start = perf_counter()
    iterator = iter(make_iterator())
    report = DelayReport(preprocessing_seconds=perf_counter() - start)
    _drain(iterator, report, limit)
    return report


def _drain(
    iterator: Iterator[SpanTuple], report: DelayReport, limit: int | None
) -> None:
    last = perf_counter()
    for _tuple in iterator:
        now = perf_counter()
        report.delays.append(now - last)
        last = now
        if limit is not None and len(report.delays) >= limit:
            report.truncated = True
            return
