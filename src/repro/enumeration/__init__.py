"""Polynomial-delay enumeration of ``[[A]](s)`` (Theorem 3.3, Section 4).

The pipeline: build the leveled evaluation graph ``G`` / NFA ``A_G``
over the variable-configuration alphabet (:mod:`.graph`), enumerate
``L(A_G)`` in radix order via the state-stack algorithm
(:class:`repro.automata.leveled.RadixEnumerator`), and decode each
configuration sequence into a span tuple (:mod:`.enumerator`).
"""

from .enumerator import SpannerEvaluator, decode_configuration_word, enumerate_tuples
from .graph import build_evaluation_graph
from .instrumentation import DelayReport, measure_delays

__all__ = [
    "SpannerEvaluator",
    "enumerate_tuples",
    "decode_configuration_word",
    "build_evaluation_graph",
    "DelayReport",
    "measure_delays",
]
