"""Abstract syntax trees for regex formulas (§2.2.2).

The grammar of the paper is::

    alpha := ∅ | ε | σ | (alpha ∨ alpha) | (alpha · alpha) | alpha* | x{alpha}

We add the standard derived forms ``alpha+`` (paper shorthand),
``alpha?``, character classes and the wildcard ``.`` (the paper's
``Sigma`` shorthand) — all of which desugar to predicate-labelled
transitions during compilation (see DESIGN.md on the predicate-label
substitution).

Every node is immutable and hashable.  ``str()`` renders a formula in
the concrete syntax accepted by :func:`repro.regex.parser.parse`, and
round-tripping is covered by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..alphabet import ANY, Chars, NotChars, SymbolPredicate

__all__ = [
    "RegexFormula",
    "EmptySet",
    "Epsilon",
    "CharClass",
    "Union",
    "Concat",
    "Star",
    "Plus",
    "Optional",
    "Capture",
    "char",
    "any_char",
    "epsilon",
    "concat",
    "union",
    "string_literal",
    "sigma_star",
]

_ESCAPE_REQUIRED = set("\\|*+?(){}[].∅ε")
_CONTROL_ESCAPES = {"\n": "\\n", "\t": "\\t", "\r": "\\r"}


def _escape_char(ch: str) -> str:
    if ch in _CONTROL_ESCAPES:
        return _CONTROL_ESCAPES[ch]
    if ch in _ESCAPE_REQUIRED:
        return "\\" + ch
    return ch


class RegexFormula:
    """Base class for regex-formula AST nodes."""

    __slots__ = ()

    # -- Structure -----------------------------------------------------------
    def children(self) -> tuple["RegexFormula", ...]:
        """Immediate sub-formulas."""
        return ()

    def iter_nodes(self) -> Iterator["RegexFormula"]:
        """Pre-order traversal of the syntax tree (iterative, so deep
        formulas do not hit the interpreter's recursion limit)."""
        stack: list[RegexFormula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """The paper's ``|alpha|``: number of syntax-tree nodes.

        (The paper counts symbols; node count is within a constant
        factor and is the measure used by our benchmarks.)
        """
        return sum(1 for _ in self.iter_nodes())

    def variables(self) -> frozenset[str]:
        """``Vars(alpha)``: variables occurring anywhere in the formula."""
        out: set[str] = set()
        for node in self.iter_nodes():
            if isinstance(node, Capture):
                out.add(node.variable)
        return frozenset(out)

    # -- Combinators ---------------------------------------------------------
    def __or__(self, other: "RegexFormula") -> "RegexFormula":
        return union(self, other)

    def __add__(self, other: "RegexFormula") -> "RegexFormula":
        return concat(self, other)

    def star(self) -> "Star":
        return Star(self)

    def plus(self) -> "Plus":
        return Plus(self)

    def opt(self) -> "Optional":
        return Optional(self)

    def capture(self, variable: str) -> "Capture":
        return Capture(variable, self)

    # -- Rendering -----------------------------------------------------------
    def _precedence(self) -> int:
        """3 = atom, 2 = repetition, 1 = concatenation, 0 = union."""
        raise NotImplementedError

    def _render(self) -> str:
        raise NotImplementedError

    def _render_at(self, min_precedence: int) -> str:
        text = self._render()
        if self._precedence() < min_precedence:
            return f"({text})"
        return text

    def __str__(self) -> str:
        return self._render()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._render()!r})"


@dataclass(frozen=True, slots=True, repr=False)
class EmptySet(RegexFormula):
    """The formula ``∅`` denoting the empty ref-word language."""

    def _precedence(self) -> int:
        return 3

    def _render(self) -> str:
        return "∅"


@dataclass(frozen=True, slots=True, repr=False)
class Epsilon(RegexFormula):
    """The formula ``ε`` matching the empty string."""

    def _precedence(self) -> int:
        return 3

    def _render(self) -> str:
        return "ε"


@dataclass(frozen=True, slots=True, repr=False)
class CharClass(RegexFormula):
    """A terminal predicate: single char, char set/range, or wildcard."""

    predicate: SymbolPredicate

    def _precedence(self) -> int:
        return 3

    def _render(self) -> str:
        pred = self.predicate
        if isinstance(pred, Chars):
            if len(pred.chars) == 1:
                return _escape_char(next(iter(pred.chars)))
            return "[" + "".join(_escape_char(c) for c in sorted(pred.chars)) + "]"
        if isinstance(pred, NotChars):
            return "[^" + "".join(_escape_char(c) for c in sorted(pred.chars)) + "]"
        return "."


@dataclass(frozen=True, slots=True, repr=False)
class Union(RegexFormula):
    """Disjunction ``alpha ∨ beta`` (written ``alpha|beta``)."""

    left: RegexFormula
    right: RegexFormula

    def children(self) -> tuple[RegexFormula, ...]:
        return (self.left, self.right)

    def _precedence(self) -> int:
        return 0

    def _render(self) -> str:
        return f"{self.left._render_at(0)}|{self.right._render_at(1)}"


@dataclass(frozen=True, slots=True, repr=False)
class Concat(RegexFormula):
    """Concatenation ``alpha · beta``."""

    left: RegexFormula
    right: RegexFormula

    def children(self) -> tuple[RegexFormula, ...]:
        return (self.left, self.right)

    def _precedence(self) -> int:
        return 1

    def _render(self) -> str:
        return f"{self.left._render_at(1)}{self.right._render_at(2)}"


@dataclass(frozen=True, slots=True, repr=False)
class Star(RegexFormula):
    """Kleene star ``alpha*``."""

    inner: RegexFormula

    def children(self) -> tuple[RegexFormula, ...]:
        return (self.inner,)

    def _precedence(self) -> int:
        return 2

    def _render(self) -> str:
        return f"{self.inner._render_at(3)}*"


@dataclass(frozen=True, slots=True, repr=False)
class Plus(RegexFormula):
    """``alpha+``, the paper's shorthand for ``alpha · alpha*``."""

    inner: RegexFormula

    def children(self) -> tuple[RegexFormula, ...]:
        return (self.inner,)

    def _precedence(self) -> int:
        return 2

    def _render(self) -> str:
        return f"{self.inner._render_at(3)}+"


@dataclass(frozen=True, slots=True, repr=False)
class Optional(RegexFormula):
    """``alpha?``, shorthand for ``alpha ∨ ε``."""

    inner: RegexFormula

    def children(self) -> tuple[RegexFormula, ...]:
        return (self.inner,)

    def _precedence(self) -> int:
        return 2

    def _render(self) -> str:
        return f"{self.inner._render_at(3)}?"


@dataclass(frozen=True, slots=True, repr=False)
class Capture(RegexFormula):
    """A variable binding ``x{alpha}``.

    Its ref-word language is ``x⊢ · R(alpha) · ⊣x`` (§2.2.2).
    """

    variable: str
    inner: RegexFormula

    def children(self) -> tuple[RegexFormula, ...]:
        return (self.inner,)

    def _precedence(self) -> int:
        return 3

    def _render(self) -> str:
        return f"{self.variable}{{{self.inner._render()}}}"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def char(ch: str) -> CharClass:
    """Formula matching exactly the character ``ch``."""
    if len(ch) != 1:
        raise ValueError(f"char() expects one character, got {ch!r}")
    return CharClass(Chars((ch,)))


def any_char() -> CharClass:
    """The wildcard ``.`` — any single character of Sigma."""
    return CharClass(ANY)


def epsilon() -> Epsilon:
    return Epsilon()


def _balanced(
    parts: tuple[RegexFormula, ...], node: type
) -> RegexFormula:
    """Combine ``parts`` into a balanced binary tree.

    Concatenation and union are associative, so balancing changes no
    semantics — but it keeps tree depth logarithmic, which matters for
    the recursive compiler/checker/printer on large generated formulas
    (e.g. the Theorem 3.2 construction at realistic graph sizes).
    """
    if len(parts) == 1:
        return parts[0]
    mid = len(parts) // 2
    return node(_balanced(parts[:mid], node), _balanced(parts[mid:], node))


def concat(*parts: RegexFormula) -> RegexFormula:
    """Balanced concatenation of any number of formulas."""
    if not parts:
        return Epsilon()
    return _balanced(tuple(parts), Concat)


def union(*parts: RegexFormula) -> RegexFormula:
    """Balanced union of any number of formulas."""
    if not parts:
        return EmptySet()
    return _balanced(tuple(parts), Union)


def string_literal(text: str) -> RegexFormula:
    """Formula matching exactly ``text``."""
    if not text:
        return Epsilon()
    return concat(*(char(c) for c in text))


def sigma_star() -> Star:
    """The ubiquitous padding ``Sigma*`` (rendered ``.*``)."""
    return Star(any_char())
