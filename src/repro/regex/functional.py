"""Functionality check for regex formulas (Theorem 2.4).

A regex formula ``alpha`` is *functional* when every ref-word in
``R(alpha)`` is valid — every variable of ``Vars(alpha)`` is opened
exactly once and then closed exactly once.  Fagin et al. [12] give a
syntactic test; its recursive shape is:

* ``∅``, ``ε``, ``σ`` — functional, no variables.
* ``x{beta}`` — functional iff ``beta`` is functional and
  ``x ∉ Vars(beta)``.
* ``beta · gamma`` — functional iff both parts are and
  ``Vars(beta) ∩ Vars(gamma) = ∅``.
* ``beta ∨ gamma`` — functional iff both parts are and
  ``Vars(beta) = Vars(gamma)`` (a branch that is ``∅`` — more generally,
  whose language is empty — contributes no ref-words and is exempt).
* ``beta*``, ``beta+``, ``beta?`` — functional iff ``beta`` is and
  ``Vars(beta) = ∅`` (for ``+`` the body may not bind variables either,
  since it repeats; for ``?`` the ε-branch binds nothing).

The test runs in ``O(|alpha| · v)`` time as stated by Theorem 2.4: one
pass over the tree with variable-set unions of size at most ``v``.

This module reports *why* a formula fails via
:class:`FunctionalityReport`, which downstream error messages reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import (
    Capture,
    CharClass,
    Concat,
    EmptySet,
    Epsilon,
    Optional,
    Plus,
    RegexFormula,
    Star,
    Union,
)

__all__ = ["FunctionalityReport", "check_functional", "is_functional"]


@dataclass(frozen=True, slots=True)
class FunctionalityReport:
    """Result of the functionality test.

    Attributes:
        functional: overall verdict.
        variables: ``Vars(alpha)`` as seen by valid branches (for an
            empty-language formula this is the empty set).
        reason: human-readable explanation when not functional.
        language_empty: True when ``R(alpha)`` is provably empty (the
            formula contains ``∅`` in every branch), in which case the
            formula is vacuously functional.
    """

    functional: bool
    variables: frozenset[str]
    reason: str | None = None
    language_empty: bool = False


def _combine_failure(*reports: FunctionalityReport) -> FunctionalityReport | None:
    for report in reports:
        if not report.functional:
            return report
    return None


def check_functional(formula: RegexFormula) -> FunctionalityReport:
    """Run the Theorem 2.4 test, returning a detailed report.

    On top of the recursive branch rules, the verdict compares the
    *live* variables (those bound in every generated ref-word) against
    the syntactic ``Vars(alpha)``: a variable that occurs only inside an
    empty-language branch (e.g. ``x`` in ``(x{a}∅)|b``) makes every
    generated ref-word invalid for ``Vars(alpha)``, hence the formula
    non-functional — unless the whole language is empty, in which case
    functionality holds vacuously.
    """
    report = _check(formula)
    if not report.functional or report.language_empty:
        return report
    syntactic = formula.variables()
    if report.variables != syntactic:
        missing = sorted(syntactic - report.variables)
        return FunctionalityReport(
            False,
            report.variables,
            reason=(
                f"variables {missing} occur only in empty-language "
                "branches, so no generated ref-word binds them"
            ),
        )
    return report


def _check(formula: RegexFormula) -> FunctionalityReport:
    """The recursive branch rules of the Theorem 2.4 test."""
    if isinstance(formula, EmptySet):
        return FunctionalityReport(True, frozenset(), language_empty=True)
    if isinstance(formula, (Epsilon, CharClass)):
        return FunctionalityReport(True, frozenset())

    if isinstance(formula, Capture):
        inner = _check(formula.inner)
        failed = _combine_failure(inner)
        if failed is not None:
            return failed
        if inner.language_empty:
            return FunctionalityReport(True, frozenset(), language_empty=True)
        if formula.variable in inner.variables:
            return FunctionalityReport(
                False,
                inner.variables,
                reason=(
                    f"variable {formula.variable!r} is re-bound inside its "
                    "own capture"
                ),
            )
        return FunctionalityReport(True, inner.variables | {formula.variable})

    if isinstance(formula, Concat):
        left = _check(formula.left)
        right = _check(formula.right)
        failed = _combine_failure(left, right)
        if failed is not None:
            return failed
        if left.language_empty or right.language_empty:
            return FunctionalityReport(True, frozenset(), language_empty=True)
        overlap = left.variables & right.variables
        if overlap:
            return FunctionalityReport(
                False,
                left.variables | right.variables,
                reason=(
                    f"variables {sorted(overlap)} are bound on both sides "
                    "of a concatenation"
                ),
            )
        return FunctionalityReport(True, left.variables | right.variables)

    if isinstance(formula, Union):
        left = _check(formula.left)
        right = _check(formula.right)
        failed = _combine_failure(left, right)
        if failed is not None:
            return failed
        if left.language_empty and right.language_empty:
            return FunctionalityReport(True, frozenset(), language_empty=True)
        if left.language_empty:
            return right
        if right.language_empty:
            return left
        if left.variables != right.variables:
            only_left = sorted(left.variables - right.variables)
            only_right = sorted(right.variables - left.variables)
            return FunctionalityReport(
                False,
                left.variables | right.variables,
                reason=(
                    "union branches bind different variables "
                    f"(left-only: {only_left}, right-only: {only_right})"
                ),
            )
        return FunctionalityReport(True, left.variables)

    if isinstance(formula, (Star, Plus, Optional)):
        inner = _check(formula.inner)
        failed = _combine_failure(inner)
        if failed is not None:
            return failed
        if inner.language_empty:
            # beta* and beta? still match ε; beta+ has empty language.
            empty = isinstance(formula, Plus)
            return FunctionalityReport(True, frozenset(), language_empty=empty)
        if inner.variables:
            op = {Star: "*", Plus: "+", Optional: "?"}[type(formula)]
            return FunctionalityReport(
                False,
                inner.variables,
                reason=(
                    f"variables {sorted(inner.variables)} are bound under "
                    f"'{op}' and could repeat or be skipped"
                ),
            )
        return FunctionalityReport(True, frozenset())

    raise TypeError(f"unknown regex node {formula!r}")


def is_functional(formula: RegexFormula) -> bool:
    """Boolean shortcut for :func:`check_functional`."""
    return check_functional(formula).functional
