"""Recursive-descent parser for the concrete regex-formula syntax.

Grammar (whitespace is significant — a space matches a literal space)::

    alternation := concat ('|' concat)*
    concat      := repeat*                      -- empty concat is ε
    repeat      := atom ('*' | '+' | '?')*
    atom        := capture | group | class | wildcard | epsilon | empty | literal
    capture     := NAME '{' alternation '}'     -- NAME = [A-Za-z_][A-Za-z0-9_]*
    group       := '(' alternation ')'
    class       := '[' '^'? item+ ']'           -- item = char or char '-' char
    wildcard    := '.'                          -- any character (Sigma)
    epsilon     := 'ε' | '\\e'
    empty       := '∅' | '\\0'
    literal     := any non-special character, or '\\' special

Specials requiring escape in literal position: ``| * + ? ( ) { } [ ] . \\``
plus ``ε`` and ``∅``.  Control escapes ``\\n``, ``\\t``, ``\\r`` are
supported.  An identifier is treated as a capture name only when
immediately followed by ``{``; write ``a\\{`` for a literal brace after
a letter.

Examples::

    parse("x{a*}b")                 # capture x over a*, then literal b
    parse(".*x{foo}.*y{bar}.*")     # one disjunct of Example 2.5's alpha
    parse("[a-z]+@[a-z]+\\.[a-z]+")  # simple email shape
"""

from __future__ import annotations

from ..alphabet import Chars, NotChars
from ..errors import RegexParseError
from .ast import (
    Capture,
    CharClass,
    EmptySet,
    Epsilon,
    Optional,
    Plus,
    RegexFormula,
    Star,
    any_char,
    char,
)
from .ast import concat as _concat
from .ast import union as _union

__all__ = ["parse"]

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CONT = _NAME_START | set("0123456789")
_SPECIALS = set("|*+?(){}[].\\")
_CONTROL = {"n": "\n", "t": "\t", "r": "\r"}


class _Parser:
    """Single-pass recursive-descent parser over ``text``."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- Low-level helpers ---------------------------------------------------
    def _peek(self) -> str | None:
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def _take(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        return ch

    def _fail(self, message: str) -> RegexParseError:
        return RegexParseError(message, self.pos)

    # -- Grammar ---------------------------------------------------------------
    def parse(self) -> RegexFormula:
        node = self.alternation()
        if self.pos != len(self.text):
            raise self._fail(f"unexpected {self.text[self.pos]!r}")
        return node

    def alternation(self) -> RegexFormula:
        branches = [self.concatenation()]
        while self._peek() == "|":
            self._take()
            branches.append(self.concatenation())
        # Balanced tree: keeps depth logarithmic for long alternations.
        return _union(*branches)

    def concatenation(self) -> RegexFormula:
        parts: list[RegexFormula] = []
        while True:
            ch = self._peek()
            if ch is None or ch in "|)}":
                break
            parts.append(self.repetition())
        if not parts:
            return Epsilon()
        # Balanced tree: keeps depth logarithmic for long literals.
        return _concat(*parts)

    def repetition(self) -> RegexFormula:
        node = self.atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self._take()
                node = Star(node)
            elif ch == "+":
                self._take()
                node = Plus(node)
            elif ch == "?":
                self._take()
                node = Optional(node)
            else:
                return node

    def atom(self) -> RegexFormula:
        ch = self._peek()
        if ch is None:
            raise self._fail("unexpected end of formula")
        if ch == "(":
            self._take()
            inner = self.alternation()
            if self._peek() != ")":
                raise self._fail("expected ')'")
            self._take()
            return inner
        if ch == "[":
            return self.char_class()
        if ch == ".":
            self._take()
            return any_char()
        if ch == "ε":
            self._take()
            return Epsilon()
        if ch == "∅":
            self._take()
            return EmptySet()
        if ch == "\\":
            return self._escaped_atom()
        if ch in _SPECIALS:
            raise self._fail(f"unexpected {ch!r}; escape it as '\\{ch}'")
        capture = self._try_capture()
        if capture is not None:
            return capture
        self._take()
        return char(ch)

    def _escaped_atom(self) -> RegexFormula:
        self._take()  # backslash
        ch = self._peek()
        if ch is None:
            raise self._fail("dangling backslash")
        self._take()
        if ch == "e":
            return Epsilon()
        if ch == "0":
            return EmptySet()
        if ch in _CONTROL:
            return char(_CONTROL[ch])
        return char(ch)

    def _try_capture(self) -> RegexFormula | None:
        """Parse ``NAME{...}`` at the cursor if present, else ``None``."""
        if self._peek() not in _NAME_START:
            return None
        start = self.pos
        end = start
        while end < len(self.text) and self.text[end] in _NAME_CONT:
            end += 1
        if end >= len(self.text) or self.text[end] != "{":
            return None
        name = self.text[start:end]
        self.pos = end + 1  # consume name and '{'
        inner = self.alternation()
        if self._peek() != "}":
            raise self._fail(f"expected '}}' closing capture {name!r}")
        self._take()
        return Capture(name, inner)

    def char_class(self) -> RegexFormula:
        self._take()  # '['
        negated = False
        if self._peek() == "^":
            negated = True
            self._take()
        if self._peek() == "]":
            raise self._fail("empty character class")
        chars: set[str] = set()
        while True:
            ch = self._peek()
            if ch is None:
                raise self._fail("unterminated character class")
            if ch == "]":
                self._take()
                break
            first = self._class_char()
            is_range = (
                self._peek() == "-"
                and self.pos + 1 < len(self.text)
                and self.text[self.pos + 1] != "]"
            )
            if is_range:
                self._take()  # '-'
                last = self._class_char()
                if ord(last) < ord(first):
                    raise self._fail(f"reversed range {first}-{last}")
                chars.update(chr(c) for c in range(ord(first), ord(last) + 1))
            else:
                chars.add(first)
        predicate = NotChars(chars) if negated else Chars(chars)
        return CharClass(predicate)

    def _class_char(self) -> str:
        ch = self._take()
        if ch != "\\":
            return ch
        nxt = self._peek()
        if nxt is None:
            raise self._fail("dangling backslash in class")
        self._take()
        return _CONTROL.get(nxt, nxt)


def parse(text: str) -> RegexFormula:
    """Parse the concrete syntax into a :class:`RegexFormula`.

    Raises:
        RegexParseError: on any syntax error, with the failing position.
    """
    return _Parser(text).parse()
