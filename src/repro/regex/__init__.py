"""Regex formulas: regular expressions with capture variables (§2.2.2).

Public surface:

* :func:`parse` — text syntax to AST;
* the AST node classes in :mod:`repro.regex.ast`;
* :func:`check_functional` / :func:`is_functional` — Theorem 2.4.
"""

from .ast import (
    Capture,
    CharClass,
    Concat,
    EmptySet,
    Epsilon,
    Plus,
    Optional,
    RegexFormula,
    Star,
    Union,
    any_char,
    char,
    concat,
    epsilon,
    sigma_star,
    string_literal,
    union,
)
from .functional import FunctionalityReport, check_functional, is_functional
from .parser import parse

__all__ = [
    "RegexFormula",
    "EmptySet",
    "Epsilon",
    "CharClass",
    "Union",
    "Concat",
    "Star",
    "Plus",
    "Optional",
    "Capture",
    "parse",
    "char",
    "any_char",
    "epsilon",
    "concat",
    "union",
    "string_literal",
    "sigma_star",
    "check_functional",
    "is_functional",
    "FunctionalityReport",
]
