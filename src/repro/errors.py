"""Exception hierarchy for the spanner-join library.

Every error raised by this package derives from :class:`SpannerError`, so
downstream code can catch a single base class.  The subclasses mirror the
stages of the pipeline: parsing regex formulas, checking functionality
(Theorem 2.4 / Theorem 2.7 of the paper), constructing queries, and
evaluating them — plus the serving-fleet fault-tolerance errors
(:class:`TaskTimeoutError`, :class:`QueryQuarantinedError`,
:class:`OverloadedError`, :class:`ServiceClosedError`,
:class:`TransientTaskError`), which exist because combined-complexity
intractability (Theorems 4.5/4.9) means a fleet serving arbitrary
queries must assume some tasks legitimately never finish.
"""

from __future__ import annotations


class SpannerError(Exception):
    """Base class for all errors raised by the spanner-join library."""


class RegexParseError(SpannerError):
    """Raised when a regex-formula string cannot be parsed.

    Attributes:
        position: 0-based index into the source text where parsing failed,
            or ``None`` when no position applies.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class NotFunctionalError(SpannerError):
    """Raised when a regex formula or vset-automaton is not functional.

    A representation is *functional* when every ref-word it generates is
    valid (each variable opened exactly once, then closed exactly once).
    The paper assumes functionality throughout; this error carries a
    human-readable ``reason`` describing the violation found.
    """

    def __init__(self, reason: str):
        super().__init__(f"not functional: {reason}")
        self.reason = reason


class InvalidSpanError(SpannerError):
    """Raised when span indices violate ``1 <= i <= j <= len(s) + 1``."""


class SchemaError(SpannerError):
    """Raised on variable-set mismatches in algebra operations.

    Examples: a union of spanners with different variable sets, a
    projection onto variables the spanner does not have, or a string
    equality selection over unknown variables.
    """


class QueryError(SpannerError):
    """Raised when a regex CQ or UCQ is structurally invalid.

    Examples: an equality atom over a variable that appears in no regex
    atom (forbidden by Section 2.3 of the paper), or a UCQ whose
    disjuncts have different head variables.
    """


class EvaluationError(SpannerError):
    """Raised when evaluation cannot proceed (e.g. exceeded a budget)."""


class TaskTimeoutError(EvaluationError, TimeoutError):
    """A fleet task ran past its deadline and its worker was killed.

    Raised through the task's future by
    :class:`~repro.runtime.service.SpannerService` when a worker's
    heartbeat shows the task executing for longer than its effective
    deadline (per-call override, else per-query override, else the
    service's ``task_timeout``).  The hung worker is killed and
    replaced; the task is **not** re-dispatched — a deadline that fired
    once would almost certainly fire again, and blind re-dispatch
    would hang the replacement worker too.  Also a
    :class:`TimeoutError`, so generic timeout handling catches it.
    """


class QueryQuarantinedError(SpannerError):
    """A query's circuit breaker is open: submissions fail fast.

    A query whose tasks keep failing at the fleet level (deadline
    timeouts, workers lost to crashes, exhausted transient retries)
    trips a per-query breaker after ``quarantine_after`` consecutive
    failures.  While open, new submissions raise this error immediately
    — no worker time is spent on a query that has proven pathological.
    After ``quarantine_cooldown`` seconds one *probe* submission is
    admitted (half-open): success closes the breaker, failure re-arms
    it.  :meth:`~repro.runtime.service.SpannerService.reinstate` is the
    manual escape hatch.

    Attributes:
        query_id: the quarantined query's registered id.
        failures: consecutive fleet-level failures recorded.
        retry_after: seconds until the next half-open probe is admitted
            (0.0 when a probe is already admissible).
    """

    def __init__(self, query_id: str, failures: int, retry_after: float):
        super().__init__(
            f"query {query_id!r} is quarantined after {failures} "
            f"consecutive failures (next probe in {retry_after:.1f}s; "
            "reinstate() to restore immediately)"
        )
        self.query_id = query_id
        self.failures = failures
        self.retry_after = retry_after


class OverloadedError(SpannerError):
    """The fleet shed this task under its load-shedding policy.

    Raised when ``max_in_flight`` chunks are already outstanding and
    the service's ``on_overload`` policy is ``"reject"`` (the submitter
    gets the error synchronously) or ``"shed_oldest"`` (the *oldest
    backlogged* task's future fails with it to make room for the new
    submission).  With the default ``"block"`` policy this error is
    never raised — submission blocks instead.
    """


class ServiceClosedError(SpannerError, RuntimeError):
    """The serving fleet is closed (or closing) and cannot take work.

    Raised on submission/registration after
    :meth:`~repro.runtime.service.SpannerService.close`, and through
    any future still unresolved when ``close(drain=True, timeout=...)``
    gives up waiting — those futures are *failed*, never left pending.
    Subclasses :class:`RuntimeError` for compatibility with callers
    that caught the pre-fault-tolerance closed-service error.
    """


class TransientTaskError(SpannerError):
    """A worker-side failure that is safe to re-dispatch.

    Shipped back by workers for failures that say nothing about the
    query or the document — e.g. a shared-memory attach race where the
    segment was not yet (or no longer) visible to the worker, or an
    injected transient fault from the chaos harness
    (:mod:`repro.runtime.faults`).  The driver re-dispatches the task
    with capped exponential backoff instead of failing its future;
    only after ``MAX_TASK_ATTEMPTS`` total attempts does the error
    surface to the caller (and count toward the query's breaker).
    """
