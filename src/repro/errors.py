"""Exception hierarchy for the spanner-join library.

Every error raised by this package derives from :class:`SpannerError`, so
downstream code can catch a single base class.  The subclasses mirror the
stages of the pipeline: parsing regex formulas, checking functionality
(Theorem 2.4 / Theorem 2.7 of the paper), constructing queries, and
evaluating them.
"""

from __future__ import annotations


class SpannerError(Exception):
    """Base class for all errors raised by the spanner-join library."""


class RegexParseError(SpannerError):
    """Raised when a regex-formula string cannot be parsed.

    Attributes:
        position: 0-based index into the source text where parsing failed,
            or ``None`` when no position applies.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class NotFunctionalError(SpannerError):
    """Raised when a regex formula or vset-automaton is not functional.

    A representation is *functional* when every ref-word it generates is
    valid (each variable opened exactly once, then closed exactly once).
    The paper assumes functionality throughout; this error carries a
    human-readable ``reason`` describing the violation found.
    """

    def __init__(self, reason: str):
        super().__init__(f"not functional: {reason}")
        self.reason = reason


class InvalidSpanError(SpannerError):
    """Raised when span indices violate ``1 <= i <= j <= len(s) + 1``."""


class SchemaError(SpannerError):
    """Raised on variable-set mismatches in algebra operations.

    Examples: a union of spanners with different variable sets, a
    projection onto variables the spanner does not have, or a string
    equality selection over unknown variables.
    """


class QueryError(SpannerError):
    """Raised when a regex CQ or UCQ is structurally invalid.

    Examples: an equality atom over a variable that appears in no regex
    atom (forbidden by Section 2.3 of the paper), or a UCQ whose
    disjuncts have different head variables.
    """


class EvaluationError(SpannerError):
    """Raised when evaluation cannot proceed (e.g. exceeded a budget)."""
