"""Exception hierarchy for the spanner-join library.

Every error raised by this package derives from :class:`SpannerError`, so
downstream code can catch a single base class.  The subclasses mirror the
stages of the pipeline: parsing regex formulas, checking functionality
(Theorem 2.4 / Theorem 2.7 of the paper), constructing queries, and
evaluating them — plus the serving-fleet fault-tolerance errors
(:class:`TaskTimeoutError`, :class:`QueryQuarantinedError`,
:class:`OverloadedError`, :class:`ServiceClosedError`,
:class:`TransientTaskError`), which exist because combined-complexity
intractability (Theorems 4.5/4.9) means a fleet serving arbitrary
queries must assume some tasks legitimately never finish, and the
resource-governance errors (:class:`ResultLimitError`,
:class:`QueryRejectedError`), which exist because output relations can
be combinatorially large (Theorem 5.4) and automaton size is only
polynomially bounded per query — a serving fleet must be able to say
"no" before memory or compile time runs out.  The persistence layer
adds :class:`ArtifactCorruptError` for torn or bit-flipped entries in
the compiled-artifact store — recoverable by recompiling, because the
paper's preprocessing (Theorem 3.3) is a pure function of the query.
"""

from __future__ import annotations


class SpannerError(Exception):
    """Base class for all errors raised by the spanner-join library."""


class RegexParseError(SpannerError):
    """Raised when a regex-formula string cannot be parsed.

    Attributes:
        position: 0-based index into the source text where parsing failed,
            or ``None`` when no position applies.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class NotFunctionalError(SpannerError):
    """Raised when a regex formula or vset-automaton is not functional.

    A representation is *functional* when every ref-word it generates is
    valid (each variable opened exactly once, then closed exactly once).
    The paper assumes functionality throughout; this error carries a
    human-readable ``reason`` describing the violation found.
    """

    def __init__(self, reason: str):
        super().__init__(f"not functional: {reason}")
        self.reason = reason


class InvalidSpanError(SpannerError):
    """Raised when span indices violate ``1 <= i <= j <= len(s) + 1``."""


class SchemaError(SpannerError):
    """Raised on variable-set mismatches in algebra operations.

    Examples: a union of spanners with different variable sets, a
    projection onto variables the spanner does not have, or a string
    equality selection over unknown variables.
    """


class QueryError(SpannerError):
    """Raised when a regex CQ or UCQ is structurally invalid.

    Examples: an equality atom over a variable that appears in no regex
    atom (forbidden by Section 2.3 of the paper), or a UCQ whose
    disjuncts have different head variables.
    """


class EvaluationError(SpannerError):
    """Raised when evaluation cannot proceed (e.g. exceeded a budget)."""


class ResultLimitError(EvaluationError):
    """A task's result grew past its ``max_tuples``/``max_result_bytes`` cap.

    Raised worker-side by
    :class:`~repro.runtime.service.SpannerService` while enumerating a
    document whose output crosses the effective result cap (per-call
    override, else per-query override, else the service default) under
    the ``on_result_limit="error"`` policy.  Exactly the offending
    task's future fails; the fleet, the query registration and every
    other in-flight task are untouched.  This error indicts the
    *input* (a tuple-dense document meeting a tuple-dense query — the
    combinatorial outputs Theorem 5.4 allows), not the fleet, so it
    never charges the query's circuit breaker.

    Picklable by construction: workers ship it back through the result
    queue, so ``args`` is exactly the constructor signature.

    Attributes:
        kind: which cap tripped — ``"tuples"`` or ``"bytes"``.
        limit: the configured cap.
        produced: how much the document had produced when the cap
            tripped (tuples or encoded bytes, matching ``kind``).
    """

    def __init__(self, kind: str, limit: int, produced: int):
        super().__init__(kind, limit, produced)
        self.kind = kind
        self.limit = limit
        self.produced = produced

    def __str__(self) -> str:
        unit = "tuples" if self.kind == "tuples" else "result bytes"
        return (
            f"document result exceeded the cap: {self.produced} {unit} "
            f"against a max of {self.limit} "
            "(raise the cap, or set on_result_limit='truncate' for the "
            "bounded prefix)"
        )


class ArtifactCorruptError(SpannerError):
    """A stored compiled artifact failed its integrity check on read.

    Raised by :class:`~repro.runtime.store.FileStore` /
    :class:`~repro.runtime.store.MemoryStore` when an entry's header is
    torn (truncated write), its checksum does not match the payload, or
    its format version is one this build does not speak.  The store
    quarantines the offending file to ``<key>.corrupt`` before raising,
    so the next read is a clean miss.  Callers treat it as a cache
    miss: the artifact is a pure function of the query (Theorem 3.3),
    so the recovery is always "recompile and re-put" — this error is
    recorded in the store's counters but is never fatal to a query.

    Picklable by construction: ``args`` is exactly the constructor
    signature, mirroring :class:`ResultLimitError`.

    Attributes:
        key: the store key of the corrupt entry.
        reason: which check failed — ``"truncated"``, ``"bad-magic"``,
            ``"bad-version"`` or ``"bad-checksum"``.
        detail: human-readable specifics (sizes, versions, digests).
    """

    def __init__(self, key: str, reason: str, detail: str = ""):
        super().__init__(key, reason, detail)
        self.key = key
        self.reason = reason
        self.detail = detail

    def __str__(self) -> str:
        tail = f": {self.detail}" if self.detail else ""
        return (
            f"stored artifact {self.key!r} is corrupt ({self.reason}){tail} "
            "— quarantined; the caller should recompile"
        )


class QueryRejectedError(SpannerError):
    """Admission control refused to compile (or finish compiling) a query.

    Raised by :meth:`~repro.runtime.service.SpannerService.register`
    *before* any worker time is spent: either the query's estimated
    automaton size exceeds ``max_compile_states`` (the state count is
    bounded from the syntax tree — Thompson's construction is linear in
    ``|alpha|`` — so the estimate costs a parse, not a compile), or the
    compilation outlived ``compile_timeout`` and was killed.  The fleet
    and every registered query keep serving; nothing was registered.

    Attributes:
        reason: human-readable rejection reason.
        estimated_states: the admission estimate, when the size bound
            tripped (``None`` for compile timeouts).
        max_compile_states: the configured bound, when it tripped.
    """

    def __init__(
        self,
        reason: str,
        *,
        estimated_states: int | None = None,
        max_compile_states: int | None = None,
    ):
        super().__init__(f"query rejected: {reason}")
        self.reason = reason
        self.estimated_states = estimated_states
        self.max_compile_states = max_compile_states


class TaskTimeoutError(EvaluationError, TimeoutError):
    """A fleet task ran past its deadline and its worker was killed.

    Raised through the task's future by
    :class:`~repro.runtime.service.SpannerService` when a worker's
    heartbeat shows the task executing for longer than its effective
    deadline (per-call override, else per-query override, else the
    service's ``task_timeout``).  The hung worker is killed and
    replaced; the task is **not** re-dispatched — a deadline that fired
    once would almost certainly fire again, and blind re-dispatch
    would hang the replacement worker too.  Also a
    :class:`TimeoutError`, so generic timeout handling catches it.
    """


class QueryQuarantinedError(SpannerError):
    """A query's circuit breaker is open: submissions fail fast.

    A query whose tasks keep failing at the fleet level (deadline
    timeouts, workers lost to crashes, exhausted transient retries)
    trips a per-query breaker after ``quarantine_after`` consecutive
    failures.  While open, new submissions raise this error immediately
    — no worker time is spent on a query that has proven pathological.
    After ``quarantine_cooldown`` seconds one *probe* submission is
    admitted (half-open): success closes the breaker, failure re-arms
    it.  :meth:`~repro.runtime.service.SpannerService.reinstate` is the
    manual escape hatch.

    Attributes:
        query_id: the quarantined query's registered id.
        failures: consecutive fleet-level failures recorded.
        retry_after: seconds until the next half-open probe is admitted
            (0.0 when a probe is already admissible).
    """

    def __init__(self, query_id: str, failures: int, retry_after: float):
        super().__init__(
            f"query {query_id!r} is quarantined after {failures} "
            f"consecutive failures (next probe in {retry_after:.1f}s; "
            "reinstate() to restore immediately)"
        )
        self.query_id = query_id
        self.failures = failures
        self.retry_after = retry_after


class OverloadedError(SpannerError):
    """The fleet shed this task under its load-shedding policy.

    Raised when ``max_in_flight`` chunks are already outstanding and
    the service's ``on_overload`` policy is ``"reject"`` (the submitter
    gets the error synchronously) or ``"shed_oldest"`` (the *oldest
    backlogged* task's future fails with it to make room for the new
    submission).  With the default ``"block"`` policy this error is
    never raised — submission blocks instead.
    """


class ServiceClosedError(SpannerError, RuntimeError):
    """The serving fleet is closed (or closing) and cannot take work.

    Raised on submission/registration after
    :meth:`~repro.runtime.service.SpannerService.close`, and through
    any future still unresolved when ``close(drain=True, timeout=...)``
    gives up waiting — those futures are *failed*, never left pending.
    Subclasses :class:`RuntimeError` for compatibility with callers
    that caught the pre-fault-tolerance closed-service error.
    """


class TransientTaskError(SpannerError):
    """A worker-side failure that is safe to re-dispatch.

    Shipped back by workers for failures that say nothing about the
    query or the document — e.g. a shared-memory attach race where the
    segment was not yet (or no longer) visible to the worker, or an
    injected transient fault from the chaos harness
    (:mod:`repro.runtime.faults`).  The driver re-dispatches the task
    with capped exponential backoff instead of failing its future;
    only after ``MAX_TASK_ATTEMPTS`` total attempts does the error
    surface to the caller (and count toward the query's breaker).
    """
