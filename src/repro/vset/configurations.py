"""Variable configurations (Section 4.1).

In a functional vset-automaton, every state ``q`` implicitly stores, for
each variable ``x``, whether ``x`` has not been opened yet (*waiting*),
has been opened but not closed (*open*), or has been opened and closed
(*closed*).  The paper writes this as the variable configuration
``~c_q : V -> {w, o, c}``, and identifies each ``(V, s)``-tuple with the
sequence of configurations ``~c_1, ..., ~c_{N+1}`` observed immediately
before each position of ``s`` (plus the final all-closed configuration).

This identification is the paper's main conceptual device: treating
``[[A]](s)`` as a language over the configuration alphabet is "exactly
the level of granularity needed to distinguish different tuples".
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from ..alphabet import (
    VariableMarker,
    is_epsilon,
    is_marker,
    is_marker_set,
    is_symbol,
)
from ..errors import NotFunctionalError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .automaton import VSetAutomaton

__all__ = [
    "WAITING",
    "OPEN",
    "CLOSED",
    "VariableConfiguration",
    "compute_state_configurations",
]

#: Variable states, ordered: a variable only ever moves w -> o -> c.
WAITING, OPEN, CLOSED = 0, 1, 2
_STATE_NAMES = {WAITING: "w", OPEN: "o", CLOSED: "c"}


class VariableConfiguration:
    """An immutable mapping from variables to {waiting, open, closed}.

    Instances are hashable and totally ordered (lexicographically over
    the states of the sorted variable list), which makes them usable as
    letters of the enumeration alphabet ``K`` in Section 4.2.
    """

    __slots__ = ("variables", "states", "_hash")

    def __init__(self, variables: Iterable[str], states: Iterable[int] | None = None):
        vars_tuple = tuple(sorted(variables))
        if states is None:
            states_tuple = (WAITING,) * len(vars_tuple)
        else:
            states_tuple = tuple(states)
        if len(states_tuple) != len(vars_tuple):
            raise ValueError("states must align with sorted variables")
        for st in states_tuple:
            if st not in (WAITING, OPEN, CLOSED):
                raise ValueError(f"invalid variable state {st!r}")
        self.variables: tuple[str, ...] = vars_tuple
        self.states: tuple[int, ...] = states_tuple
        # Configurations are the letters of the enumeration alphabet K:
        # they key dicts on every evaluation-graph edge and every radix
        # bucket, so the hash is computed once, not per lookup.
        self._hash = hash((vars_tuple, states_tuple))

    # -- Constructors -----------------------------------------------------
    @classmethod
    def initial(cls, variables: Iterable[str]) -> "VariableConfiguration":
        """All variables waiting (the configuration of ``q_0``)."""
        return cls(variables)

    @classmethod
    def final(cls, variables: Iterable[str]) -> "VariableConfiguration":
        """All variables closed (the configuration of ``q_f``)."""
        vars_tuple = tuple(sorted(variables))
        return cls(vars_tuple, (CLOSED,) * len(vars_tuple))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, int]) -> "VariableConfiguration":
        vars_tuple = tuple(sorted(mapping))
        return cls(vars_tuple, tuple(mapping[v] for v in vars_tuple))

    # -- Access -----------------------------------------------------------
    def of(self, variable: str) -> int:
        """The state of ``variable`` (raises ``KeyError`` if unknown)."""
        try:
            idx = self.variables.index(variable)
        except ValueError:
            raise KeyError(variable) from None
        return self.states[idx]

    def items(self) -> Iterator[tuple[str, int]]:
        return zip(self.variables, self.states)

    @property
    def is_all_closed(self) -> bool:
        return all(st == CLOSED for st in self.states)

    @property
    def is_all_waiting(self) -> bool:
        return all(st == WAITING for st in self.states)

    # -- Marker application ----------------------------------------------------
    def apply_marker(self, marker: VariableMarker) -> "VariableConfiguration":
        """The configuration after one variable operation.

        Raises:
            NotFunctionalError: when the operation is illegal from this
                configuration (re-opening, closing an unopened variable,
                or touching an unknown variable).
        """
        try:
            idx = self.variables.index(marker.variable)
        except ValueError:
            raise NotFunctionalError(
                f"operation {marker} on variable outside the automaton's set"
            ) from None
        current = self.states[idx]
        if marker.is_open:
            if current != WAITING:
                raise NotFunctionalError(
                    f"variable {marker.variable!r} opened twice"
                    if current == OPEN
                    else f"variable {marker.variable!r} opened after closing"
                )
            new_state = OPEN
        else:
            if current != OPEN:
                raise NotFunctionalError(
                    f"variable {marker.variable!r} closed while "
                    f"{_STATE_NAMES[current]}"
                )
            new_state = CLOSED
        states = list(self.states)
        states[idx] = new_state
        return VariableConfiguration(self.variables, states)

    def apply_markers(self, markers: Iterable[VariableMarker]) -> "VariableConfiguration":
        """Apply a *set* of operations (multi-operation transition).

        Within one transition, an open of ``x`` is applied before a
        close of ``x`` (Lemma 3.10's generalized model compresses a
        marker burst into one edge; the only valid serialization opens
        before closing).
        """
        config = self
        ordered = sorted(markers, key=lambda m: (m.variable, not m.is_open))
        for marker in ordered:
            config = config.apply_marker(marker)
        return config

    def markers_to(self, other: "VariableConfiguration") -> frozenset[VariableMarker]:
        """The operation set turning this configuration into ``other``.

        Raises:
            NotFunctionalError: if some variable would move backwards
                (configurations only ever advance ``w -> o -> c``).
        """
        if self.variables != other.variables:
            raise ValueError("configurations must share the variable set")
        out: set[VariableMarker] = set()
        for var, before, after in zip(self.variables, self.states, other.states):
            if after < before:
                raise NotFunctionalError(
                    f"variable {var!r} moves backwards "
                    f"({_STATE_NAMES[before]} -> {_STATE_NAMES[after]})"
                )
            if before == WAITING and after >= OPEN:
                out.add(VariableMarker(var, True))
            if before <= OPEN and after == CLOSED:
                out.add(VariableMarker(var, False))
        return frozenset(out)

    def advances_to(self, other: "VariableConfiguration") -> bool:
        """True when every variable moves forward or stays (w<=o<=c)."""
        if self.variables != other.variables:
            return False
        return all(b <= a for b, a in zip(self.states, other.states))

    def restrict(self, variables: Iterable[str]) -> "VariableConfiguration":
        keep = set(variables)
        pairs = [(v, s) for v, s in self.items() if v in keep]
        return VariableConfiguration(
            tuple(v for v, _ in pairs), tuple(s for _, s in pairs)
        )

    def agrees_with(self, other: "VariableConfiguration") -> bool:
        """True when the configurations agree on every shared variable.

        This is the *consistency* condition of Lemma 3.10's product
        states.
        """
        shared = set(self.variables) & set(other.variables)
        return all(self.of(v) == other.of(v) for v in shared)

    def merge(self, other: "VariableConfiguration") -> "VariableConfiguration":
        """Union configuration of two consistent configurations."""
        if not self.agrees_with(other):
            raise ValueError("cannot merge inconsistent configurations")
        mapping = dict(self.items())
        mapping.update(other.items())
        return VariableConfiguration.from_mapping(mapping)

    def __reduce__(self):
        # Rebuild through __init__ so ``_hash`` is recomputed in the
        # receiving process: string hashes are salted per process
        # (PYTHONHASHSEED), so a pickled hash would disagree with every
        # dict the unpickling process builds around fresh
        # configurations.  Pickle's memo still preserves object
        # sharing, so interned configurations stay interned.
        return (VariableConfiguration, (self.variables, self.states))

    # -- Ordering / hashing (the alphabet K) -----------------------------------
    def sort_key(self) -> tuple[int, ...]:
        return self.states

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, VariableConfiguration):
            return NotImplemented
        return self.variables == other.variables and self.states == other.states

    def __lt__(self, other: "VariableConfiguration") -> bool:
        return self.states < other.states

    def __str__(self) -> str:
        inner = ",".join(f"{v}:{_STATE_NAMES[s]}" for v, s in self.items())
        return f"<{inner}>"

    __repr__ = __str__


def compute_state_configurations(
    automaton: "VSetAutomaton",
) -> list[VariableConfiguration | None]:
    """BFS-compute ``~c_q`` for every initial-reachable state.

    Returns a list indexed by state; unreachable states get ``None``.
    This is the ``O(v * m + v * n)`` sweep from the proofs of
    Theorems 2.7 and 3.3.

    Raises:
        NotFunctionalError: if an operation is illegal or two paths
            assign different configurations to one state — both are
            witnesses of non-functionality (given a trimmed automaton).
    """
    nfa = automaton.nfa
    configs: list[VariableConfiguration | None] = [None] * nfa.n_states
    start = nfa.initial
    if start is None:
        raise ValueError("automaton has no initial state")
    configs[start] = VariableConfiguration.initial(automaton.variables)
    queue: deque[int] = deque((start,))
    while queue:
        q = queue.popleft()
        config = configs[q]
        assert config is not None
        for label, dst in nfa.transitions[q]:
            if is_epsilon(label) or is_symbol(label):
                nxt = config
            elif is_marker(label):
                nxt = config.apply_marker(label)
            elif is_marker_set(label):
                nxt = config.apply_markers(label)
            else:
                raise TypeError(f"unknown transition label {label!r}")
            existing = configs[dst]
            if existing is None:
                configs[dst] = nxt
                queue.append(dst)
            elif existing != nxt:
                raise NotFunctionalError(
                    f"state {dst} is reachable with configurations "
                    f"{existing} and {nxt}"
                )
    return configs
