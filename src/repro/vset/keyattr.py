"""Deciding key attributes (Proposition 3.6).

A variable ``x ∈ Vars(A)`` is a *key attribute* when, for every string
``s`` and tuples ``mu, mu' ∈ [[A]](s)``, ``mu(x) = mu'(x)`` implies
``mu = mu'``.  Key attributes certify a polynomial bound on relation
sizes (quadratically many spans, one tuple per span), which feeds the
canonical relational strategy of Theorem 3.5.

The decision procedure is the paper's modified intersection
construction: an NFA ``A_x`` simulating two copies of ``A`` in parallel
over terminal characters, whose states carry a bit recording whether a
*witness* variable ``y`` with differing configurations has been seen.
Both copies must always agree on ``x``; the bit may flip from 0 to 1 when
they disagree elsewhere.  ``x`` is a key attribute iff no state
``(1, q_f, q_f)`` is reachable — and a reaching path yields a witness
string together with two distinct tuples sharing their ``x`` span,
which this implementation reconstructs.

With ``VE``-closures precomputed, the reachability sweep touches
``O(n^2)`` state pairs with ``O(n^2)`` work each: the paper's
``O(n^4)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..alphabet import (
    AnyChar,
    Chars,
    NotChars,
    SymbolPredicate,
    intersect_predicates,
    is_epsilon,
    is_marker,
    is_marker_set,
    is_symbol,
)
from ..automata.ops import closure
from ..spans import Span, SpanTuple
from .automaton import VSetAutomaton
from .configurations import (
    CLOSED,
    WAITING,
    VariableConfiguration,
    compute_state_configurations,
)

__all__ = ["KeyAttributeWitness", "is_key_attribute", "key_attribute_witness"]


@dataclass(frozen=True, slots=True)
class KeyAttributeWitness:
    """A counterexample to the key property of ``x``.

    Attributes:
        string: a string ``s`` with two distinct tuples agreeing on ``x``.
        tuple_a: first tuple of ``[[A]](s)``.
        tuple_b: second, distinct tuple with ``tuple_b[x] == tuple_a[x]``.
    """

    string: str
    tuple_a: SpanTuple
    tuple_b: SpanTuple


def _sample_char(pred: SymbolPredicate) -> str:
    """A concrete character matched by ``pred`` (for witness strings)."""
    if isinstance(pred, Chars):
        return min(pred.chars)
    if isinstance(pred, AnyChar):
        return "a"
    if isinstance(pred, NotChars):
        code = ord("a")
        while chr(code) in pred.chars:
            code += 1
        return chr(code)
    raise TypeError(f"cannot sample from predicate {pred!r}")


def _variable_epsilon(label: object) -> bool:
    return is_epsilon(label) or is_marker(label) or is_marker_set(label)


def key_attribute_witness(
    automaton: VSetAutomaton, variable: str
) -> KeyAttributeWitness | None:
    """Return a witness that ``variable`` is *not* a key attribute.

    Returns ``None`` when ``variable`` is a key attribute of the
    (functional) automaton.

    Raises:
        KeyError: if ``variable`` is not in ``Vars(A)``.
        NotFunctionalError: if the automaton is not functional.
    """
    if variable not in automaton.variables:
        raise KeyError(variable)
    trimmed = automaton.trimmed()
    if trimmed.is_empty_language():
        return None
    configs = compute_state_configurations(trimmed)
    nfa = trimmed.nfa
    ve = [closure(nfa, (q,), _variable_epsilon) for q in range(nfa.n_states)]
    terminal_edges: list[list[tuple[SymbolPredicate, int]]] = [
        [(label, dst) for label, dst in nfa.transitions[q] if is_symbol(label)]
        for q in range(nfa.n_states)
    ]

    def config(q: int) -> VariableConfiguration:
        c = configs[q]
        assert c is not None
        return c

    # Parent pointers for witness reconstruction: state -> (parent, char).
    Parent = tuple[tuple[int, int, int], str]
    parents: dict[tuple[int, int, int], Parent | None] = {}
    queue: deque[tuple[int, int, int]] = deque()

    start = trimmed.initial
    for q1 in ve[start]:
        c1 = config(q1)
        for q2 in ve[start]:
            c2 = config(q2)
            if c1.of(variable) != c2.of(variable):
                continue
            bit = 1 if c1 != c2 else 0
            state = (bit, q1, q2)
            if state not in parents:
                parents[state] = None
                queue.append(state)

    target = None
    final = trimmed.final
    while queue and target is None:
        state = queue.popleft()
        bit, p1, p2 = state
        for pred1, r1 in terminal_edges[p1]:
            for pred2, r2 in terminal_edges[p2]:
                combined = intersect_predicates(pred1, pred2)
                if combined is None:
                    continue
                ch = _sample_char(combined)
                for q1 in ve[r1]:
                    c1 = config(q1)
                    for q2 in ve[r2]:
                        c2 = config(q2)
                        if c1.of(variable) != c2.of(variable):
                            continue
                        new_bit = 1 if bit or c1 != c2 else 0
                        nxt = (new_bit, q1, q2)
                        if nxt in parents:
                            continue
                        parents[nxt] = (state, ch)
                        if nxt == (1, final, final):
                            target = nxt
                            queue.clear()
                            break
                        queue.append(nxt)
                    if target is not None:
                        break
                if target is not None:
                    break
            if target is not None:
                break

    if target is None:
        return None

    # Reconstruct the witness string and the two configuration sequences.
    chars: list[str] = []
    seq: list[tuple[int, int]] = []
    state: tuple[int, int, int] | None = target
    while state is not None:
        _bit, q1, q2 = state
        seq.append((q1, q2))
        parent = parents[state]
        if parent is None:
            state = None
        else:
            state, ch = parent
            chars.append(ch)
    seq.reverse()
    chars.reverse()
    s = "".join(chars)
    mu1 = _decode([config(q1) for q1, _ in seq], automaton.variables)
    mu2 = _decode([config(q2) for _, q2 in seq], automaton.variables)
    return KeyAttributeWitness(s, mu1, mu2)


def _decode(
    sequence: list[VariableConfiguration], variables: frozenset[str]
) -> SpanTuple:
    """Turn a configuration sequence into the tuple it encodes (§4.1)."""
    assignment: dict[str, Span] = {}
    for var in variables:
        start = next(
            i for i, c in enumerate(sequence) if c.of(var) != WAITING
        )
        end = next(i for i, c in enumerate(sequence) if c.of(var) == CLOSED)
        assignment[var] = Span(start + 1, end + 1)
    return SpanTuple(assignment)


def is_key_attribute(automaton: VSetAutomaton, variable: str) -> bool:
    """Decide whether ``variable`` is a key attribute (Proposition 3.6)."""
    return key_attribute_witness(automaton, variable) is None
