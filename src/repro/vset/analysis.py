"""Decision procedures on vset-automata beyond evaluation.

* :func:`assignment_automaton` — the single-tuple path automaton: a
  spanner whose only tuple on ``s`` is a given assignment (and which is
  empty on every other string).  This is the degenerate case of the
  Theorem 5.4 construction (one "choice" instead of all equal-substring
  choices), and composes with the join of Lemma 3.10.
* :func:`contains_tuple` — the membership problem "is ``mu`` in
  ``[[A]](s)``?", decided in polynomial time by joining ``A`` with the
  assignment automaton and checking emptiness.  This gives a
  per-candidate tester that never enumerates.
* :func:`is_empty_on` — "is ``[[A]](s)`` empty?", the Boolean fast path
  of the evaluator surfaced as a standalone helper.
"""

from __future__ import annotations

from typing import Mapping

from ..alphabet import EPSILON, VariableMarker, char_pred
from ..automata.nfa import NFA
from ..errors import SchemaError
from ..spans import Span, SpanTuple
from .automaton import VSetAutomaton
from .join import join

__all__ = ["assignment_automaton", "contains_tuple", "is_empty_on"]


def assignment_automaton(s: str, assignment: Mapping[str, Span]) -> VSetAutomaton:
    """A functional vset-automaton whose only tuple on ``s`` is
    ``assignment`` (and whose relation is empty on any other string).

    Raises:
        SchemaError: if some span does not fit ``s``.
    """
    for var, span in assignment.items():
        if not span.fits(s):
            raise SchemaError(f"span {span} of {var!r} does not fit the string")
    nfa = NFA()
    initial = nfa.add_state()
    final = nfa.add_state()
    nfa.set_initial(initial)
    nfa.add_final(final)

    markers_at: dict[int, set[VariableMarker]] = {}
    for var, span in assignment.items():
        markers_at.setdefault(span.start, set()).add(VariableMarker(var, True))
        markers_at.setdefault(span.end, set()).add(VariableMarker(var, False))

    current = initial
    n = len(s)
    for gap in range(1, n + 2):
        ops = frozenset(markers_at.get(gap, ()))
        if ops:
            nxt = nfa.add_state() if gap <= n else final
            nfa.add_transition(current, ops, nxt)
            current = nxt
        elif gap > n:
            nfa.add_transition(current, EPSILON, final)
            current = final
        if gap <= n:
            nxt = nfa.add_state()
            nfa.add_transition(current, char_pred(s[gap - 1]), nxt)
            current = nxt
    return VSetAutomaton(nfa, assignment.keys())


def contains_tuple(
    automaton: VSetAutomaton, s: str, mu: SpanTuple | Mapping[str, Span]
) -> bool:
    """Decide ``mu ∈ [[A]](s)`` without enumerating.

    ``mu`` must assign exactly ``Vars(A)``.  The check joins ``A`` with
    the single-tuple path automaton for ``mu`` (Lemma 3.10) and tests
    language emptiness — polynomial in ``|A|`` and ``|s|``.
    """
    assignment = dict(mu)
    if set(assignment) != set(automaton.variables):
        raise SchemaError(
            f"tuple over {sorted(assignment)} does not match "
            f"Vars(A) = {sorted(automaton.variables)}"
        )
    if not assignment:
        # Boolean spanner: membership of the empty tuple = non-emptiness.
        return not is_empty_on(automaton, s)
    probe = assignment_automaton(s, assignment)
    return not join(automaton, probe).is_empty_language()


def is_empty_on(automaton: VSetAutomaton, s: str) -> bool:
    """Decide whether ``[[A]](s)`` is empty (no enumeration needed)."""
    from ..enumeration.graph import build_evaluation_graph

    return build_evaluation_graph(automaton, s).leveled.is_empty
