"""Projection, union and renaming of vset-automata (Lemmas 3.8, 3.9).

* **Projection** (Lemma 3.8): replace every marker of a variable
  outside ``Y`` with epsilon.  Linear time; functionality is preserved
  because erasing out-of-``Y`` markers cannot invalidate the remaining
  ones.
* **Union** (Lemma 3.9): the standard NFA union — fresh initial and
  final states epsilon-linked to the operands.  Linear time; requires
  identical variable sets (as the spanner algebra does).
* **Renaming** is not a paper operator but a library convenience used
  when wiring reusable extractors into queries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..alphabet import EPSILON, VariableMarker, is_marker, is_marker_set
from ..automata.nfa import NFA
from ..errors import SchemaError
from .automaton import VSetAutomaton

__all__ = ["project", "union", "rename_variables"]


def project(automaton: VSetAutomaton, variables: Iterable[str]) -> VSetAutomaton:
    """The projection ``pi_Y(A)`` (Lemma 3.8).

    Markers of variables outside ``Y`` become epsilon transitions; for
    marker-set labels the out-of-``Y`` operations are dropped from the
    set (an emptied set becomes epsilon).
    """
    keep = frozenset(variables)
    unknown = keep - automaton.variables
    if unknown:
        raise SchemaError(
            f"cannot project onto unknown variables {sorted(unknown)}"
        )

    def map_label(label: object) -> object:
        if is_marker(label):
            assert isinstance(label, VariableMarker)
            return label if label.variable in keep else EPSILON
        if is_marker_set(label):
            assert isinstance(label, frozenset)
            kept = frozenset(m for m in label if m.variable in keep)
            return kept if kept else EPSILON
        return label

    return VSetAutomaton(automaton.nfa.map_labels(map_label), keep)


def union(automata: Sequence[VSetAutomaton]) -> VSetAutomaton:
    """The union ``A_1 ∪ ... ∪ A_k`` (Lemma 3.9).

    All operands must share one variable set.  The construction adds a
    fresh initial and a fresh final state with epsilon transitions into
    each operand's initial and out of each operand's final state —
    linear time in the total size of the input.
    """
    if not automata:
        raise ValueError("union of zero automata is undefined")
    variables = automata[0].variables
    for a in automata[1:]:
        if a.variables != variables:
            raise SchemaError(
                "union requires identical variable sets: "
                f"{sorted(variables)} vs {sorted(a.variables)}"
            )
    combined = NFA()
    new_initial = combined.add_state()
    new_final = combined.add_state()
    combined.set_initial(new_initial)
    combined.add_final(new_final)
    for a in automata:
        offset = combined.n_states
        combined.add_states(a.n_states)
        for src, label, dst in a.nfa.iter_edges():
            combined.add_transition(src + offset, label, dst + offset)
        combined.add_transition(new_initial, EPSILON, a.initial + offset)
        combined.add_transition(a.final + offset, EPSILON, new_final)
    return VSetAutomaton(combined, variables)


def rename_variables(
    automaton: VSetAutomaton, mapping: dict[str, str]
) -> VSetAutomaton:
    """A copy with variables renamed per ``mapping`` (identity elsewhere).

    Raises:
        SchemaError: if the renaming collapses two variables into one.
    """
    target = {mapping.get(v, v) for v in automaton.variables}
    if len(target) != len(automaton.variables):
        raise SchemaError("variable renaming must be injective")

    def map_label(label: object) -> object:
        if is_marker(label):
            assert isinstance(label, VariableMarker)
            return VariableMarker(
                mapping.get(label.variable, label.variable), label.is_open
            )
        if is_marker_set(label):
            assert isinstance(label, frozenset)
            return frozenset(
                VariableMarker(mapping.get(m.variable, m.variable), m.is_open)
                for m in label
            )
        return label

    return VSetAutomaton(automaton.nfa.map_labels(map_label), target)
