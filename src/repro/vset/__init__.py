"""Variable-set automata (vset-automata) and their algebra.

This package implements the paper's machinery around vset-automata:

* :mod:`.automaton` — the model itself (§2.2.3), including the
  generalized multi-operation transitions of Lemma 3.10's proof;
* :mod:`.configurations` — variable configurations ``~c_q`` (§4.1);
* :mod:`.functionality` — Theorem 2.7's functionality test;
* :mod:`.compile` — Lemma 3.4: regex formula to functional vset;
* :mod:`.operations` — Lemmas 3.8 / 3.9: projection and union;
* :mod:`.join` — Lemma 3.10: the natural-join product construction;
* :mod:`.equality` — Theorem 5.4: the runtime string-equality automaton;
* :mod:`.keyattr` — Proposition 3.6: deciding key attributes.
"""

from .analysis import assignment_automaton, contains_tuple, is_empty_on
from .automaton import VSetAutomaton
from .compile import compile_regex
from .configurations import (
    CLOSED,
    OPEN,
    WAITING,
    VariableConfiguration,
    compute_state_configurations,
)
from .equality import equality_automaton
from .functionality import check_vset_functional, is_vset_functional
from .join import join
from .keyattr import KeyAttributeWitness, is_key_attribute
from .operations import project, rename_variables, union

__all__ = [
    "VSetAutomaton",
    "assignment_automaton",
    "contains_tuple",
    "is_empty_on",
    "VariableConfiguration",
    "WAITING",
    "OPEN",
    "CLOSED",
    "compute_state_configurations",
    "compile_regex",
    "check_vset_functional",
    "is_vset_functional",
    "project",
    "union",
    "rename_variables",
    "join",
    "equality_automaton",
    "is_key_attribute",
    "KeyAttributeWitness",
]
