"""Compiling regex formulas into functional vset-automata (Lemma 3.4).

Given a functional regex formula ``alpha``, the construction rewrites
captures into marker transitions and applies the Thompson construction,
yielding in ``O(|alpha|)`` time a functional vset-automaton ``A`` with
``[[A]] = [[alpha]]`` whose state and transition counts are linear in
``|alpha|`` — the property that later drops the enumeration
preprocessing to ``O(n^2 |s|)`` for regex-derived automata.
"""

from __future__ import annotations

from ..automata.thompson import thompson_nfa
from ..errors import NotFunctionalError
from ..regex.ast import RegexFormula
from ..regex.functional import check_functional
from ..regex.parser import parse
from .automaton import VSetAutomaton

__all__ = ["compile_regex"]


def compile_regex(
    formula: RegexFormula | str, require_functional: bool = True
) -> VSetAutomaton:
    """Compile a regex formula (AST or concrete syntax) to a vset-automaton.

    Args:
        formula: a :class:`RegexFormula` or a string in the concrete
            syntax of :func:`repro.regex.parse`.
        require_functional: verify functionality first (Theorem 2.4) and
            raise when it fails.  The paper's semantics ``[[alpha]]`` is
            only defined for functional formulas, so this defaults to
            True; pass False to build the raw ref-word automaton of a
            non-functional formula (e.g. to feed the functionality test
            of Theorem 2.7 with interesting inputs).

    Returns:
        A vset-automaton with ``R(A) = R(alpha)``; functional whenever
        ``alpha`` is.

    Raises:
        NotFunctionalError: when ``require_functional`` and the formula
            fails the Theorem 2.4 test.
    """
    if isinstance(formula, str):
        formula = parse(formula)
    if require_functional:
        report = check_functional(formula)
        if not report.functional:
            assert report.reason is not None
            raise NotFunctionalError(report.reason)
    nfa = thompson_nfa(formula)
    return VSetAutomaton(nfa, formula.variables())
