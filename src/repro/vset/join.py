"""Natural join of functional vset-automata (Lemma 3.10).

The construction simulates the two operands in parallel, as in the
classic product construction for NFA intersection, with two twists the
paper introduces:

1. **Consistency.** Product states are pairs ``(q1, q2)`` whose variable
   configurations agree on the shared variables ``V1 ∩ V2``.  Because
   ref-words of the two operands may interleave their variable
   operations in different orders, synchronizing on marker *edges* would
   be wrong; configurations abstract away the order.
2. **Variable-epsilon closure.** A single product transition simulates a
   whole burst of variable operations and epsilon moves of both
   operands: from ``(p1, p2)`` there is an edge to every consistent
   ``(q1, q2)`` with ``q_i ∈ VE_i(p_i)``, labelled with the *set* of
   operations that turns the merged configuration of ``(p1, p2)`` into
   that of ``(q1, q2)`` (an empty set is an epsilon edge).  This is the
   generalized multi-operation model; use
   :meth:`VSetAutomaton.expand_multi_ops` for the strict model.

Terminal edges synchronize on characters: a product edge exists for the
(predicate) intersection of the operand labels.

The product is built lazily by BFS from ``(q0_1, q0_2)``, so only
reachable consistent pairs are materialized; with both operands trimmed
the state count is at most ``n1 * n2`` and the work is ``O(n1^2 n2^2)``
pair scans, matching the paper's ``O(v n^4)`` bound.  Two engineering
touches keep the Python constants sane: operands are epsilon-compacted
first (:meth:`VSetAutomaton.compacted`), and the VE closures are
bucketed by shared-variable configuration so the consistency check
never scans pairs that cannot match.

The compacted automaton, configuration sweep, VE closures and
terminal-edge lists are the string-independent tables of
:mod:`repro.runtime.tables`; operands fetch them through the shared
:func:`~repro.runtime.tables.tables_for` cache, so joining the same
automaton object repeatedly — a fold over many atoms, or a cached
static operand joined against per-string equality automata — computes
its closures once.
"""

from __future__ import annotations

from collections import deque
from functools import reduce
from typing import TYPE_CHECKING, Sequence

from ..alphabet import EPSILON, intersect_predicates
from ..automata.nfa import NFA
from .automaton import VSetAutomaton
from .configurations import VariableConfiguration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.tables import AutomatonTables

__all__ = ["join", "join_many", "operand_view"]


class _Operand:
    """Per-operand view of the shared tables for one product build.

    The expensive artifacts (compaction, configurations, VE closures,
    terminal edges) come from :class:`AutomatonTables`; only the
    shared-variable bucketing is specific to this join's ``shared``
    tuple, and that too is cached on the tables object so a repeated
    join with the same shared variables skips it.  The fused equality
    runtime (:mod:`repro.runtime.equality`) drives the same product
    rules off this view via :func:`operand_view`.
    """

    __slots__ = ("automaton", "configs", "ve", "ve_by_key", "terminal_edges", "shared_key")

    def __init__(self, tables: "AutomatonTables", shared: tuple[str, ...]):
        self.automaton = tables.automaton
        self.configs = tables.configs
        self.ve = tables.ve
        self.terminal_edges = tables.terminal_edges
        n = self.automaton.nfa.n_states

        def key_of(q: int) -> tuple[int, ...] | None:
            config = self.configs[q]
            if config is None:
                return None
            return tuple(config.of(v) for v in shared)

        self.shared_key = [key_of(q) for q in range(n)]
        # Bucket each VE closure by shared-variable configuration so the
        # product only pairs states that can be consistent.
        self.ve_by_key: list[dict[tuple[int, ...], tuple[int, ...]]] = []
        for q in range(n):
            buckets: dict[tuple[int, ...], list[int]] = {}
            for r in self.ve[q]:
                key = self.shared_key[r]
                if key is not None:
                    buckets.setdefault(key, []).append(r)
            self.ve_by_key.append(
                {key: tuple(states) for key, states in buckets.items()}
            )


_VIEW_STATS = None  # lazily created HitCounter (import-cycle guard)


def operand_view(tables: "AutomatonTables", shared: tuple[str, ...]) -> _Operand:
    """The (cached) operand view for ``tables`` and ``shared``.

    Views ride on ``tables.views`` — a scratch dict that is dropped on
    pickling, so worker processes rebuild their buckets lazily — and
    their hit/miss counts surface through
    :func:`repro.runtime.cache.cache_metrics` as ``"join-operand-views"``.
    The fused equality runtime calls this directly with tables it
    already holds (e.g. unpickled in a worker), bypassing the
    per-automaton-object cache.
    """
    # Imported lazily: runtime.tables sits between the vset and
    # enumeration layers and importing it at module scope would close
    # an import cycle when ``repro.runtime`` is imported first.
    from ..runtime.cache import HitCounter

    global _VIEW_STATS
    if _VIEW_STATS is None:
        # HitCounter.shared is race-free: concurrent first joins all
        # resolve to one registered counter.
        _VIEW_STATS = HitCounter.shared("join-operand-views")

    key = ("join-operand", shared)
    view = tables.views.get(key)
    if view is None:
        _VIEW_STATS.miss()
        view = _Operand(tables, shared)
        tables.views[key] = view
    else:
        _VIEW_STATS.hit()
    return view


def _operand(automaton: VSetAutomaton, shared: tuple[str, ...]) -> _Operand:
    """Operand view resolved through the shared :func:`tables_for` cache."""
    from ..runtime.tables import tables_for

    return operand_view(tables_for(automaton), shared)


def _empty_result(variables: frozenset[str]) -> VSetAutomaton:
    nfa = NFA()
    q0 = nfa.add_state()
    qf = nfa.add_state()
    nfa.set_initial(q0)
    nfa.add_final(qf)
    return VSetAutomaton(nfa, variables)


def join(a1: VSetAutomaton, a2: VSetAutomaton) -> VSetAutomaton:
    """The natural join ``A1 ⋈ A2`` as a functional vset-automaton.

    Both operands must be functional (the construction propagates their
    variable configurations and raises
    :class:`~repro.errors.NotFunctionalError` otherwise).  The result is
    functional by construction and its variable set is ``V1 ∪ V2``.
    """
    variables = a1.variables | a2.variables
    if a1.is_empty_language() or a2.is_empty_language():
        return _empty_result(variables)

    shared = tuple(sorted(a1.variables & a2.variables))
    op1 = _operand(a1, shared)
    op2 = _operand(a2, shared)

    def merged(q1: int, q2: int) -> VariableConfiguration:
        c1 = op1.configs[q1]
        c2 = op2.configs[q2]
        assert c1 is not None and c2 is not None
        return c1.merge(c2)

    product = NFA()
    start_pair = (op1.automaton.initial, op2.automaton.initial)
    final_pair = (op1.automaton.final, op2.automaton.final)
    state_of: dict[tuple[int, int], int] = {start_pair: product.add_state()}
    product.set_initial(state_of[start_pair])

    queue: deque[tuple[int, int]] = deque((start_pair,))
    while queue:
        p1, p2 = queue.popleft()
        src = state_of[(p1, p2)]
        src_config = merged(p1, p2)

        # Rule (a): burst transitions — all consistent VE-closure pairs,
        # found bucket-by-bucket on the shared-variable configuration.
        buckets2 = op2.ve_by_key[p2]
        for q1 in op1.ve[p1]:
            key = op1.shared_key[q1]
            if key is None:
                continue
            for q2 in buckets2.get(key, ()):
                if (q1, q2) == (p1, p2):
                    continue
                ops = src_config.markers_to(merged(q1, q2))
                label: object = ops if ops else EPSILON
                dst_pair = (q1, q2)
                if dst_pair not in state_of:
                    state_of[dst_pair] = product.add_state()
                    queue.append(dst_pair)
                product.add_transition(src, label, state_of[dst_pair])

        # Rule (b): terminal transitions — synchronized character reads.
        # Terminal edges never change configurations, so the destination
        # pair inherits the source pair's consistency.
        for pred1, r1 in op1.terminal_edges[p1]:
            for pred2, r2 in op2.terminal_edges[p2]:
                combined = intersect_predicates(pred1, pred2)
                if combined is None:
                    continue
                dst_pair = (r1, r2)
                if dst_pair not in state_of:
                    state_of[dst_pair] = product.add_state()
                    queue.append(dst_pair)
                product.add_transition(src, combined, state_of[dst_pair])

    if final_pair not in state_of:
        return _empty_result(variables)
    product.add_final(state_of[final_pair])
    return VSetAutomaton(product, variables).trimmed()


def join_many(automata: Sequence[VSetAutomaton]) -> VSetAutomaton:
    """Left fold of :func:`join` over ``automata``.

    Joining ``k`` automata costs ``O(n^{2k})`` in the worst case
    (Lemma 3.10's remark) — only polynomial for bounded ``k``, which is
    exactly why Theorem 3.11 fixes the number of atoms per CQ.
    """
    if not automata:
        raise ValueError("join of zero automata is undefined")
    return reduce(join, automata)
