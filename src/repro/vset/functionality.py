"""Functionality test for vset-automata (Theorem 2.7).

A vset-automaton ``A`` is functional when every ref-word in ``R(A)`` is
valid.  Freydenberger [15] showed this is testable in ``O(vm + n)`` time
by propagating variable configurations; the test used here is exactly
that propagation (via :func:`compute_state_configurations`) over the
*trimmed* automaton:

* an illegal operation on an edge (double open, close-before-open),
* two paths reaching one state with different configurations, or
* a final state whose configuration is not all-closed

each witness a ref-word of ``R(A)`` that is invalid; absence of all
three implies every accepting run produces a valid ref-word.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NotFunctionalError
from .automaton import VSetAutomaton
from .configurations import compute_state_configurations

__all__ = ["VsetFunctionalityReport", "check_vset_functional", "is_vset_functional"]


@dataclass(frozen=True, slots=True)
class VsetFunctionalityReport:
    """Outcome of the Theorem 2.7 test.

    Attributes:
        functional: overall verdict.
        reason: explanation when the automaton is not functional.
        language_empty: the ref-word language is empty, making the
            automaton vacuously functional.
    """

    functional: bool
    reason: str | None = None
    language_empty: bool = False


def check_vset_functional(automaton: VSetAutomaton) -> VsetFunctionalityReport:
    """Run the configuration-propagation functionality test."""
    trimmed = automaton.trimmed()
    if trimmed.is_empty_language():
        return VsetFunctionalityReport(True, language_empty=True)
    try:
        configs = compute_state_configurations(trimmed)
    except NotFunctionalError as err:
        return VsetFunctionalityReport(False, reason=err.reason)
    final_config = configs[trimmed.final]
    if final_config is None:
        # Unreachable final after trimming means empty language; the
        # earlier check covers it, but guard against inconsistent input.
        return VsetFunctionalityReport(True, language_empty=True)
    if not final_config.is_all_closed:
        open_vars = [
            v for v, st in final_config.items() if st != 2  # CLOSED
        ]
        return VsetFunctionalityReport(
            False,
            reason=(
                f"final state reached with variables {sorted(open_vars)} "
                "not closed"
            ),
        )
    return VsetFunctionalityReport(True)


def is_vset_functional(automaton: VSetAutomaton) -> bool:
    """Boolean shortcut for :func:`check_vset_functional`."""
    return check_vset_functional(automaton).functional
