"""Runtime string-equality automata (Theorem 5.4).

String equality cannot be compiled into a vset-automaton *statically* —
core spanners are strictly more expressive than regular ones.  The
paper's way out is to compile the equality **for the specific input
string s**: build a functional vset-automaton ``A_eq`` such that
``mu ∈ [[A_eq]](s)`` iff the selected variables span equal substrings
of ``s``, and ``[[A_eq]](s') = ∅`` for every other string ``s'``.  Then
``[[ζ^=(A)]](s) = [[A ⋈ A_eq]](s)`` by Lemma 3.10.

Construction.  For a single equality group ``(z_1, ..., z_k)``: for
every substring length ``L`` and every choice of ``k`` start positions
whose length-``L`` substrings coincide, emit a "path" automaton that
reads ``s`` verbatim and fires the group's markers at the chosen
boundaries; ``A_eq`` is the union of all paths sharing one initial and
one final state.  Choices are found by the rolling-hash bucketing of
:class:`~repro.text.substrings.SubstringIndex` (``O(N)`` per length
instead of the historical ``O(N^2)``-per-length substring dict), giving
``O(N^{k+1})`` choices and ``O(N^{k+2})`` states for one group — the
binary case ``k = 2`` matches the paper's ``O(N^3)`` choices /
``O(N^4)`` states.

This module is the *materializing* path.  The fused runtime
(:mod:`repro.runtime.equality`) evaluates ``A ⋈ A_eq`` without ever
building ``A_eq`` as an explicit automaton; this construction remains
the parity reference and the fallback for callers that need the
automaton itself.

Multiple equality selections are handled by the caller (one join per
group), which is the factoring the paper's remark about shared
variables suggests; joining all groups into one ``A_eq`` up front would
reproduce the paper's monolithic ``O(N^{3m+1})`` automaton.
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Iterable, Iterator, Sequence

from ..alphabet import EPSILON, char_pred
from ..automata.nfa import NFA
from ..errors import SchemaError
from ..spans import Span
from ..text.substrings import SubstringIndex
from .automaton import VSetAutomaton

__all__ = ["equality_automaton", "equal_span_choices", "equality_relation_rows"]


def equal_span_choices(
    s: str, k: int, index: SubstringIndex | None = None
) -> Iterator[tuple[Span, ...]]:
    """Yield every ``k``-tuple of spans of ``s`` with equal substrings.

    Tuples are grouped by (length, substring); the same span may appear
    several times inside one tuple (a span trivially equals itself —
    the selection operator compares substrings, not spans).  Buckets
    come from the rolling-hash :class:`SubstringIndex` (pass one to
    share it across groups); bucket order — and hence yield order — is
    identical to the historical substring-keyed dict.
    """
    n = len(s)
    if index is None:
        index = SubstringIndex(s)
    for length in range(0, n + 1):
        for starts in index.buckets(length).values():
            spans = [Span(p, p + length) for p in starts]
            yield from cartesian_product(spans, repeat=k)


def equality_relation_rows(
    s: str, variables: Sequence[str]
) -> Iterator[dict[str, Span]]:
    """Rows of the materialized equality relation over ``variables``.

    Used by the canonical relational strategy (Corollary 5.3): the
    relation of an equality atom has polynomially many rows —
    ``O(N^3)`` for the binary case.
    """
    k = len(variables)
    for choice in equal_span_choices(s, k):
        yield dict(zip(variables, choice))


def equality_automaton(s: str, variables: Sequence[str]) -> VSetAutomaton:
    """Build ``A_eq`` for one equality group on the concrete string ``s``.

    Args:
        s: the input string the equality is compiled against.
        variables: the equality group ``(z_1, ..., z_k)``, ``k >= 2``,
            pairwise distinct.

    Returns:
        A functional vset-automaton with ``Vars = set(variables)`` whose
        relation on ``s`` is exactly the span tuples with equal
        substrings, and whose relation on any other string is empty.
    """
    group = tuple(variables)
    if len(group) < 2:
        raise SchemaError("a string-equality group needs at least 2 variables")
    if len(set(group)) != len(group):
        raise SchemaError("string-equality variables must be distinct")

    nfa = NFA()
    initial = nfa.add_state()
    final = nfa.add_state()
    nfa.set_initial(initial)
    nfa.add_final(final)

    for choice in equal_span_choices(s, len(group)):
        _add_path(nfa, initial, final, s, dict(zip(group, choice)))
    return VSetAutomaton(nfa, group).trimmed()


def _add_path(
    nfa: NFA,
    initial: int,
    final: int,
    s: str,
    assignment: dict[str, Span],
) -> None:
    """One path reading ``s`` with markers at the assigned boundaries."""
    from ..alphabet import VariableMarker

    n = len(s)
    markers_at: dict[int, set[VariableMarker]] = {}
    for var, span in assignment.items():
        markers_at.setdefault(span.start, set()).add(VariableMarker(var, True))
        markers_at.setdefault(span.end, set()).add(VariableMarker(var, False))

    current = initial
    for gap in range(1, n + 2):
        ops = frozenset(markers_at.get(gap, ()))
        if ops:
            nxt = nfa.add_state() if gap <= n else final
            nfa.add_transition(current, ops, nxt)
            current = nxt
        elif gap > n:
            nfa.add_transition(current, EPSILON, final)
            current = final
        if gap <= n:
            nxt = nfa.add_state()
            nfa.add_transition(current, char_pred(s[gap - 1]), nxt)
            current = nxt


def equality_automata(
    s: str, groups: Iterable[Sequence[str]]
) -> list[VSetAutomaton]:
    """One :func:`equality_automaton` per group."""
    return [equality_automaton(s, group) for group in groups]
