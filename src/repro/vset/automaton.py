"""The vset-automaton model (Section 2.2.3).

A vset-automaton ``A = (V, Q, q_0, q_f, delta)`` is an epsilon-NFA over
``Sigma ∪ Gamma_V`` with a single initial and a single final state.  We
represent it as a :class:`~repro.automata.nfa.NFA` plus the variable set
``V``; transition labels follow the library conventions (epsilon,
symbol predicates, markers, marker sets).

Marker-*set* labels are the generalized model from the proof of
Lemma 3.10 ("it might be more advantageous to generalize the definition
of vset-automata to allow sets of variable operations on transitions");
:meth:`VSetAutomaton.expand_multi_ops` rewrites them into chains of
single-marker transitions to recover the strict model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..alphabet import (
    VariableMarker,
    is_epsilon,
    is_marker,
    is_marker_set,
    is_symbol,
    marker_sort_key,
)
from ..automata.nfa import NFA
from ..automata.ops import simulate, trim
from ..errors import SchemaError
from ..refwords import RefSymbol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spans import SpanRelation

__all__ = ["VSetAutomaton"]


class VSetAutomaton:
    """A vset-automaton: an NFA over the extended alphabet plus ``V``.

    Attributes:
        nfa: the underlying automaton; ``nfa.initial`` is ``q_0`` and
            the single element of ``nfa.finals`` is ``q_f``.
        variables: the variable set ``V`` (``Vars(A)``).
    """

    __slots__ = ("nfa", "variables", "__weakref__")

    def __init__(self, nfa: NFA, variables: Iterable[str]):
        if nfa.initial is None:
            raise ValueError("vset-automaton needs an initial state")
        if len(nfa.finals) != 1:
            raise ValueError(
                f"vset-automaton needs exactly one final state, "
                f"got {len(nfa.finals)}"
            )
        self.nfa = nfa
        self.variables = frozenset(variables)
        self._validate_labels()

    def _validate_labels(self) -> None:
        for _src, label, _dst in self.nfa.iter_edges():
            if is_epsilon(label) or is_symbol(label):
                continue
            if is_marker(label):
                markers: Sequence[VariableMarker] = (label,)
            elif is_marker_set(label):
                markers = tuple(label)
            else:
                raise SchemaError(f"unsupported transition label {label!r}")
            for marker in markers:
                if marker.variable not in self.variables:
                    raise SchemaError(
                        f"transition uses variable {marker.variable!r} "
                        "outside the automaton's variable set"
                    )

    # -- Basic accessors -----------------------------------------------------
    @property
    def initial(self) -> int:
        assert self.nfa.initial is not None
        return self.nfa.initial

    @property
    def final(self) -> int:
        return next(iter(self.nfa.finals))

    @property
    def n_states(self) -> int:
        return self.nfa.n_states

    @property
    def n_transitions(self) -> int:
        return self.nfa.n_transitions

    # -- Structural operations ---------------------------------------------------
    def trimmed(self) -> "VSetAutomaton":
        """Drop states not on an initial-to-final path.

        If the ref-word language is empty the result keeps a fresh,
        unreachable final state so the single-final invariant holds.
        """
        trimmed_nfa, _mapping = trim(self.nfa)
        if not trimmed_nfa.finals:
            sink = trimmed_nfa.add_state()
            trimmed_nfa.add_final(sink)
        return VSetAutomaton(trimmed_nfa, self.variables)

    def is_empty_language(self) -> bool:
        """True when ``R(A)`` is empty (no initial-to-final path)."""
        trimmed_nfa, _ = trim(self.nfa)
        return not trimmed_nfa.finals

    def compacted(self) -> "VSetAutomaton":
        """Remove pure-epsilon transitions (language-preserving).

        Thompson-constructed automata are epsilon-rich, which inflates
        the variable-epsilon closures that the join construction
        (Lemma 3.10) and the evaluation-graph construction (Theorem 3.3)
        scan.  Compaction rewires every non-epsilon edge to start from
        each state that reaches its source through pure-epsilon moves,
        then drops states with no incoming non-epsilon edge.  Marker and
        marker-set edges are untouched, so functionality and ``R(A)``
        are preserved; the only epsilon edges left are single hops into
        the final state (keeping the single-final invariant).
        """
        from ..automata.ops import closure as _closure

        trimmed = self.trimmed()
        nfa = trimmed.nfa
        eps = [
            _closure(nfa, (q,), is_epsilon) for q in range(nfa.n_states)
        ]
        final = trimmed.final
        initial = trimmed.initial

        new_edges: dict[int, list[tuple[object, int]]] = {}
        accepts_via_eps: set[int] = set()
        for p in range(nfa.n_states):
            edges: list[tuple[object, int]] = []
            seen: set[tuple[object, int]] = set()
            for q in eps[p]:
                for label, r in nfa.transitions[q]:
                    if is_epsilon(label):
                        continue
                    if (label, r) not in seen:
                        seen.add((label, r))
                        edges.append((label, r))
            new_edges[p] = edges
            if final in eps[p]:
                accepts_via_eps.add(p)

        keep = {initial, final}
        for edges in new_edges.values():
            keep.update(r for _, r in edges)

        from ..automata.nfa import NFA as _NFA
        from ..alphabet import EPSILON as _EPS

        out = _NFA()
        mapping = {old: out.add_state() for old in sorted(keep)}
        out.set_initial(mapping[initial])
        out.add_final(mapping[final])
        for old in sorted(keep):
            for label, r in new_edges[old]:
                out.add_transition(mapping[old], label, mapping[r])
            if old in accepts_via_eps and old != final:
                out.add_transition(mapping[old], _EPS, mapping[final])
        return VSetAutomaton(out, self.variables).trimmed()

    def expand_multi_ops(self) -> "VSetAutomaton":
        """Rewrite marker-set transitions into single-marker chains.

        Recovers the strict model of Section 2.2.3.  Each transition
        labelled with a set ``S`` of operations becomes ``|S|``
        consecutive transitions through ``|S| - 1`` fresh states; an
        empty set becomes an epsilon transition.  Opens are serialized
        before closes per variable, alphabetically otherwise — any
        serialization yields an equivalent automaton because only the
        position between terminals matters for the tuple (§4.1).
        """
        from ..alphabet import EPSILON

        out = NFA()
        out.add_states(self.nfa.n_states)
        out.set_initial(self.initial)
        out.add_final(self.final)
        for src, label, dst in self.nfa.iter_edges():
            if not is_marker_set(label):
                out.add_transition(src, label, dst)
                continue
            markers = sorted(label, key=marker_sort_key)
            opens = [m for m in markers if m.is_open]
            closes = [m for m in markers if not m.is_open]
            chain = opens + closes
            if not chain:
                out.add_transition(src, EPSILON, dst)
                continue
            current = src
            for marker in chain[:-1]:
                fresh = out.add_state()
                out.add_transition(current, marker, fresh)
                current = fresh
            out.add_transition(current, chain[-1], dst)
        return VSetAutomaton(out, self.variables)

    # -- Semantics ---------------------------------------------------------------
    def accepts_refword(self, refword: Sequence[RefSymbol]) -> bool:
        """Membership of a concrete ref-word in ``R(A)`` (simulation).

        Marker-set transitions are matched against maximal runs of
        markers only through :meth:`expand_multi_ops`; call that first
        if the automaton uses set labels.
        """
        return simulate(self.nfa, refword)

    def evaluate(self, s: str) -> "SpanRelation":
        """Materialize ``[[A]](s)`` via the Theorem 3.3 enumerator.

        Convenience wrapper; streaming access lives in
        :func:`repro.enumeration.enumerate_tuples`.
        """
        from ..enumeration import enumerate_tuples
        from ..spans import SpanRelation

        return SpanRelation(self.variables, enumerate_tuples(self, s))

    # -- Introspection ---------------------------------------------------------
    def to_dot(self, state_labels: dict[int, str] | None = None) -> str:
        """GraphViz rendering (used by examples and the F1 regeneration)."""
        lines = [
            "digraph vset {",
            "  rankdir=LR;",
            '  node [shape=circle, fontsize=11];',
            f'  {self.final} [shape=doublecircle];',
            f'  __start [shape=point]; __start -> {self.initial};',
        ]
        if state_labels:
            for state, text in state_labels.items():
                lines.append(f'  {state} [label="{text}"];')
        for src, label, dst in self.nfa.iter_edges():
            if is_epsilon(label):
                text = "ε"
            elif is_marker_set(label):
                text = "{" + ",".join(
                    str(m) for m in sorted(label, key=marker_sort_key)
                ) + "}"
            else:
                text = str(label)
            text = text.replace('"', '\\"')
            lines.append(f'  {src} -> {dst} [label="{text}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"VSetAutomaton(vars={sorted(self.variables)}, "
            f"states={self.n_states}, transitions={self.n_transitions})"
        )
