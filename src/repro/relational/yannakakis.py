"""Yannakakis' algorithm for acyclic CQs (polynomial total time) [42].

Given materialized atom relations and a GYO join forest, evaluation runs
in three sweeps:

1. bottom-up semijoins (leaves to root) — after this pass the root is
   non-empty iff the query is satisfiable, giving the Boolean fast path;
2. top-down semijoins (root to leaves) — the *full reducer*: every
   remaining row participates in some answer;
3. bottom-up joins with eager projection — children fold into their
   parents, keeping only the parent's attributes plus output attributes,
   so every intermediate stays polynomial in input + output.

This is the tractable-class engine behind Theorem 3.5 / Corollary 5.3.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import SchemaError
from .algebra import natural_join, project, semijoin
from .hypergraph import GYOResult
from .relation import Relation

__all__ = ["evaluate_acyclic"]


def evaluate_acyclic(
    relations: Mapping[str, Relation],
    gyo: GYOResult,
    output: Iterable[str],
) -> Relation:
    """Evaluate an acyclic CQ via Yannakakis' algorithm.

    Args:
        relations: materialized relation per atom name.
        gyo: the join forest from :meth:`Hypergraph.gyo`; must be
            acyclic and cover exactly the atoms of ``relations``.
        output: the head (projection) attributes.

    Returns:
        The output relation over ``output``.

    Raises:
        SchemaError: on inconsistent inputs (non-acyclic GYO, missing
            atoms, head attributes not covered by any atom).
    """
    if not gyo.acyclic:
        raise SchemaError("evaluate_acyclic requires an acyclic join forest")
    order = list(gyo.elimination_order)
    if set(order) != set(relations):
        raise SchemaError(
            "join forest and relation set disagree: "
            f"{sorted(order)} vs {sorted(relations)}"
        )
    out_attrs = tuple(output)
    all_attrs = {a for rel in relations.values() for a in rel.schema}
    missing = set(out_attrs) - all_attrs
    if missing:
        raise SchemaError(f"output attributes {sorted(missing)} not produced")

    current: dict[str, Relation] = dict(relations)

    # Pass 1: bottom-up semijoin reduction.
    for name in order:
        parent = gyo.parent.get(name)
        if parent is not None:
            current[parent] = semijoin(current[parent], current[name])

    root = order[-1]
    if not out_attrs:
        # Boolean query: satisfiable iff the reduced root is non-empty.
        return Relation((), [()] if current[root] else [])

    # Pass 2: top-down semijoin (full reduction).
    for name in reversed(order):
        parent = gyo.parent.get(name)
        if parent is not None:
            current[name] = semijoin(current[name], current[parent])

    # Pass 3: bottom-up joins with eager projection.
    out_set = set(out_attrs)
    accumulated: dict[str, Relation] = dict(current)
    for name in order:
        parent = gyo.parent.get(name)
        if parent is None:
            continue
        joined = natural_join(accumulated[parent], accumulated[name])
        keep = [
            a
            for a in joined.schema
            if a in out_set or a in current[parent].schema
        ]
        accumulated[parent] = project(joined, keep)
    return project(accumulated[root], out_attrs)
