"""Relational-algebra operators over :class:`Relation`.

Natural join is a hash join on the shared attributes; semijoin reuses
its bucketing.  All operators return new relations (set semantics), and
all are linear-ish in input + output — the properties Yannakakis'
polynomial-total-time guarantee needs.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from ..errors import SchemaError
from .relation import Relation, Row

__all__ = [
    "natural_join",
    "project",
    "union",
    "select",
    "semijoin",
    "difference",
    "rename",
    "cartesian_width",
]

Value = Hashable


def _shared_key(schema: tuple[str, ...], shared: tuple[str, ...]) -> Callable[[Row], tuple]:
    indices = [schema.index(a) for a in shared]
    return lambda row: tuple(row[i] for i in indices)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Hash natural join on the shared attributes.

    Disjoint schemas degrade to a Cartesian product, as in the spanner
    algebra's join of variable-disjoint spanners.
    """
    shared = tuple(a for a in left.schema if a in right.schema)
    out_schema = left.schema + tuple(
        a for a in right.schema if a not in left.schema
    )
    right_extra = [
        right.schema.index(a) for a in right.schema if a not in left.schema
    ]
    left_key = _shared_key(left.schema, shared)
    right_key = _shared_key(right.schema, shared)
    buckets: dict[tuple, list[Row]] = {}
    for row in right.rows:
        buckets.setdefault(right_key(row), []).append(row)
    out_rows = []
    for row in left.rows:
        for other in buckets.get(left_key(row), ()):
            out_rows.append(row + tuple(other[i] for i in right_extra))
    return Relation(out_schema, out_rows)


def semijoin(left: Relation, right: Relation) -> Relation:
    """``left ⋉ right``: left rows with a join partner in right."""
    shared = tuple(a for a in left.schema if a in right.schema)
    if not shared:
        return left if right.rows else Relation(left.schema)
    right_key = _shared_key(right.schema, shared)
    keys = {right_key(row) for row in right.rows}
    left_key = _shared_key(left.schema, shared)
    return Relation(
        left.schema, (row for row in left.rows if left_key(row) in keys)
    )


def project(relation: Relation, attributes: Iterable[str]) -> Relation:
    """Projection with duplicate elimination (set semantics)."""
    attrs = tuple(attributes)
    missing = set(attrs) - set(relation.schema)
    if missing:
        raise SchemaError(f"cannot project onto unknown attributes {sorted(missing)}")
    indices = [relation.schema.index(a) for a in attrs]
    return Relation(attrs, (tuple(row[i] for i in indices) for row in relation.rows))


def union(left: Relation, right: Relation) -> Relation:
    """Union; aligns column order when the attribute sets match."""
    if set(left.schema) != set(right.schema):
        raise SchemaError(
            f"union over different schemas: {left.schema} vs {right.schema}"
        )
    if left.schema == right.schema:
        return Relation(left.schema, left.rows | right.rows)
    perm = [right.schema.index(a) for a in left.schema]
    reordered = {tuple(row[i] for i in perm) for row in right.rows}
    return Relation(left.schema, left.rows | reordered)


def difference(left: Relation, right: Relation) -> Relation:
    if set(left.schema) != set(right.schema):
        raise SchemaError("difference over different schemas")
    if left.schema == right.schema:
        return Relation(left.schema, left.rows - right.rows)
    perm = [right.schema.index(a) for a in left.schema]
    reordered = {tuple(row[i] for i in perm) for row in right.rows}
    return Relation(left.schema, left.rows - reordered)


def select(
    relation: Relation, predicate: Callable[[Mapping[str, Value]], bool]
) -> Relation:
    """Row filter; the predicate sees an attribute dictionary."""
    return Relation(
        relation.schema,
        (
            row
            for row in relation.rows
            if predicate(dict(zip(relation.schema, row)))
        ),
    )


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """Rename attributes per ``mapping`` (identity elsewhere)."""
    new_schema = tuple(mapping.get(a, a) for a in relation.schema)
    return Relation(new_schema, relation.rows)


def cartesian_width(relations: Iterable[Relation]) -> int:
    """Product of cardinalities — the trivial upper bound used by the
    planner's worst-case estimates."""
    total = 1
    for relation in relations:
        total *= max(len(relation), 1)
    return total
