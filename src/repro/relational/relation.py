"""Set-semantics relations over arbitrary hashable values.

The canonical strategy stores span relations here (values are
:class:`~repro.spans.Span` objects), but the engine is value-agnostic —
the reductions' cross-checks also use it with plain strings.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from ..errors import SchemaError
from ..spans import SpanRelation, SpanTuple

__all__ = ["Relation"]

Value = Hashable
Row = tuple[Value, ...]


class Relation:
    """An immutable named relation: ordered schema + set of rows.

    Attributes:
        schema: attribute names, in column order.
        rows: a frozenset of value tuples aligned with ``schema``.
    """

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Iterable[str], rows: Iterable[Row] = ()):
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise SchemaError(f"duplicate attributes in schema {self.schema}")
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != len(self.schema):
                raise SchemaError(
                    f"row of width {len(row)} does not fit schema "
                    f"{self.schema}"
                )
        self.rows: frozenset[Row] = frozen

    # -- Constructors -----------------------------------------------------
    @classmethod
    def from_mappings(
        cls, schema: Iterable[str], mappings: Iterable[Mapping[str, Value]]
    ) -> "Relation":
        schema_t = tuple(schema)
        return cls(schema_t, (tuple(m[a] for a in schema_t) for m in mappings))

    @classmethod
    def from_span_relation(cls, relation: SpanRelation) -> "Relation":
        schema = tuple(sorted(relation.variables))
        return cls(schema, (tuple(t[v] for v in schema) for t in relation))

    def to_span_relation(self) -> SpanRelation:
        return SpanRelation(
            self.schema,
            (SpanTuple(dict(zip(self.schema, row))) for row in self.rows),
        )

    # -- Container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema == other.schema:
            return self.rows == other.rows
        if set(self.schema) != set(other.schema):
            return False
        # Same attributes, different column order: compare reordered.
        perm = [other.schema.index(a) for a in self.schema]
        return self.rows == {tuple(row[i] for i in perm) for row in other.rows}

    def __hash__(self) -> int:
        return hash((frozenset(self.schema), len(self.rows)))

    # -- Row access ------------------------------------------------------------
    def mappings(self) -> Iterator[dict[str, Value]]:
        """Rows as attribute dictionaries."""
        for row in self.rows:
            yield dict(zip(self.schema, row))

    def column(self, attribute: str) -> set[Value]:
        idx = self.schema.index(attribute)
        return {row[idx] for row in self.rows}

    def sorted_rows(self) -> list[Row]:
        """Deterministic row order (for printing and tests)."""
        return sorted(self.rows, key=repr)

    def __repr__(self) -> str:
        return f"Relation({self.schema}, {len(self.rows)} rows)"
