"""The relational-database substrate (Section 2.3, Section 3.3.2).

The canonical relational strategy evaluates a regex (U)CQ by
materializing each atom's span relation and then running *relational*
query evaluation.  This package supplies that engine from scratch:

* :mod:`.relation` — named relations with set semantics;
* :mod:`.algebra` — joins, projections, unions, selections, semijoins;
* :mod:`.hypergraph` — query hypergraphs, GYO reduction
  (alpha-acyclicity + join trees), the D'Atri–Moscarini reduction
  (gamma-acyclicity) and Berge-acyclicity;
* :mod:`.yannakakis` — Yannakakis' algorithm for acyclic CQs [42];
* :mod:`.generic` — greedy join ordering for cyclic CQs.
"""

from .algebra import (
    difference,
    natural_join,
    project,
    rename,
    select,
    semijoin,
    union,
)
from .generic import evaluate_generic
from .hypergraph import GYOResult, Hypergraph
from .relation import Relation
from .yannakakis import evaluate_acyclic

__all__ = [
    "Relation",
    "natural_join",
    "project",
    "union",
    "select",
    "semijoin",
    "difference",
    "rename",
    "Hypergraph",
    "GYOResult",
    "evaluate_acyclic",
    "evaluate_generic",
]
