"""Generic (cyclic-CQ) evaluation with greedy join ordering.

The fallback engine for regex CQs whose hypergraph is not acyclic
(where no polynomial guarantee exists — Theorem 3.1 makes the general
case NP-hard).  The heuristics are standard: start from the smallest
relation, prefer joins that share attributes, and project intermediate
results onto the attributes still needed (output attributes plus
attributes of relations not yet joined).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import SchemaError
from .algebra import natural_join, project
from .relation import Relation

__all__ = ["evaluate_generic"]


def evaluate_generic(
    relations: Mapping[str, Relation], output: Iterable[str]
) -> Relation:
    """Join all relations and project onto ``output``.

    Args:
        relations: materialized relation per atom name (at least one).
        output: head attributes.

    Returns:
        The output relation.
    """
    if not relations:
        raise SchemaError("cannot evaluate a query with no atoms")
    out_attrs = tuple(output)
    remaining = dict(relations)

    # Start from the smallest relation (cheap, effective heuristic).
    first = min(remaining, key=lambda name: len(remaining[name]))
    result = remaining.pop(first)

    while remaining:
        result_attrs = set(result.schema)

        def connectedness(name: str) -> tuple[int, int]:
            rel = remaining[name]
            shared = len(result_attrs & set(rel.schema))
            # Most shared attributes first; among ties, smallest relation.
            return (-shared, len(rel))

        chosen = min(remaining, key=connectedness)
        rel = remaining.pop(chosen)
        result = natural_join(result, rel)
        still_needed = set(out_attrs)
        for other in remaining.values():
            still_needed |= set(other.schema)
        keep = [a for a in result.schema if a in still_needed]
        result = project(result, keep)

    return project(result, out_attrs)
