"""Query hypergraphs and acyclicity tests (§2.3, Theorem 3.2).

A CQ's hypergraph has the query variables as vertices and one hyperedge
per atom (the atom's variable set).  Degrees of acyclicity [11]:

* **alpha-acyclic** — the GYO reduction (repeatedly remove *isolated
  vertices* that occur in one edge only, and *ears*: edges contained in
  another edge) empties the hypergraph.  The removal order yields a
  join tree, which Yannakakis' algorithm consumes.
* **gamma-acyclic** — strictly stronger.  We test it with the
  D'Atri–Moscarini reduction: repeatedly (1) delete a vertex occurring
  in at most one edge, (2) delete one of two vertices occurring in
  exactly the same edges, (3) delete an edge with at most one vertex,
  (4) delete one of two equal edges; gamma-acyclic iff the hypergraph
  empties.  (Theorem 3.2's hardness holds *even* for gamma-acyclic
  regex CQs, which is why the library surfaces this test.)
* **Berge-acyclic** — strongest: the bipartite incidence graph is a
  forest; included for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["Hypergraph", "GYOResult"]


@dataclass(frozen=True, slots=True)
class GYOResult:
    """Outcome of the GYO reduction.

    Attributes:
        acyclic: True when the reduction emptied the hypergraph.
        parent: join-forest structure — maps each atom name to the atom
            it was folded into, or ``None`` for roots.  Only meaningful
            when ``acyclic``.
        elimination_order: atom names in ear-removal order (leaves
            first); the reverse is a top-down join-tree order.
    """

    acyclic: bool
    parent: Mapping[str, str | None]
    elimination_order: tuple[str, ...]


class Hypergraph:
    """A named hypergraph: atom name -> set of variables."""

    __slots__ = ("edges",)

    def __init__(self, edges: Mapping[str, Iterable[str]]):
        self.edges: dict[str, frozenset[str]] = {
            name: frozenset(vars_) for name, vars_ in edges.items()
        }

    @property
    def vertices(self) -> frozenset[str]:
        out: set[str] = set()
        for vars_ in self.edges.values():
            out |= vars_
        return frozenset(out)

    # -- alpha-acyclicity ----------------------------------------------------
    def gyo(self) -> GYOResult:
        """Run the GYO reduction; returns acyclicity + join forest."""
        remaining: dict[str, set[str]] = {
            name: set(vars_) for name, vars_ in self.edges.items()
        }
        parent: dict[str, str | None] = {}
        order: list[str] = []

        changed = True
        while changed and remaining:
            changed = False
            # Rule 1: drop vertices occurring in exactly one edge.
            occurrences: dict[str, list[str]] = {}
            for name, vars_ in remaining.items():
                for v in vars_:
                    occurrences.setdefault(v, []).append(name)
            for v, homes in occurrences.items():
                if len(homes) == 1:
                    remaining[homes[0]].discard(v)
                    changed = True
            # Rule 2: drop an edge contained in another edge.
            names = sorted(remaining)
            removed: set[str] = set()
            for e in names:
                if e in removed:
                    continue
                for f in names:
                    if f == e or f in removed:
                        continue
                    if remaining[e] <= remaining[f]:
                        parent[e] = f
                        order.append(e)
                        removed.add(e)
                        changed = True
                        break
            for e in removed:
                del remaining[e]
            # An empty edge with no sibling left is a root.
            if len(remaining) == 1:
                last = next(iter(remaining))
                if not remaining[last] or all(
                    len(occurrences.get(v, ())) <= 1 for v in remaining[last]
                ):
                    parent[last] = None
                    order.append(last)
                    del remaining[last]
                    changed = True

        acyclic = not remaining
        if not acyclic:
            # Keep partial information for diagnostics but flag failure.
            for name in remaining:
                parent.setdefault(name, None)
        return GYOResult(acyclic, parent, tuple(order))

    def is_alpha_acyclic(self) -> bool:
        return self.gyo().acyclic

    # -- gamma-acyclicity -------------------------------------------------------
    def is_gamma_acyclic(self) -> bool:
        """D'Atri–Moscarini reduction for gamma-acyclicity."""
        edges: dict[str, set[str]] = {
            name: set(vars_) for name, vars_ in self.edges.items()
        }
        changed = True
        while changed and edges:
            changed = False
            occurrences: dict[str, set[str]] = {}
            for name, vars_ in edges.items():
                for v in vars_:
                    occurrences.setdefault(v, set()).add(name)
            # (1) vertex in at most one edge.
            for v, homes in occurrences.items():
                if len(homes) <= 1:
                    for name in homes:
                        edges[name].discard(v)
                    changed = True
            if changed:
                continue
            # (2) two vertices with identical edge sets: drop one.
            by_homes: dict[frozenset[str], str] = {}
            for v, homes in occurrences.items():
                key = frozenset(homes)
                if key in by_homes:
                    for name in homes:
                        edges[name].discard(v)
                    changed = True
                    break
                by_homes[key] = v
            if changed:
                continue
            # (3) edge with at most one vertex.
            for name in list(edges):
                if len(edges[name]) <= 1:
                    del edges[name]
                    changed = True
                    break
            if changed:
                continue
            # (4) two equal edges: drop one.
            seen: dict[frozenset[str], str] = {}
            for name in sorted(edges):
                key = frozenset(edges[name])
                if key in seen:
                    del edges[name]
                    changed = True
                    break
                seen[key] = name
        return not edges

    # -- Berge-acyclicity -------------------------------------------------------
    def is_berge_acyclic(self) -> bool:
        """True when the incidence bipartite graph is a forest."""
        # Union-find over vertices ∪ edges; a repeated union closes a cycle.
        parent: dict[object, object] = {}

        def find(x: object) -> object:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for name, vars_ in self.edges.items():
            for v in vars_:
                root_a = find(("edge", name))
                root_b = find(("vertex", v))
                if root_a == root_b:
                    return False
                parent[root_a] = root_b
        return True

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}({','.join(sorted(vars_))})"
            for name, vars_ in sorted(self.edges.items())
        )
        return f"Hypergraph({inner})"
