"""Generic automata substrate.

This package contains the plain automata machinery the paper's
constructions stand on: an epsilon-NFA container (:mod:`.nfa`),
closure/trim/simulation utilities (:mod:`.ops`), the Thompson
construction (:mod:`.thompson`), and fixed-length word enumeration in
radix order (:mod:`.leveled`, :mod:`.crosssection`) — our rendition of
the Ackerman–Shallit cross-section enumeration [2] that Section 4.2
tailors into the tuple enumerator.
"""

from .nfa import NFA
from .ops import (
    closure,
    coreachable_states,
    reachable_states,
    simulate,
    trim,
)
from .leveled import LeveledNFA, RadixEnumerator
from .crosssection import cross_section, enumerate_fixed_length
from .thompson import thompson_nfa

__all__ = [
    "NFA",
    "closure",
    "reachable_states",
    "coreachable_states",
    "trim",
    "simulate",
    "LeveledNFA",
    "RadixEnumerator",
    "cross_section",
    "enumerate_fixed_length",
    "thompson_nfa",
]
