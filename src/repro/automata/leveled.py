"""Leveled NFAs and radix-order word enumeration (Section 4.2, Algs 1–3).

The paper's enumeration algorithm builds, from a functional
vset-automaton ``A`` and a string ``s``, a *leveled* NFA ``A_G`` whose
words all have length ``|s| + 1``; it then enumerates ``L(A_G)`` in
radix order without repetitions using a state stack and precomputed
``minLetter`` / ``nextLetter`` functions — a tailored version of the
Ackerman–Shallit cross-section enumeration [2].

This module implements that machinery generically:

* :class:`LeveledNFA` — a DAG automaton with one virtual root and ``L``
  letter slots; every accepted word has exactly ``L`` letters.
* :class:`RadixEnumerator` — Algorithms 1 (enumerate), 2 (minString)
  and 3 (nextString) of the paper, with the per-answer delay bounded by
  ``O(L * n^2)`` for ``n`` states per level.

Both the tuple enumerator (:mod:`repro.enumeration.graph`) and the
test-oracle cross-section (:mod:`repro.automata.crosssection`) build a
:class:`LeveledNFA` and hand it to :class:`RadixEnumerator`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Hashable, Iterator

__all__ = ["LeveledNFA", "RadixEnumerator"]

Label = Hashable


class LeveledNFA:
    """A DAG automaton whose accepted words all have the same length.

    Nodes are dense integers.  Node 0 is the virtual root ("level 0");
    a node at level ``i`` is reached after consuming ``i`` letters.
    Accepting nodes live at level ``L``.  Edges may only go from level
    ``i`` to level ``i + 1``.

    Use :meth:`add_node` / :meth:`add_edge` to build, then
    :meth:`prune` once before enumeration: pruning keeps exactly the
    nodes that lie on a root-to-accepting path, the precondition the
    radix algorithms rely on (every edge can be completed to a word).
    """

    __slots__ = ("n_slots", "level_of", "out_edges", "accepting", "_pruned")

    ROOT = 0

    def __init__(self, n_slots: int):
        if n_slots < 0:
            raise ValueError("number of letter slots must be >= 0")
        self.n_slots = n_slots
        self.level_of: list[int] = [0]
        self.out_edges: list[list[tuple[Label, int]]] = [[]]
        self.accepting: set[int] = set()
        self._pruned = False
        if n_slots == 0:
            # A zero-slot automaton accepts the empty word iff the root
            # itself is accepting; callers mark it explicitly.
            pass

    # -- Construction -----------------------------------------------------
    def add_node(self, level: int) -> int:
        if not 1 <= level <= self.n_slots:
            raise ValueError(f"level {level} out of range 1..{self.n_slots}")
        self.level_of.append(level)
        self.out_edges.append([])
        return len(self.level_of) - 1

    def add_edge(self, src: int, label: Label, dst: int) -> None:
        if self.level_of[dst] != self.level_of[src] + 1:
            raise ValueError(
                f"edge must advance one level: {self.level_of[src]} -> "
                f"{self.level_of[dst]}"
            )
        self.out_edges[src].append((label, dst))

    def mark_accepting(self, node: int) -> None:
        expected = self.n_slots
        if self.level_of[node] != expected:
            raise ValueError(
                f"accepting nodes must be at level {expected}, "
                f"got level {self.level_of[node]}"
            )
        self.accepting.add(node)

    # -- Inspection -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.level_of)

    @property
    def n_edges(self) -> int:
        return sum(len(edges) for edges in self.out_edges)

    @property
    def is_empty(self) -> bool:
        """True when no word is accepted (valid only after prune())."""
        if not self._pruned:
            raise RuntimeError("call prune() before is_empty")
        if self.n_slots == 0:
            return LeveledNFA.ROOT not in self.accepting
        return not self.out_edges[LeveledNFA.ROOT]

    # -- Pruning -----------------------------------------------------------
    def prune(self) -> None:
        """Remove nodes/edges not on a root-to-accepting path (in place)."""
        useful = set(self.accepting)
        # Backward sweep: a node is useful if some edge reaches a useful
        # node.  Nodes are created level by level in practice, but we do
        # not rely on id order — bucket by level and walk levels top-down.
        # Bucket only levels that hold nodes: a sweep that died early
        # (non-matching document) has O(1) nodes over O(|s|) slots, and
        # pruning must cost the former, not the latter.
        by_level: dict[int, list[int]] = {}
        for node, level in enumerate(self.level_of):
            by_level.setdefault(level, []).append(node)
        for level in sorted(by_level, reverse=True):
            for node in by_level[level]:
                if node in useful:
                    continue
                if any(dst in useful for _, dst in self.out_edges[node]):
                    useful.add(node)
        for node in range(self.n_nodes):
            if node in useful:
                self.out_edges[node] = [
                    (label, dst)
                    for label, dst in self.out_edges[node]
                    if dst in useful
                ]
            else:
                self.out_edges[node] = []
        self._pruned = True

    def live_nodes(self) -> set[int]:
        """Nodes on a root-to-accepting path (call after prune()).

        ``prune`` drops edges of dead nodes but keeps their records (so
        node ids stay stable); introspection and rendering should use
        this set rather than ``range(n_nodes)``.
        """
        if not self._pruned:
            self.prune()
        live = {LeveledNFA.ROOT} if (
            self.n_slots == 0 and LeveledNFA.ROOT in self.accepting
        ) or self.out_edges[LeveledNFA.ROOT] else set()
        frontier = [LeveledNFA.ROOT] if live else []
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            for _label, dst in self.out_edges[node]:
                if dst not in seen:
                    seen.add(dst)
                    frontier.append(dst)
        return seen

    def count_words(self, cap: int | None = None) -> int:
        """Exact number of *distinct* accepted words.

        Distinct words, not paths: the DAG is determinized on the fly by
        a powerset sweep per level.  ``cap`` aborts early (returning
        ``cap``) to keep tests bounded on adversarial instances.
        """
        if not self._pruned:
            self.prune()
        if self.n_slots == 0:
            return 1 if LeveledNFA.ROOT in self.accepting else 0
        if self.is_empty:
            return 0
        frontier: dict[frozenset[int], int] = {frozenset((LeveledNFA.ROOT,)): 1}
        for _level in range(self.n_slots):
            nxt: dict[frozenset[int], int] = {}
            for states, count in frontier.items():
                by_label: dict[Label, set[int]] = {}
                for q in states:
                    for label, dst in self.out_edges[q]:
                        by_label.setdefault(label, set()).add(dst)
                for dests in by_label.values():
                    key = frozenset(dests)
                    nxt[key] = nxt.get(key, 0) + count
            frontier = nxt
            if cap is not None and sum(frontier.values()) >= cap:
                return cap
        return sum(frontier.values())


class RadixEnumerator:
    """Enumerate the words of a pruned :class:`LeveledNFA` in radix order.

    This is the paper's Algorithms 1–3.  ``label_key`` defines the total
    order ``<_K`` on the letter alphabet; words come out in the induced
    radix order, each exactly once.

    The per-word delay is ``O(L * W)`` where ``W`` bounds the work per
    level: finding the minimal next letter over the current state set
    and building the successor state set — ``O(n^2)`` for ``n`` states
    per level, matching Theorem 3.3's ``O(n^2 |s|)`` delay.
    """

    def __init__(self, leveled: LeveledNFA, label_key: Callable[[Label], object]):
        if not leveled._pruned:
            leveled.prune()
        self.leveled = leveled
        self.label_key = label_key
        # Per node: sorted distinct labels, their precomputed sort keys,
        # and label -> destinations — materialized *lazily*, because the
        # enumeration only ever inspects nodes that appear in some
        # reached state set (often a fraction of the graph when the
        # answer count is small).  ``label_key`` runs only inside
        # :meth:`_prepare`; the hot loops work on cached keys, and the
        # current word carries its keys alongside its letters, so
        # nextString never re-keys a letter it already placed.
        n = leveled.n_nodes
        self._labels: list[list[Label] | None] = [None] * n
        self._keys: list[list[object] | None] = [None] * n
        self._dests: list[dict[Label, tuple[int, ...]] | None] = [None] * n
        self._min_label: list[Label | None] = [None] * n
        self._min_key: list[object | None] = [None] * n
        self._ready = bytearray(n)

    def _prepare(self, node: int) -> None:
        """Build the sorted-label tables for one node on first touch."""
        self._ready[node] = 1
        edges = self.leveled.out_edges[node]
        if len(edges) == 1:
            # Fast path: most evaluation-graph nodes have a single
            # outgoing edge — no dict or sort needed.
            label, dst = edges[0]
            key = self.label_key(label)
            self._labels[node] = [label]
            self._keys[node] = [key]
            self._dests[node] = {label: (dst,)}
            self._min_label[node] = label
            self._min_key[node] = key
            return
        by_label: dict[Label, list[int]] = {}
        for label, dst in edges:
            by_label.setdefault(label, []).append(dst)
        ordered = sorted(by_label, key=self.label_key)
        keys = [self.label_key(lab) for lab in ordered]
        self._labels[node] = ordered
        self._keys[node] = keys
        self._dests[node] = {lab: tuple(ds) for lab, ds in by_label.items()}
        self._min_label[node] = ordered[0] if ordered else None
        self._min_key[node] = keys[0] if keys else None

    # -- minLetter / nextLetter (precomputed per state) ---------------------
    def _min_letter(self, node: int) -> Label | None:
        if not self._ready[node]:
            self._prepare(node)
        return self._min_label[node]

    def _next_letter(self, node: int, label: Label) -> Label | None:
        """Smallest letter strictly greater than ``label`` leaving ``node``."""
        if not self._ready[node]:
            self._prepare(node)
        keys = self._keys[node]
        idx = bisect_right(keys, self.label_key(label))
        if idx < len(keys):
            return self._labels[node][idx]
        return None

    # -- Algorithms 2 and 3 ----------------------------------------------------
    def _step(self, states: tuple[int, ...], label: Label) -> tuple[int, ...]:
        out: set[int] = set()
        ready = self._ready
        dests = self._dests
        for q in states:
            if not ready[q]:
                self._prepare(q)
            out.update(dests[q].get(label, ()))
        return tuple(sorted(out))

    def _min_string(
        self,
        start_level: int,
        stack: list[tuple[int, ...]],
        word: list[Label],
        word_keys: list[object],
    ) -> None:
        """Extend ``word`` minimally from ``start_level`` to the last slot.

        ``stack[i]`` is the state set before choosing the letter at slot
        ``i``; the method pushes the sets for the remaining slots.
        ``word_keys`` mirrors ``word`` with each letter's sort key, so
        later nextString scans compare keys without re-keying.
        """
        min_label = self._min_label
        min_key = self._min_key
        ready = self._ready
        for i in range(start_level, self.leveled.n_slots):
            states = stack[i]
            best: Label | None = None
            best_key: object = None
            for q in states:
                if not ready[q]:
                    self._prepare(q)
                key = min_key[q]
                if key is None:
                    continue
                if best is None or key < best_key:
                    best, best_key = min_label[q], key
            if best is None:
                raise AssertionError(
                    "pruned leveled NFA must complete every prefix"
                )
            word.append(best)
            word_keys.append(best_key)
            if i + 1 <= self.leveled.n_slots - 1:
                stack.append(self._step(states, best))

    def __iter__(self) -> Iterator[tuple[Label, ...]]:
        leveled = self.leveled
        if leveled.n_slots == 0:
            if LeveledNFA.ROOT in leveled.accepting:
                yield ()
            return
        if leveled.is_empty:
            return
        stack: list[tuple[int, ...]] = [(LeveledNFA.ROOT,)]
        word: list[Label] = []
        word_keys: list[object] = []
        self._min_string(0, stack, word, word_keys)
        yield tuple(word)
        all_labels = self._labels
        all_keys = self._keys
        ready = self._ready
        while True:
            # nextString: find the rightmost slot whose letter can grow.
            i = leveled.n_slots - 1
            while i >= 0:
                states = stack[i]
                current_key = word_keys[i]
                best: Label | None = None
                best_key: object = None
                for q in states:
                    if not ready[q]:
                        self._prepare(q)
                    keys = all_keys[q]
                    idx = bisect_right(keys, current_key)
                    if idx == len(keys):
                        continue
                    key = keys[idx]
                    if best is None or key < best_key:
                        best, best_key = all_labels[q][idx], key
                if best is not None:
                    del word[i:]
                    del word_keys[i:]
                    del stack[i + 1 :]
                    word.append(best)
                    word_keys.append(best_key)
                    if i + 1 <= leveled.n_slots - 1:
                        stack.append(self._step(states, best))
                    self._min_string(i + 1, stack, word, word_keys)
                    yield tuple(word)
                    break
                i -= 1
            else:
                return
