"""Closure, reachability, trimming and simulation for NFAs.

These are the standard-textbook building blocks the paper's proofs lean
on (breadth-first searches "in time O(m + n)", transitive closures,
"ensure all states are reachable from q0 and qf is reachable from every
state").  All functions are label-agnostic: callers pass a predicate
classifying which labels may be traversed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable

from ..alphabet import SymbolPredicate, is_epsilon
from .nfa import NFA

__all__ = [
    "closure",
    "reachable_states",
    "coreachable_states",
    "trim",
    "simulate",
    "closure_table",
]

Label = Hashable
LabelFilter = Callable[[Label], bool]


def closure(
    nfa: NFA, states: Iterable[int], traversable: LabelFilter
) -> frozenset[int]:
    """States reachable from ``states`` using only ``traversable`` edges.

    With ``traversable = is_epsilon`` this is the classic epsilon
    closure; with epsilon-or-marker labels it is the paper's variable-
    epsilon closure ``VE`` (proof of Lemma 3.10).
    """
    seen = set(states)
    frontier = deque(seen)
    while frontier:
        q = frontier.popleft()
        for label, dst in nfa.transitions[q]:
            if dst not in seen and traversable(label):
                seen.add(dst)
                frontier.append(dst)
    return frozenset(seen)


def closure_table(nfa: NFA, traversable: LabelFilter) -> list[frozenset[int]]:
    """Per-state closure, i.e. ``[closure(nfa, {q}) for q in states]``.

    Computed state-by-state; overall ``O(n (n + m))``, matching the
    "standard transitive closure algorithm" cost the paper cites.
    """
    return [closure(nfa, (q,), traversable) for q in range(nfa.n_states)]


def reachable_states(
    nfa: NFA, sources: Iterable[int], traversable: LabelFilter | None = None
) -> frozenset[int]:
    """Forward reachability from ``sources`` (all labels by default)."""
    if traversable is None:
        return closure(nfa, sources, lambda _label: True)
    return closure(nfa, sources, traversable)


def coreachable_states(
    nfa: NFA, targets: Iterable[int], traversable: LabelFilter | None = None
) -> frozenset[int]:
    """Backward reachability: states from which ``targets`` are reachable."""
    reverse: list[list[int]] = [[] for _ in range(nfa.n_states)]
    for src, label, dst in nfa.iter_edges():
        if traversable is None or traversable(label):
            reverse[dst].append(src)
    seen = set(targets)
    frontier = deque(seen)
    while frontier:
        q = frontier.popleft()
        for src in reverse[q]:
            if src not in seen:
                seen.add(src)
                frontier.append(src)
    return frozenset(seen)


def trim(nfa: NFA) -> tuple[NFA, dict[int, int]]:
    """Drop states not on an initial-to-final path.

    Returns the trimmed automaton and the old-to-new state map.  If the
    language is empty the result has a lone initial state (kept so the
    automaton stays well-formed) and no finals.
    """
    if nfa.initial is None:
        raise ValueError("automaton has no initial state")
    forward = reachable_states(nfa, (nfa.initial,))
    backward = coreachable_states(nfa, nfa.finals)
    useful = forward & backward
    if not useful:
        empty = NFA()
        q0 = empty.add_state()
        empty.set_initial(q0)
        return empty, {nfa.initial: q0}
    keep = set(useful)
    keep.add(nfa.initial)
    return nfa.induced(keep)


def simulate(
    nfa: NFA,
    word: Iterable[Label],
    matches: Callable[[Label, Label], bool] | None = None,
) -> bool:
    """Membership test by standard set-based simulation.

    ``word`` is a sequence of concrete symbols.  ``matches(label, sym)``
    decides whether a transition labelled ``label`` can read ``sym``;
    the default handles this library's conventions: a
    :class:`SymbolPredicate` label matches characters via
    ``predicate.matches``, any other non-epsilon label matches only an
    equal symbol (so marker labels match marker symbols exactly).

    Epsilon transitions (label :data:`EPSILON`) are always traversed for
    free and never consume a symbol.
    """
    if nfa.initial is None:
        return False
    if matches is None:
        matches = _default_matches
    current = closure(nfa, (nfa.initial,), is_epsilon)
    for sym in word:
        step: set[int] = set()
        for q in current:
            for label, dst in nfa.transitions[q]:
                if not is_epsilon(label) and matches(label, sym):
                    step.add(dst)
        if not step:
            return False
        current = closure(nfa, step, is_epsilon)
    return bool(current & nfa.finals)


def _default_matches(label: Label, sym: Label) -> bool:
    if isinstance(label, SymbolPredicate):
        return isinstance(sym, str) and label.matches(sym)
    return label == sym
