"""A minimal, label-agnostic epsilon-NFA container.

States are dense integers.  Transition labels are opaque hashables;
the conventional labels used across this library are:

* :data:`repro.alphabet.EPSILON` — epsilon moves;
* :class:`repro.alphabet.SymbolPredicate` — terminal moves;
* :class:`repro.alphabet.VariableMarker` — variable operations;
* ``frozenset[VariableMarker]`` — multi-operation moves (Lemma 3.10).

The container deliberately knows nothing about label semantics; the
helpers in :mod:`repro.automata.ops` take predicates that classify
labels, and :mod:`repro.vset` layers the spanner interpretation on top.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator

__all__ = ["NFA"]

Label = Hashable


class NFA:
    """A nondeterministic finite automaton with opaque labels.

    Attributes:
        transitions: adjacency list; ``transitions[q]`` is the list of
            ``(label, destination)`` pairs leaving state ``q``.
        initial: the initial state, or ``None`` until set.
        finals: the set of accepting states.
    """

    __slots__ = ("transitions", "initial", "finals")

    def __init__(self) -> None:
        self.transitions: list[list[tuple[Label, int]]] = []
        self.initial: int | None = None
        self.finals: set[int] = set()

    # -- Construction -------------------------------------------------------
    def add_state(self) -> int:
        """Create a fresh state and return its id."""
        self.transitions.append([])
        return len(self.transitions) - 1

    def add_states(self, count: int) -> range:
        """Create ``count`` fresh states, returning their id range."""
        first = len(self.transitions)
        for _ in range(count):
            self.transitions.append([])
        return range(first, first + count)

    def add_transition(self, src: int, label: Label, dst: int) -> None:
        self.transitions[src].append((label, dst))

    def set_initial(self, state: int) -> None:
        self.initial = state

    def add_final(self, state: int) -> None:
        self.finals.add(state)

    # -- Inspection -----------------------------------------------------------
    @property
    def n_states(self) -> int:
        return len(self.transitions)

    @property
    def n_transitions(self) -> int:
        return sum(len(edges) for edges in self.transitions)

    def edges_from(self, state: int) -> list[tuple[Label, int]]:
        return self.transitions[state]

    def iter_edges(self) -> Iterator[tuple[int, Label, int]]:
        """Yield all edges as ``(src, label, dst)`` triples."""
        for src, edges in enumerate(self.transitions):
            for label, dst in edges:
                yield src, label, dst

    def labels(self) -> set[Label]:
        """The set of labels used on any transition."""
        return {label for _, label, _ in self.iter_edges()}

    # -- Copying / renumbering -------------------------------------------------
    def copy(self) -> "NFA":
        clone = NFA()
        clone.transitions = [list(edges) for edges in self.transitions]
        clone.initial = self.initial
        clone.finals = set(self.finals)
        return clone

    def induced(self, keep: Iterable[int]) -> tuple["NFA", dict[int, int]]:
        """The sub-automaton induced by ``keep``, plus the state mapping.

        States outside ``keep`` and edges touching them are dropped.
        Returns ``(nfa, old_to_new)``.  The initial state must survive;
        finals are intersected with ``keep``.
        """
        keep_set = set(keep)
        old_to_new: dict[int, int] = {}
        clone = NFA()
        for old in sorted(keep_set):
            old_to_new[old] = clone.add_state()
        for src, label, dst in self.iter_edges():
            if src in keep_set and dst in keep_set:
                clone.add_transition(old_to_new[src], label, old_to_new[dst])
        if self.initial is not None and self.initial in keep_set:
            clone.initial = old_to_new[self.initial]
        clone.finals = {old_to_new[f] for f in self.finals if f in keep_set}
        return clone, old_to_new

    def map_labels(self, mapping: Callable[[Label], Label]) -> "NFA":
        """A copy with every label passed through ``mapping``."""
        clone = NFA()
        clone.transitions = [
            [(mapping(label), dst) for label, dst in edges]
            for edges in self.transitions
        ]
        clone.initial = self.initial
        clone.finals = set(self.finals)
        return clone

    def __repr__(self) -> str:
        return (
            f"NFA(states={self.n_states}, transitions={self.n_transitions}, "
            f"initial={self.initial}, finals={sorted(self.finals)})"
        )
