"""Thompson construction from regex-formula ASTs (proof of Lemma 3.4).

The paper converts a functional regex formula ``alpha`` into a
functional vset-automaton by (1) rewriting every capture ``x{beta}``
into the concatenation ``x⊢ · beta · ⊣x`` over the extended alphabet and
(2) running the classic Thompson construction.  We fuse the two steps:
captures compile directly to marker-labelled transitions.

Guarantees (used by later complexity arguments):

* single initial and single final state — as required by the
  vset-automaton definition;
* number of states and transitions linear in ``|alpha|``;
* every state has out-degree at most 2, and marker/symbol edges are
  never duplicated — so ``m`` is ``O(n)``, the property Theorem 3.3's
  remark about regex-derived automata relies on.
"""

from __future__ import annotations

from ..alphabet import EPSILON, close_marker, open_marker
from ..regex.ast import (
    Capture,
    CharClass,
    Concat,
    EmptySet,
    Epsilon,
    Optional,
    Plus,
    RegexFormula,
    Star,
    Union,
)
from .nfa import NFA

__all__ = ["thompson_nfa"]


def thompson_nfa(formula: RegexFormula) -> NFA:
    """Compile a regex formula to an epsilon-NFA over the extended alphabet.

    The result accepts exactly the ref-word language ``R(alpha)``:
    terminal predicates on symbol edges, variable markers on capture
    boundaries.  It always has one initial and one final state.
    """
    nfa = NFA()
    start, end = _build(formula, nfa)
    nfa.set_initial(start)
    nfa.add_final(end)
    return nfa


def _build(formula: RegexFormula, nfa: NFA) -> tuple[int, int]:
    """Emit the fragment for ``formula``; return (entry, exit) states."""
    if isinstance(formula, EmptySet):
        # Two disconnected states: nothing is accepted through them.
        return nfa.add_state(), nfa.add_state()

    if isinstance(formula, Epsilon):
        start = nfa.add_state()
        end = nfa.add_state()
        nfa.add_transition(start, EPSILON, end)
        return start, end

    if isinstance(formula, CharClass):
        start = nfa.add_state()
        end = nfa.add_state()
        nfa.add_transition(start, formula.predicate, end)
        return start, end

    if isinstance(formula, Capture):
        start = nfa.add_state()
        end = nfa.add_state()
        inner_start, inner_end = _build(formula.inner, nfa)
        nfa.add_transition(start, open_marker(formula.variable), inner_start)
        nfa.add_transition(inner_end, close_marker(formula.variable), end)
        return start, end

    if isinstance(formula, Concat):
        left_start, left_end = _build(formula.left, nfa)
        right_start, right_end = _build(formula.right, nfa)
        nfa.add_transition(left_end, EPSILON, right_start)
        return left_start, right_end

    if isinstance(formula, Union):
        start = nfa.add_state()
        end = nfa.add_state()
        for branch in (formula.left, formula.right):
            b_start, b_end = _build(branch, nfa)
            nfa.add_transition(start, EPSILON, b_start)
            nfa.add_transition(b_end, EPSILON, end)
        return start, end

    if isinstance(formula, Star):
        start = nfa.add_state()
        end = nfa.add_state()
        inner_start, inner_end = _build(formula.inner, nfa)
        nfa.add_transition(start, EPSILON, inner_start)
        nfa.add_transition(start, EPSILON, end)
        nfa.add_transition(inner_end, EPSILON, inner_start)
        nfa.add_transition(inner_end, EPSILON, end)
        return start, end

    if isinstance(formula, Plus):
        # alpha+ = alpha . alpha* without duplicating the fragment.
        start = nfa.add_state()
        end = nfa.add_state()
        inner_start, inner_end = _build(formula.inner, nfa)
        nfa.add_transition(start, EPSILON, inner_start)
        nfa.add_transition(inner_end, EPSILON, inner_start)
        nfa.add_transition(inner_end, EPSILON, end)
        return start, end

    if isinstance(formula, Optional):
        start = nfa.add_state()
        end = nfa.add_state()
        inner_start, inner_end = _build(formula.inner, nfa)
        nfa.add_transition(start, EPSILON, inner_start)
        nfa.add_transition(start, EPSILON, end)
        nfa.add_transition(inner_end, EPSILON, end)
        return start, end

    raise TypeError(f"unknown regex node {formula!r}")
