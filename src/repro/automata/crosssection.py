"""Cross-section enumeration: all words of a fixed length, in radix order.

This is the problem of Ackerman and Shallit [2] that the paper reduces
tuple enumeration to: given an NFA ``M`` and a length ``L``, enumerate
``L(M) ∩ Sigma^L`` without repetition.  We solve it by unrolling the
NFA into a :class:`~repro.automata.leveled.LeveledNFA` (states paired
with positions, epsilon transitions collapsed) and handing the result to
:class:`~repro.automata.leveled.RadixEnumerator`.

The production tuple enumerator does *not* go through this module (it
builds its leveled graph directly from variable configurations, see
:mod:`repro.enumeration.graph`); the cross-section here serves the
independent test oracle and any generic word-enumeration need.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator

from ..alphabet import SymbolPredicate, VariableMarker, is_epsilon
from .leveled import LeveledNFA, RadixEnumerator
from .nfa import NFA
from .ops import closure

__all__ = ["cross_section", "enumerate_fixed_length", "default_symbol_key"]

Label = Hashable


def default_symbol_key(symbol: Label) -> tuple:
    """A total order over mixed concrete symbols.

    Characters sort before markers; markers sort by (variable, close <
    open is *not* used — opens first) to keep output deterministic.
    """
    if isinstance(symbol, str):
        return (0, symbol)
    if isinstance(symbol, VariableMarker):
        return (1, symbol.variable, not symbol.is_open)
    return (2, repr(symbol))


def _default_expand(alphabet: frozenset[str]) -> Callable[[Label], Iterable[Label]]:
    def expand(label: Label) -> Iterable[Label]:
        if isinstance(label, SymbolPredicate):
            return sorted(label.concretize(alphabet))
        return (label,)

    return expand


def cross_section(
    nfa: NFA,
    length: int,
    alphabet: Iterable[str],
    expand: Callable[[Label], Iterable[Label]] | None = None,
) -> LeveledNFA:
    """Unroll ``nfa`` into a leveled NFA of words of exactly ``length``.

    Args:
        nfa: the automaton; epsilon labels are collapsed.
        length: required word length ``L``.
        alphabet: concrete characters used to expand predicate labels.
        expand: optional override mapping an edge label to the concrete
            symbols it can read (defaults: predicates expand over
            ``alphabet``, any other non-epsilon label stands for itself).

    Returns:
        A pruned :class:`LeveledNFA` whose words are exactly
        ``L(nfa) ∩ (symbols)^L``.
    """
    if nfa.initial is None:
        raise ValueError("automaton has no initial state")
    expand_fn = expand if expand is not None else _default_expand(frozenset(alphabet))

    leveled = LeveledNFA(length)
    start_states = closure(nfa, (nfa.initial,), is_epsilon)
    if length == 0:
        if start_states & nfa.finals:
            leveled.mark_accepting(LeveledNFA.ROOT)
        leveled.prune()
        return leveled

    node_of: dict[tuple[int, int], int] = {}

    def node(level: int, state: int) -> int:
        key = (level, state)
        found = node_of.get(key)
        if found is None:
            found = leveled.add_node(level)
            node_of[key] = found
        return found

    frontier: set[int] = set(start_states)
    sources: dict[int, int] = {q: LeveledNFA.ROOT for q in frontier}
    for level in range(1, length + 1):
        next_frontier: set[int] = set()
        edges_out: list[tuple[int, Label, int]] = []
        for q in frontier:
            src_node = sources[q]
            for label, dst in nfa.transitions[q]:
                if is_epsilon(label):
                    continue
                for symbol in expand_fn(label):
                    for r in closure(nfa, (dst,), is_epsilon):
                        edges_out.append((src_node, symbol, r))
                        next_frontier.add(r)
        new_sources: dict[int, int] = {}
        seen_edges: set[tuple[int, Label, int]] = set()
        for src_node, symbol, r in edges_out:
            dst_node = node(level, r)
            new_sources[r] = dst_node
            edge = (src_node, symbol, dst_node)
            if edge not in seen_edges:
                seen_edges.add(edge)
                leveled.add_edge(src_node, symbol, dst_node)
        frontier = next_frontier
        sources = new_sources
    for q in frontier:
        if q in nfa.finals:
            leveled.mark_accepting(node_of[(length, q)])
    leveled.prune()
    return leveled


def enumerate_fixed_length(
    nfa: NFA,
    length: int,
    alphabet: Iterable[str],
    expand: Callable[[Label], Iterable[Label]] | None = None,
    key: Callable[[Label], object] = default_symbol_key,
) -> Iterator[tuple[Label, ...]]:
    """Yield every word of ``L(nfa)`` of exactly ``length``, radix order."""
    leveled = cross_section(nfa, length, alphabet, expand)
    yield from RadixEnumerator(leveled, key)
