"""Small self-contained utilities (SAT solving, graphs) used by the
hardness reductions and their cross-checks."""

from .graphs import Graph
from .sat import Clause, Literal, ThreeCNF, brute_force_satisfiable, dpll_satisfiable

__all__ = [
    "Literal",
    "Clause",
    "ThreeCNF",
    "dpll_satisfiable",
    "brute_force_satisfiable",
    "Graph",
]
