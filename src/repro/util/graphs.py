"""Minimal undirected graphs for the k-clique reductions (Thms 3.2, 5.2)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator

__all__ = ["Graph"]


@dataclass(frozen=True)
class Graph:
    """An undirected graph over nodes ``0 .. n-1``.

    Edges are stored normalized as pairs ``(i, j)`` with ``i < j``.
    """

    n: int
    edges: frozenset[tuple[int, int]]

    def __post_init__(self) -> None:
        for i, j in self.edges:
            if not (0 <= i < j < self.n):
                raise ValueError(f"bad edge ({i}, {j}) for n={self.n}")

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        normalized = frozenset(
            (min(i, j), max(i, j)) for i, j in edges if i != j
        )
        return cls(n, normalized)

    @classmethod
    def random(cls, n: int, p: float, seed: int = 0) -> "Graph":
        """Erdos-Renyi G(n, p)."""
        rng = random.Random(seed)
        edges = [
            (i, j)
            for i, j in combinations(range(n), 2)
            if rng.random() < p
        ]
        return cls.from_edges(n, edges)

    @classmethod
    def complete(cls, n: int) -> "Graph":
        return cls.from_edges(n, combinations(range(n), 2))

    @classmethod
    def with_planted_clique(
        cls, n: int, p: float, clique_size: int, seed: int = 0
    ) -> "Graph":
        """G(n, p) plus a clique planted on the first ``clique_size`` nodes."""
        base = cls.random(n, p, seed)
        planted = set(base.edges)
        planted.update(combinations(range(clique_size), 2))
        return cls.from_edges(n, planted)

    # -- Queries -----------------------------------------------------------
    def has_edge(self, i: int, j: int) -> bool:
        return (min(i, j), max(i, j)) in self.edges

    def sorted_edges(self) -> list[tuple[int, int]]:
        """Edges sorted lexicographically — the order the Theorem 3.2
        string encoding relies on."""
        return sorted(self.edges)

    def is_clique(self, nodes: Iterable[int]) -> bool:
        nodes = list(nodes)
        return all(
            self.has_edge(a, b) for a, b in combinations(sorted(nodes), 2)
        )

    def cliques_of_size(self, k: int) -> Iterator[tuple[int, ...]]:
        """Brute-force k-clique enumeration (ground truth for E5/E11)."""
        for candidate in combinations(range(self.n), k):
            if self.is_clique(candidate):
                yield candidate

    def has_clique(self, k: int) -> bool:
        return next(self.cliques_of_size(k), None) is not None
