"""3CNF formulas and two independent satisfiability solvers.

The Theorem 3.1 reduction turns 3CNF satisfiability into Boolean
regex-CQ evaluation; to *test* the reduction we need ground truth, so
this module ships a DPLL solver (unit propagation + pure literals) and
a brute-force solver, both written from scratch.  Experiment E4
cross-checks all three answers on random instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Sequence

__all__ = [
    "Literal",
    "Clause",
    "ThreeCNF",
    "dpll_satisfiable",
    "brute_force_satisfiable",
]


@dataclass(frozen=True, slots=True)
class Literal:
    """A literal: variable index (0-based) with a polarity."""

    variable: int
    positive: bool

    def negate(self) -> "Literal":
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, assignment: dict[int, bool]) -> bool | None:
        value = assignment.get(self.variable)
        if value is None:
            return None
        return value == self.positive

    def __str__(self) -> str:
        prefix = "" if self.positive else "¬"
        return f"{prefix}x{self.variable}"


Clause = tuple[Literal, Literal, Literal]


@dataclass(frozen=True)
class ThreeCNF:
    """A 3CNF formula: a conjunction of exactly-three-literal clauses."""

    n_variables: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if len(clause) != 3:
                raise ValueError("every clause must have exactly 3 literals")
            for literal in clause:
                if not 0 <= literal.variable < self.n_variables:
                    raise ValueError(
                        f"literal {literal} out of range for "
                        f"{self.n_variables} variables"
                    )

    @classmethod
    def random(
        cls, n_variables: int, n_clauses: int, seed: int = 0
    ) -> "ThreeCNF":
        """A random instance with distinct variables inside each clause."""
        if n_variables < 3:
            raise ValueError("need at least 3 variables for 3-literal clauses")
        rng = random.Random(seed)
        clauses = []
        for _ in range(n_clauses):
            variables = rng.sample(range(n_variables), 3)
            clause = tuple(
                Literal(v, rng.random() < 0.5) for v in variables
            )
            clauses.append(clause)
        return cls(n_variables, tuple(clauses))

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        return all(
            any(assignment[lit.variable] == lit.positive for lit in clause)
            for clause in self.clauses
        )

    def clause_variables(self, index: int) -> tuple[int, int, int]:
        return tuple(lit.variable for lit in self.clauses[index])  # type: ignore[return-value]

    def __str__(self) -> str:
        return " ∧ ".join(
            "(" + " ∨ ".join(str(lit) for lit in clause) + ")"
            for clause in self.clauses
        )


def brute_force_satisfiable(formula: ThreeCNF) -> tuple[bool, tuple[bool, ...] | None]:
    """Try all 2^n assignments; returns (satisfiable, witness)."""
    for bits in product((False, True), repeat=formula.n_variables):
        if formula.evaluate(bits):
            return True, bits
    return False, None


def dpll_satisfiable(formula: ThreeCNF) -> tuple[bool, dict[int, bool] | None]:
    """DPLL with unit propagation and pure-literal elimination."""
    clauses = [list(clause) for clause in formula.clauses]
    assignment: dict[int, bool] = {}
    result = _dpll(clauses, assignment, formula.n_variables)
    return (result, assignment if result else None)


def _dpll(
    clauses: list[list[Literal]], assignment: dict[int, bool], n_vars: int
) -> bool:
    clauses = _simplify(clauses, assignment)
    if clauses is None:
        return False
    if not clauses:
        return True

    # Unit propagation.
    for clause in clauses:
        unassigned = [
            lit for lit in clause if lit.variable not in assignment
        ]
        if len(unassigned) == 1:
            lit = unassigned[0]
            assignment[lit.variable] = lit.positive
            if _dpll(clauses, assignment, n_vars):
                return True
            del assignment[lit.variable]
            return False

    # Pure literals.
    polarity: dict[int, set[bool]] = {}
    for clause in clauses:
        for lit in clause:
            if lit.variable not in assignment:
                polarity.setdefault(lit.variable, set()).add(lit.positive)
    for variable, signs in polarity.items():
        if len(signs) == 1:
            assignment[variable] = next(iter(signs))
            if _dpll(clauses, assignment, n_vars):
                return True
            del assignment[variable]
            return False

    # Branch on the first unassigned variable of the first clause.
    variable = next(
        lit.variable
        for clause in clauses
        for lit in clause
        if lit.variable not in assignment
    )
    for value in (True, False):
        assignment[variable] = value
        if _dpll(clauses, assignment, n_vars):
            return True
        del assignment[variable]
    return False


def _simplify(
    clauses: list[list[Literal]], assignment: dict[int, bool]
) -> list[list[Literal]] | None:
    """Drop satisfied clauses; detect conflicts (all-false clauses)."""
    out: list[list[Literal]] = []
    for clause in clauses:
        satisfied = False
        open_literals = 0
        for lit in clause:
            status = lit.satisfied_by(assignment)
            if status is True:
                satisfied = True
                break
            if status is None:
                open_literals += 1
        if satisfied:
            continue
        if open_literals == 0:
            return None
        out.append(clause)
    return out


def satisfying_assignments_of_clause(clause: Clause) -> Iterator[dict[int, bool]]:
    """The (exactly seven) assignments to a clause's variables that
    satisfy it — the building block of the Theorem 3.1 reduction."""
    variables = [lit.variable for lit in clause]
    for bits in product((False, True), repeat=3):
        assignment = dict(zip(variables, bits))
        if any(assignment[lit.variable] == lit.positive for lit in clause):
            yield assignment
