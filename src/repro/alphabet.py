"""Alphabets, variable markers and symbol predicates.

The paper works over a fixed finite alphabet Sigma and the *extended*
alphabet ``Sigma ∪ Gamma_V`` where ``Gamma_V`` holds two markers per
variable ``x``: an opening marker (the paper writes ``x⊢``) and a closing
marker (``⊣x``).  This module provides:

* :class:`VariableMarker` — the Gamma_V symbols;
* symbol predicates (:class:`Chars`, :class:`AnyChar`, :class:`NotChars`)
  used as terminal transition labels.

Predicate labels are the one deliberate engineering substitution in this
reproduction (see DESIGN.md): the theory treats ``Sigma*`` as a union of
|Sigma| parallel edges, while we keep a single edge whose label *matches*
a set of characters.  Semantics and complexity shapes are unchanged — a
predicate edge is a single edge, and matching is O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "EPSILON",
    "VariableMarker",
    "open_marker",
    "close_marker",
    "gamma",
    "SymbolPredicate",
    "Chars",
    "AnyChar",
    "NotChars",
    "char_pred",
    "ANY",
    "intersect_predicates",
    "is_epsilon",
    "is_marker",
    "is_marker_set",
    "is_symbol",
    "marker_sort_key",
]


class _Epsilon:
    """Singleton sentinel for epsilon transitions."""

    _instance: "_Epsilon | None" = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ε"

    def __reduce__(self):
        # Epsilon checks are identity checks (``label is EPSILON``), so
        # unpickling — e.g. shipping AutomatonTables to a worker
        # process — must resolve to the receiving process's singleton,
        # never a second instance.
        return (_Epsilon, ())


#: The epsilon transition label.
EPSILON = _Epsilon()


@dataclass(frozen=True, slots=True)
class VariableMarker:
    """A variable operation: opening or closing a capture variable.

    The paper's ``x⊢`` is ``VariableMarker("x", is_open=True)`` and
    ``⊣x`` is ``VariableMarker("x", is_open=False)``.
    """

    variable: str
    is_open: bool

    def __str__(self) -> str:
        return f"⊢{self.variable}" if self.is_open else f"⊣{self.variable}"

    __repr__ = __str__


def open_marker(variable: str) -> VariableMarker:
    """The opening marker ``x⊢`` for ``variable``."""
    return VariableMarker(variable, True)


def close_marker(variable: str) -> VariableMarker:
    """The closing marker ``⊣x`` for ``variable``."""
    return VariableMarker(variable, False)


def gamma(variables: Iterable[str]) -> frozenset[VariableMarker]:
    """The marker alphabet ``Gamma_V`` for a variable set ``V``."""
    out: set[VariableMarker] = set()
    for v in variables:
        out.add(open_marker(v))
        out.add(close_marker(v))
    return frozenset(out)


def marker_sort_key(marker: VariableMarker) -> tuple[str, bool]:
    """Deterministic total order on markers (opens before closes per var)."""
    return (marker.variable, not marker.is_open)


# ---------------------------------------------------------------------------
# Symbol predicates
# ---------------------------------------------------------------------------


class SymbolPredicate:
    """Base class for terminal transition labels.

    A predicate decides which characters a transition may read.  All
    predicates are immutable, hashable, and totally ordered via
    :meth:`sort_key` (needed by the radix enumeration of Section 4.2
    when it runs over terminal alphabets, e.g. in the test oracle).
    """

    __slots__ = ()

    def matches(self, ch: str) -> bool:
        raise NotImplementedError

    def sort_key(self) -> tuple:
        raise NotImplementedError

    def concretize(self, alphabet: Iterable[str]) -> frozenset[str]:
        """The set of characters from ``alphabet`` this predicate accepts."""
        return frozenset(ch for ch in alphabet if self.matches(ch))


@dataclass(frozen=True, slots=True)
class Chars(SymbolPredicate):
    """Matches exactly the characters in a finite set."""

    chars: frozenset[str]

    def __init__(self, chars: Iterable[str]):
        object.__setattr__(self, "chars", frozenset(chars))

    def matches(self, ch: str) -> bool:
        return ch in self.chars

    def sort_key(self) -> tuple:
        return (0, tuple(sorted(self.chars)))

    def __str__(self) -> str:
        inner = "".join(sorted(self.chars))
        return inner if len(inner) == 1 else f"[{inner}]"

    __repr__ = __str__


@dataclass(frozen=True, slots=True)
class NotChars(SymbolPredicate):
    """Matches every character except those in a finite set."""

    chars: frozenset[str]

    def __init__(self, chars: Iterable[str]):
        object.__setattr__(self, "chars", frozenset(chars))

    def matches(self, ch: str) -> bool:
        return ch not in self.chars

    def sort_key(self) -> tuple:
        return (1, tuple(sorted(self.chars)))

    def __str__(self) -> str:
        return f"[^{''.join(sorted(self.chars))}]"

    __repr__ = __str__


@dataclass(frozen=True, slots=True)
class AnyChar(SymbolPredicate):
    """Matches every character (the paper's ``Sigma`` shorthand)."""

    def matches(self, ch: str) -> bool:
        return True

    def sort_key(self) -> tuple:
        return (2,)

    def __str__(self) -> str:
        return "Σ"

    __repr__ = __str__


#: Shared wildcard instance.
ANY = AnyChar()


def char_pred(ch: str) -> Chars:
    """Predicate matching exactly one character."""
    if len(ch) != 1:
        raise ValueError(f"char_pred expects a single character, got {ch!r}")
    return Chars(frozenset((ch,)))


def intersect_predicates(
    a: SymbolPredicate, b: SymbolPredicate
) -> SymbolPredicate | None:
    """Intersection of two predicates, or ``None`` when provably empty.

    Used by the join construction (Lemma 3.10): a terminal product edge
    exists only for characters both factors accept.
    """
    if isinstance(a, AnyChar):
        return b
    if isinstance(b, AnyChar):
        return a
    if isinstance(a, Chars) and isinstance(b, Chars):
        common = a.chars & b.chars
        return Chars(common) if common else None
    if isinstance(a, Chars) and isinstance(b, NotChars):
        common = a.chars - b.chars
        return Chars(common) if common else None
    if isinstance(a, NotChars) and isinstance(b, Chars):
        return intersect_predicates(b, a)
    if isinstance(a, NotChars) and isinstance(b, NotChars):
        return NotChars(a.chars | b.chars)
    raise TypeError(f"cannot intersect {a!r} and {b!r}")


# ---------------------------------------------------------------------------
# Label kind tests
# ---------------------------------------------------------------------------


def is_epsilon(label: object) -> bool:
    """True for the epsilon label."""
    return label is EPSILON


def is_marker(label: object) -> bool:
    """True for a single variable-operation label."""
    return isinstance(label, VariableMarker)


def is_marker_set(label: object) -> bool:
    """True for a multi-operation label (a frozenset of markers).

    Multi-operation transitions are the generalized model proposed in
    the proof of Lemma 3.10; :func:`repro.vset.automaton.expand_multi_ops`
    rewrites them back into single-marker chains.
    """
    return isinstance(label, frozenset)


def is_symbol(label: object) -> bool:
    """True for a terminal (symbol-predicate) label."""
    return isinstance(label, SymbolPredicate)
