"""The paper's hardness reductions, as executable constructions.

* :mod:`.sat3` — Theorem 3.1: 3CNF-SAT to Boolean regex-CQ evaluation
  over the one-character string ``a``;
* :mod:`.clique` — Theorem 3.2: k-clique to *gamma-acyclic* Boolean
  regex-CQ evaluation (W[1]-hardness in variables/atoms);
* :mod:`.clique_eq` — Theorem 5.2: k-clique to Boolean regex-CQ with
  string equalities whose size depends only on ``k`` (W[1]-hardness in
  the query size).

Each module builds the instance, runs it through the production
evaluators, and can decode the witness back (satisfying assignment /
clique), so the reductions double as end-to-end integration tests.
"""

from .clique import CliqueReduction
from .clique_eq import CliqueEqualityReduction
from .sat3 import SatReduction

__all__ = ["SatReduction", "CliqueReduction", "CliqueEqualityReduction"]
