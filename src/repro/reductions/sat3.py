"""Theorem 3.1: 3CNF satisfiability as Boolean regex-CQ evaluation.

Construction (verbatim from the proof): the input string is ``s = a``.
Each propositional variable ``x`` becomes a capture variable; an
assignment sets ``mu(x) = [1,1>`` for false and ``mu(x) = [2,2>`` for
true.  For each clause ``C_j`` build a regex atom

    ``gamma_j  =  OR over the seven satisfying assignments tau of C_j``

where the regex for ``tau`` concatenates ``v{}`` for every false
variable, then the letter ``a``, then ``v{}`` for every true variable
(the proof nests the false variables — concatenation of empty captures
lands on the same spans).  The Boolean CQ ``pi_∅(gamma_1 ⋈ ... ⋈
gamma_m)`` is non-empty on ``a`` iff the formula is satisfiable; the
join forces all clauses to agree on every shared variable.

The reduction keeps each atom's size bounded by a constant (7 branches
of <= 7 nodes each): hardness already bites with bounded-size regex
formulas on a unit-length string.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regex.ast import Capture, Epsilon, RegexFormula, char, concat, union
from ..queries.cq import RegexCQ
from ..spans import SpanTuple
from ..util.sat import ThreeCNF, satisfying_assignments_of_clause

__all__ = ["SatReduction"]


def _variable_name(index: int) -> str:
    return f"v{index}"


def _assignment_formula(assignment: dict[int, bool]) -> RegexFormula:
    """The regex for one satisfying assignment of a clause."""
    false_parts = [
        Capture(_variable_name(v), Epsilon())
        for v in sorted(assignment)
        if not assignment[v]
    ]
    true_parts = [
        Capture(_variable_name(v), Epsilon())
        for v in sorted(assignment)
        if assignment[v]
    ]
    return concat(*false_parts, char("a"), *true_parts)


@dataclass(frozen=True)
class SatReduction:
    """The compiled reduction for one 3CNF instance.

    Attributes:
        formula: the source 3CNF formula.
        query: the Boolean regex CQ (one atom per clause).
        string: always ``"a"``.
    """

    formula: ThreeCNF
    query: RegexCQ
    string: str

    @classmethod
    def build(cls, formula: ThreeCNF, boolean: bool = True) -> "SatReduction":
        """Construct the regex CQ for ``formula``.

        Args:
            formula: the 3CNF instance.
            boolean: with the default True the head is empty (the
                paper's ``pi_∅``); with False the head keeps all
                variables so a witness assignment can be decoded from
                any answer tuple.
        """
        atoms: list[RegexFormula] = []
        for clause in formula.clauses:
            branches = [
                _assignment_formula(assignment)
                for assignment in satisfying_assignments_of_clause(clause)
            ]
            atoms.append(union(*branches))
        if boolean:
            head: tuple[str, ...] = ()
        else:
            head = tuple(
                _variable_name(v) for v in range(formula.n_variables)
                if any(
                    lit.variable == v
                    for clause in formula.clauses
                    for lit in clause
                )
            )
        return cls(formula, RegexCQ(head, atoms), "a")

    def decode(self, answer: SpanTuple) -> dict[int, bool]:
        """Recover a (partial) assignment from a witness tuple.

        Variables not occurring in any clause are unconstrained and
        absent from the result.
        """
        assignment: dict[int, bool] = {}
        for name in answer.variables:
            index = int(name[1:])
            span = answer[name]
            assignment[index] = span.start == 2
        return assignment

    def check_decoded(self, assignment: dict[int, bool]) -> bool:
        """Validate a decoded assignment against the source formula."""
        full = [assignment.get(v, False) for v in range(self.formula.n_variables)]
        return self.formula.evaluate(full)
