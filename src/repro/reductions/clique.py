"""Theorem 3.2: k-clique as a gamma-acyclic Boolean regex CQ.

Construction (following the proof, over the five-letter alphabet
``{a, b, <, #, >}``; the proof's ``⊢``/``⊣`` render as ``<``/``>``):

* every node ``v_i`` gets a fixed-width code over ``{a, b}`` of length
  ``O(log n)``;
* the string encodes the edge set, lexicographically ordered:
  ``s = <code(i)#code(j)> <code(i')#code(j')> ...`` for edges
  ``i < j``;
* the atom ``gamma`` is one big concatenation of blocks
  ``Σ* < x_ij{(a|b)*} # y_ij{(a|b)*} > Σ*`` for ``1 <= i < j <= k`` in
  lexicographic block order — matching the string's edge order, it
  selects one edge per clique pair;
* for each clique slot ``l`` the atom ``delta_l`` forces all of
  ``y_{1,l} ... y_{l-1,l}, x_{l,l+1} ... x_{l,k}`` to spell the *same*
  node code, by a disjunction over all ``n`` node codes.

The Boolean CQ ``pi_∅(gamma ⋈ delta_1 ⋈ ... ⋈ delta_k)`` is non-empty
on ``s`` iff the graph has a k-clique.  Distinct ``delta_l`` atoms share
no variables, so the query is gamma-acyclic — the acyclicity notion for
which evaluation is tractable in the relational world, making this the
paper's sharpest NP-hardness.

Note on indices: the paper's displayed query joins ``delta_1`` through
``delta_{k-1}``; its correctness argument uses the constraint "for each
l" including ``l = k`` (whose atom ties the ``y_{i,k}`` together), so we
join all ``k`` delta atoms.

The construction is FPT in k: ``|gamma| = O(k^2 log n... )`` blocks and
each ``delta_l`` has size ``O(k n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from ..regex.ast import (
    RegexFormula,
    char,
    concat,
    sigma_star,
    string_literal,
    union,
)
from ..regex.ast import Capture, CharClass
from ..alphabet import Chars
from ..queries.cq import RegexCQ
from ..spans import SpanTuple
from ..util.graphs import Graph

__all__ = ["CliqueReduction"]


def _code_width(n: int) -> int:
    return max(1, ceil(log2(max(n, 2))))


def _node_code(node: int, width: int) -> str:
    bits = format(node, "b").rjust(width, "0")
    return bits.replace("0", "a").replace("1", "b")


def _decode_node(code: str) -> int:
    bits = code.replace("a", "0").replace("b", "1")
    return int(bits, 2)


def _ab_star() -> RegexFormula:
    return CharClass(Chars("ab")).star()


def _x(i: int, j: int) -> str:
    return f"x_{i}_{j}"


def _y(i: int, j: int) -> str:
    return f"y_{i}_{j}"


@dataclass(frozen=True)
class CliqueReduction:
    """The compiled Theorem 3.2 instance for a graph and clique size k.

    Attributes:
        graph: the source graph.
        k: the clique size sought.
        query: the gamma-acyclic Boolean regex CQ.
        string: the edge-set encoding of the graph.
    """

    graph: Graph
    k: int
    query: RegexCQ
    string: str

    @classmethod
    def build(cls, graph: Graph, k: int, boolean: bool = True) -> "CliqueReduction":
        """Construct the reduction.

        Args:
            graph: the input graph.
            k: clique size (>= 2).
            boolean: True for the paper's ``pi_∅``; False keeps all
                variables in the head so cliques can be decoded from
                answers.
        """
        if k < 2:
            raise ValueError("clique size must be at least 2")
        width = _code_width(graph.n)
        string = "".join(
            f"<{_node_code(i, width)}#{_node_code(j, width)}>"
            for i, j in graph.sorted_edges()
        )

        # gamma: one block per clique pair, in lexicographic order.
        blocks: list[RegexFormula] = []
        for i in range(1, k + 1):
            for j in range(i + 1, k + 1):
                blocks.append(
                    concat(
                        sigma_star(),
                        char("<"),
                        Capture(_x(i, j), _ab_star()),
                        char("#"),
                        Capture(_y(i, j), _ab_star()),
                        char(">"),
                        sigma_star(),
                    )
                )
        gamma = concat(*blocks)

        # delta_l: all slot-l variables spell the same node code.
        deltas: list[RegexFormula] = []
        for l in range(1, k + 1):
            branches: list[RegexFormula] = []
            for node in range(graph.n):
                code = _node_code(node, width)
                parts: list[RegexFormula] = []
                for i in range(1, l):
                    parts.append(
                        concat(
                            sigma_star(),
                            char("#"),
                            Capture(_y(i, l), string_literal(code)),
                            char(">"),
                            sigma_star(),
                        )
                    )
                for j in range(l + 1, k + 1):
                    parts.append(
                        concat(
                            sigma_star(),
                            char("<"),
                            Capture(_x(l, j), string_literal(code)),
                            char("#"),
                            sigma_star(),
                        )
                    )
                branches.append(concat(*parts))
            deltas.append(union(*branches))

        atoms = [gamma] + deltas
        if boolean:
            head: tuple[str, ...] = ()
        else:
            head = tuple(
                sorted(
                    [_x(i, j) for i in range(1, k + 1) for j in range(i + 1, k + 1)]
                    + [_y(i, j) for i in range(1, k + 1) for j in range(i + 1, k + 1)]
                )
            )
        return cls(graph, k, RegexCQ(head, atoms), string)

    def decode(self, answer: SpanTuple) -> tuple[int, ...]:
        """Recover the clique nodes from a witness tuple."""
        width = _code_width(self.graph.n)
        nodes: dict[int, int] = {}
        for i in range(1, self.k + 1):
            for j in range(i + 1, self.k + 1):
                x_span = answer[_x(i, j)]
                y_span = answer[_y(i, j)]
                nodes[i] = _decode_node(x_span.extract(self.string))
                nodes[j] = _decode_node(y_span.extract(self.string))
                assert len(x_span) == width and len(y_span) == width
        return tuple(nodes[l] for l in range(1, self.k + 1))
