"""Theorem 5.2: k-clique via string equalities — W[1]-hardness in |q|.

The string and the ``gamma`` atom are exactly those of Theorem 3.2
(:mod:`repro.reductions.clique`).  The difference: instead of the
``delta_l`` atoms — whose size grows with the *graph* because they
disjoin over all node codes — each clique slot ``l`` contributes a
string-equality group over

    ``y_{1,l}, ..., y_{l-1,l}, x_{l,l+1}, ..., x_{l,k}``

(the paper phrases it as ``k - 2`` binary equalities; we use the merged
k-ary group of §5.1, which is equivalent).  The resulting query's size
is ``O(k^2)`` — *independent of the graph* — which is what upgrades the
lower bound from NP-hardness to W[1]-hardness in the parameter ``|q|``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..queries.atoms import EqualityAtom
from ..queries.cq import RegexCQ
from ..spans import SpanTuple
from ..util.graphs import Graph
from .clique import CliqueReduction, _code_width, _decode_node, _x, _y

__all__ = ["CliqueEqualityReduction"]


@dataclass(frozen=True)
class CliqueEqualityReduction:
    """The compiled Theorem 5.2 instance.

    Attributes:
        graph: the source graph.
        k: the clique size sought.
        query: Boolean regex CQ with string equalities; a single regex
            atom (``gamma``) plus one equality group per clique slot.
        string: the edge-set encoding (same as Theorem 3.2).
    """

    graph: Graph
    k: int
    query: RegexCQ
    string: str

    @classmethod
    def build(
        cls, graph: Graph, k: int, boolean: bool = True
    ) -> "CliqueEqualityReduction":
        if k < 2:
            raise ValueError("clique size must be at least 2")
        base = CliqueReduction.build(graph, k, boolean=boolean)
        gamma_atom = base.query.regex_atoms[0]

        equalities: list[EqualityAtom] = []
        for l in range(1, k + 1):
            group = [_y(i, l) for i in range(1, l)] + [
                _x(l, j) for j in range(l + 1, k + 1)
            ]
            if len(group) >= 2:
                equalities.append(EqualityAtom(tuple(group)))

        query = RegexCQ(base.query.head, [gamma_atom], equalities=equalities)
        return cls(graph, k, query, base.string)

    def decode(self, answer: SpanTuple) -> tuple[int, ...]:
        """Recover the clique nodes from a witness tuple."""
        nodes: dict[int, int] = {}
        for i in range(1, self.k + 1):
            for j in range(i + 1, self.k + 1):
                nodes[i] = _decode_node(answer[_x(i, j)].extract(self.string))
                nodes[j] = _decode_node(answer[_y(i, j)].extract(self.string))
        width = _code_width(self.graph.n)
        assert all(0 <= v < 2**width for v in nodes.values())
        return tuple(nodes[l] for l in range(1, self.k + 1))
