"""A library of reusable regex-formula extractors.

These are the "primitive extractors" the paper's introduction motivates
(sentence boundaries, dictionary/token lookup, subspan containment,
simplified email addresses, toy postal addresses) — the raw material
the example applications and benchmarks wire into regex CQs.
"""

from .builtin import (
    address_spanner,
    capitalized_spanner,
    compile_extractor,
    dictionary_spanner,
    email_spanner,
    number_spanner,
    paper_email_spanner,
    sentence_spanner,
    subspan_spanner,
    token_spanner,
    word_spanner,
)

__all__ = [
    "sentence_spanner",
    "token_spanner",
    "dictionary_spanner",
    "subspan_spanner",
    "email_spanner",
    "paper_email_spanner",
    "address_spanner",
    "number_spanner",
    "capitalized_spanner",
    "word_spanner",
    "compile_extractor",
]
