"""Built-in extractors (regex formulas) for realistic example queries.

Conventions shared by the extractors:

* every extractor returns a *functional* :class:`RegexFormula`;
* variable names are parameters, so one extractor can be instantiated
  several times in a query without variable clashes;
* token boundaries are modelled with explicit context alternations
  ``(ε | .* <delimiter>)`` on the left and ``(<delimiter> .* | ε)`` on
  the right — spanners have no implicit anchoring, so boundary logic
  must live in the formula itself.

The synthetic corpora of :mod:`repro.text.generators` are built to
match these shapes (single-space separation, ``.!?`` sentence enders,
lowercase emails), mirroring how the paper's intro examples pair
``alpha_sen``, ``alpha_adr``, ``alpha_blg``, ``alpha_plc``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..regex.ast import RegexFormula
from ..regex.parser import parse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.compiled import CompiledSpanner

__all__ = [
    "sentence_spanner",
    "token_spanner",
    "dictionary_spanner",
    "subspan_spanner",
    "email_spanner",
    "paper_email_spanner",
    "address_spanner",
    "number_spanner",
    "capitalized_spanner",
    "word_spanner",
    "compile_extractor",
]

#: Characters ending a sentence.
_ENDERS = ".!?"


def sentence_spanner(variable: str = "x") -> RegexFormula:
    """``alpha_sen[x]``: spans of sentences.

    A sentence is a maximal run of non-ender characters followed by one
    ender; sentences are separated by a single space (the convention of
    :func:`repro.text.generators.sentences`).
    """
    return parse(
        f"(ε|.*[{_ENDERS}] ){variable}{{[^{_ENDERS}]+[{_ENDERS}]}}( .*|ε)"
    )


def token_spanner(word: str, variable: str = "x") -> RegexFormula:
    """``alpha_tok``: occurrences of ``word`` as a whole token.

    Tokens are delimited by non-alphanumeric characters or the string
    boundary.  ``word`` must be alphanumeric.
    """
    if not word.isalnum():
        raise ValueError(f"token must be alphanumeric, got {word!r}")
    return parse(
        f"(ε|.*[^a-zA-Z0-9]){variable}{{{word}}}([^a-zA-Z0-9].*|ε)"
    )


def dictionary_spanner(words: Sequence[str], variable: str = "x") -> RegexFormula:
    """Dictionary lookup: spans matching any of ``words`` as a token."""
    if not words:
        raise ValueError("dictionary must not be empty")
    for word in words:
        if not word.isalnum():
            raise ValueError(f"dictionary entries must be alphanumeric: {word!r}")
    alternation = "|".join(words)
    return parse(
        f"(ε|.*[^a-zA-Z0-9]){variable}{{{alternation}}}([^a-zA-Z0-9].*|ε)"
    )


def subspan_spanner(inner: str = "y", outer: str = "x") -> RegexFormula:
    """``alpha_sub[y, x]``: all pairs with ``y`` a subspan of ``x``.

    Exactly the paper's ``Σ* x{Σ* y{Σ*} Σ*} Σ*``.
    """
    return parse(f".*{outer}{{.*{inner}{{.*}}.*}}.*")


def paper_email_spanner(
    mail: str = "xmail", user: str = "xuser", domain: str = "xdomain"
) -> RegexFormula:
    """The Example 2.5 email formula, verbatim.

    ``Σ* ␣ xmail{xuser{γ}@xdomain{γ.γ}} ␣ Σ*`` with ``γ = (a|...|z)*``.
    Note it requires a space on both sides, as in the paper.
    """
    gamma = "[a-z]*"
    return parse(
        f".* {mail}{{{user}{{{gamma}}}@{domain}{{{gamma}\\.{gamma}}}}} .*"
    )


def email_spanner(
    mail: str = "mail", user: str = "user", domain: str = "domain"
) -> RegexFormula:
    """A boundary-tolerant variant of Example 2.5.

    Accepts emails at the string boundaries and insists on non-empty
    user/domain parts.
    """
    name = "[a-z0-9]+"
    return parse(
        f"(ε|.* ){mail}{{{user}{{{name}}}@{domain}{{{name}\\.{name}}}}}( .*|ε)"
    )


def address_spanner(address: str = "y", country: str = "z") -> RegexFormula:
    """``alpha_adr[y, z]``: toy postal addresses with a country part.

    Matches the synthetic shape ``Street Name 12, 1000 City, Country``
    (see :func:`repro.text.generators.sentences` planting) where ``y``
    spans the whole address and ``z`` the country token.
    """
    word = "[A-Z][a-z]+"
    return parse(
        f".*{address}{{{word}( {word})* [0-9]+, [0-9]+ {word}, "
        f"{country}{{{word}}}}}.*"
    )


def number_spanner(variable: str = "x") -> RegexFormula:
    """Maximal digit runs."""
    return parse(f"(ε|.*[^0-9]){variable}{{[0-9]+}}([^0-9].*|ε)")


def capitalized_spanner(variable: str = "x") -> RegexFormula:
    """Capitalized words (token-delimited)."""
    return parse(
        f"(ε|.*[^a-zA-Z]){variable}{{[A-Z][a-z]*}}([^a-zA-Z].*|ε)"
    )


def word_spanner(variable: str = "x") -> RegexFormula:
    """Maximal lowercase words (token-delimited)."""
    return parse(f"(ε|.*[^a-z]){variable}{{[a-z]+}}([^a-z].*|ε)")


#: Compiled-spanner cache, keyed structurally by formula AST (the ASTs
#: are frozen dataclasses, so two instantiations of the same extractor
#: with the same variables share one compiled runtime).  Bounded: when
#: full, the least-recently-used entry is evicted, so data-derived
#: formulas (e.g. per-document dictionaries) cannot pin compilations
#: for the process lifetime.
_COMPILED: "dict[RegexFormula, CompiledSpanner]" = {}
_COMPILED_MAX_ENTRIES = 64


def compile_extractor(formula: RegexFormula | str) -> "CompiledSpanner":
    """Compile an extractor once for evaluate-many workloads.

    Built-in extractors are exactly the "fixed query workload over many
    documents" the runtime targets: the returned
    :class:`~repro.runtime.CompiledSpanner` carries all
    string-independent preprocessing, and repeated calls with a
    structurally equal formula return the same instance (while it stays
    in the bounded cache).
    """
    from ..runtime.compiled import CompiledSpanner

    if isinstance(formula, str):
        formula = parse(formula)
    spanner = _COMPILED.pop(formula, None)
    if spanner is None:
        spanner = CompiledSpanner(formula)
        while len(_COMPILED) >= _COMPILED_MAX_ENTRIES:
            _COMPILED.pop(next(iter(_COMPILED)))
    _COMPILED[formula] = spanner  # (re)insert as most recently used
    return spanner


def all_builtin_names() -> Iterable[str]:
    """Names of the built-in extractors (for the CLI's listing)."""
    return (name for name in __all__)
