"""Shared-memory document transport: corpus bytes off the task pipe.

The fleet (:mod:`repro.runtime.service`) ships every in-memory document
to its worker as part of the pickled task message — through a
``multiprocessing`` queue, i.e. a pickle, a feeder thread, an OS pipe
write, a pipe read and an unpickle per chunk.  For corpora of large
documents that per-chunk copy chain is the dominant non-evaluation
cost the compile-once model leaves on the table (``evaluate_files``
already avoids it for file-backed corpora by shipping paths).

:class:`SharedMemoryTransport` takes the bytes out of the pipe: a chunk
of documents is packed **chunk-at-a-time** into one POSIX
``multiprocessing.shared_memory`` segment with an offset/length index,
and the task message carries only a tiny :class:`ShmChunk` reference
``(segment name, index, encoding)``.  The worker attaches the segment,
decodes each document **lazily** straight out of the shared buffer (one
decode, no intermediate pickle/pipe copies), and detaches when the task
is done.

Segment lifetime is explicit — **no reliance on GC**:

* the driver owns every segment it creates and holds a reference count
  per segment (one per unresolved task that names it; crash
  re-dispatch re-uses the same segment, so a re-run task never re-packs
  or re-ships document bytes);
* a worker's result message is its release handshake: when the task
  resolves — result, failure, cancellation, or fleet shutdown — the
  owner drops the reference; at zero the segment is *recycled* into a
  bounded free pool for the next chunk of its size class (a
  ``shm_open``/``mmap``/``shm_unlink`` round per chunk costs more than
  the copy it saves — reuse is what makes the transport win), or
  unlinked when the pool is full;
* :meth:`SharedMemoryTransport.close` unlinks everything — pooled and
  in-flight alike — so no ``/dev/shm`` entry survives a fleet close, a
  worker crash/recycle, or an abandoned streaming session; a
  ``weakref.finalize`` hook runs the same sweep on GC and at normal
  interpreter exit, so a driver that never calls ``close()`` still
  leaves ``/dev/shm`` clean;
* the one exit no in-process hook covers — ``kill -9`` of the driver —
  is handled by attribution instead: segment names carry a per-driver
  *session tag* backed by a pidfile, and the **orphan janitor**
  (:func:`sweep_orphaned_segments`, run at transport startup and by
  ``spanner-join cache gc``) unlinks segments whose owning driver is
  dead, never a live session's;
* both sides opt out of Python's ``resource_tracker`` (``track=False``
  where available, registration suppressed/retracted before): a
  *worker* exiting — cleanly, recycled, or killed — can never unlink a
  segment other tasks still read (the well-known spawn-mode tracker
  bug), and the *driver's* tracker — which outlives a SIGKILLed driver
  — can never race the janitor by unlinking crash orphans itself;
  workers cache a bounded number of attachments, so a recycled segment
  name re-arrives already mapped.

Negotiation (:func:`create_transport` + :meth:`pack`): ``"pipe"``
disables the layer, ``"shm"`` forces it (raising
:class:`TransportUnavailableError` where POSIX shared memory is
missing), and ``"auto"`` uses shared memory only for chunks whose
encoded payload reaches ``shm_threshold`` bytes — below that the pipe's
fixed costs win and the chunk rides the task message as before.

Graceful degradation (PR 7): segment *allocation* can fail —
``/dev/shm`` is a bounded filesystem (``ENOSPC``), and a ``budget``
caps how many bytes this transport may hold across in-flight and
pooled segments combined.  Either way :meth:`pack` returns ``None``
(the chunk rides the pipe, exactly as if it had lost the size
negotiation), counts the degradation in :meth:`stats`, and shrinks the
free pool first so pooled-but-idle segments yield their budget to live
traffic.  Degradation is per chunk and never fatal — even a forced
``"shm"`` transport degrades rather than failing the submission,
because the caller asked for a fast path, not an outage.

Huge *file-backed* documents get the third path: :func:`read_document`
decodes large files straight from an ``mmap`` window instead of
materializing an intermediate ``bytes`` copy — the worker-side read
``evaluate_files`` / ``submit_files`` and the serial path share.
"""

from __future__ import annotations

import errno
import mmap
import os
import tempfile
import threading
import weakref
from itertools import count
from typing import Iterator, NamedTuple, Sequence

from ..errors import SpannerError, TransientTaskError

try:  # pragma: no cover - import guard for platforms without POSIX shm
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "MMAP_THRESHOLD",
    "ShmChunk",
    "ShmDocumentView",
    "SharedMemoryTransport",
    "TransportUnavailableError",
    "create_transport",
    "read_document",
    "shm_available",
    "sweep_orphaned_segments",
]

#: "auto" negotiation: chunks whose encoded payload is smaller than this
#: ride the task pipe — the pipe's fixed per-chunk cost beats a segment
#: create below it, and shared memory wins above it (measured by the
#: E13f table in ``benchmarks/bench_e13_runtime.py``).
DEFAULT_SHM_THRESHOLD = 64 * 1024

#: Files at least this large are decoded straight from an ``mmap``
#: window by :func:`read_document` instead of an intermediate
#: ``bytes`` materialization via ``read()``.
MMAP_THRESHOLD = 4 * 1024 * 1024

#: Transport modes accepted everywhere a ``transport=`` knob exists.
TRANSPORT_MODES = ("auto", "shm", "pipe")

#: Segment-name prefix: lets tests (and operators) spot this engine's
#: segments in ``/dev/shm`` unambiguously.
_SEGMENT_PREFIX = "sjdoc"

#: Where ``/dev/shm`` lives when POSIX shm is file-backed (Linux).  The
#: orphan janitor can only *enumerate* segments through the filesystem,
#: so sweeping is a Linux capability; elsewhere it is a clean no-op.
_DEV_SHM = "/dev/shm"

#: How many released segments a transport keeps mapped for reuse, and
#: how many attachments a worker keeps cached.  Small on purpose: one
#: fleet rarely has more than ``workers * prefetch`` chunks in any
#: state at once, and every pooled segment pins its pages.
_POOL_SEGMENTS = 8
_ATTACH_CACHE_SEGMENTS = 8

_segment_ids = count()


class TransportUnavailableError(SpannerError):
    """``transport="shm"`` was forced on a platform without POSIX shm."""


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is usable here."""
    return _shared_memory is not None


# -- The orphan janitor --------------------------------------------------------
#
# A SIGKILLed driver gets no chance to run close(), finalizers or atexit
# hooks, so its segments survive in /dev/shm forever — the one leak the
# in-process lifetime contract cannot cover.  The fix is attribution:
# every transport mints a *session tag* (embedded in each segment name)
# and records its pid in a pidfile under <tmp>/sjdoc-sessions/, written
# before the first segment can exist.  Any process can then decide, for
# any sjdoc segment, whether the owning driver is still alive — and
# reap it when it is not.  Sweeps run at transport startup and from
# `spanner-join cache gc`.


def _session_dir() -> str:
    path = os.path.join(tempfile.gettempdir(), f"{_SEGMENT_PREFIX}-sessions")
    os.makedirs(path, exist_ok=True)
    return path


def _new_session_tag() -> str:
    # Leading letter on purpose: a legacy segment name embedded the pid
    # where the tag now sits, and the sweeper falls back to "tag is a
    # pid" for all-digit tags without a pidfile — a random tag must
    # never be mistakable for one.
    return "s" + os.urandom(4).hex()


def _start_ticks(pid: int) -> int | None:
    """The process's kernel start time (clock ticks since boot), or
    ``None`` where /proc is unavailable.  Stable across the process's
    lifetime and different for a reused pid — the disambiguator that
    keeps a pidfile from vouching for a stranger."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read()
        # Fields after the parenthesized comm (which may itself contain
        # spaces); starttime is overall field 22 == post-comm index 19.
        return int(stat.rsplit(b") ", 1)[1].split()[19])
    except (OSError, ValueError, IndexError):
        return None


def _pid_alive(pid: int, ticks: int | None) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        pass  # exists, owned by someone else
    except OSError:  # pragma: no cover - unknown failure: never reap
        return True
    if ticks is not None:
        current = _start_ticks(pid)
        if current is not None and current != ticks:
            return False  # the pid was reused by a different process
    return True


def _write_pidfile(tag: str) -> str:
    path = os.path.join(_session_dir(), f"{tag}.pid")
    ticks = _start_ticks(os.getpid())
    data = f"{os.getpid()} {'' if ticks is None else ticks}".strip() + "\n"
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def _remove_pidfile(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _session_alive(tag: str) -> bool:
    """Whether the driver that owns session ``tag`` is still running.

    The pidfile is the liveness record; without one, an all-digit tag
    is treated as a legacy pid-embedded name and checked directly, and
    anything else is an orphan (its driver wrote a pidfile once — only
    death or ``cache gc`` removes it).
    """
    pidfile = os.path.join(_session_dir(), f"{tag}.pid")
    try:
        with open(pidfile) as handle:
            fields = handle.read().split()
        pid = int(fields[0])
        ticks = int(fields[1]) if len(fields) > 1 else None
    except (OSError, ValueError, IndexError):
        if tag.isdigit():
            return _pid_alive(int(tag), None)
        return False
    return _pid_alive(pid, ticks)


def sweep_orphaned_segments() -> list[str]:
    """Unlink sjdoc segments whose owning driver is dead.

    Returns the names swept.  Runs from transport startup and from the
    ``cache gc`` CLI; a platform without a filesystem-backed
    ``/dev/shm`` cannot enumerate segments and sweeps nothing.  Live
    sessions are never touched: a segment is reaped only when its
    session's pidfile names a dead (or reused) pid, or when it has no
    pidfile at all — and every live driver writes its pidfile before
    creating its first segment.  Stale pidfiles of dead sessions are
    pruned in the same pass.
    """
    if not os.path.isdir(_DEV_SHM):
        return []
    swept = []
    alive: dict[str, bool] = {}
    for name in sorted(os.listdir(_DEV_SHM)):
        if not name.startswith(_SEGMENT_PREFIX + "-"):
            continue
        parts = name.split("-")
        if len(parts) < 3:
            continue
        tag = parts[1]
        if tag not in alive:
            alive[tag] = _session_alive(tag)
        if alive[tag]:
            continue
        try:
            os.unlink(os.path.join(_DEV_SHM, name))
        except OSError:  # pragma: no cover - raced another sweeper
            continue
        swept.append(name)
    try:
        session_dir = _session_dir()
        for entry in os.listdir(session_dir):
            if not entry.endswith(".pid"):
                continue
            tag = entry[: -len(".pid")]
            if tag not in alive:
                alive[tag] = _session_alive(tag)
            if not alive[tag]:
                _remove_pidfile(os.path.join(session_dir, entry))
    except OSError:  # pragma: no cover - tempdir raced away
        pass
    return swept


def _finalize_session(segments: dict, pool: dict, pidfile: str) -> None:
    """Unlink whatever the transport still owns; runs via
    ``weakref.finalize`` on GC *and* at normal interpreter exit, so a
    driver that forgets ``close()`` still leaves ``/dev/shm`` clean.
    ``close()`` empties the dicts, making a later call a no-op."""
    leftovers = [entry[0] for entry in segments.values()]
    segments.clear()
    for bucket in pool.values():
        leftovers.extend(bucket)
    pool.clear()
    for segment in leftovers:
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass
    _remove_pidfile(pidfile)


def create_transport(
    mode: str,
    *,
    shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    shm_budget: int | None = None,
) -> "SharedMemoryTransport | None":
    """The transport for ``mode`` — ``None`` means "everything by pipe".

    ``"auto"`` degrades to the pipe silently where shared memory is
    unavailable; ``"shm"`` raises instead, because the caller asked for
    a guarantee the platform cannot give.  ``shm_budget`` caps the
    bytes of segment capacity the transport may own at once; chunks
    that would overrun it ride the pipe instead (counted, never fatal).
    """
    if mode not in TRANSPORT_MODES:
        raise ValueError(
            f"transport must be one of {TRANSPORT_MODES}, got {mode!r}"
        )
    if mode == "pipe":
        return None
    if not shm_available():
        if mode == "shm":
            raise TransportUnavailableError(
                "transport='shm' requires multiprocessing.shared_memory, "
                "which this platform does not provide — use 'auto' or 'pipe'"
            )
        return None
    return SharedMemoryTransport(
        threshold=shm_threshold, force=(mode == "shm"), budget=shm_budget
    )


def _attach_untracked(name: str):
    """Attach an existing segment without resource-tracker ownership.

    A worker only *borrows* the segment; the driver owns and unlinks
    it.  Letting the worker's ``resource_tracker`` adopt the name would
    make a worker exit (clean, recycled or killed — notably under the
    spawn start method, where each worker runs its own tracker) unlink
    a segment other tasks still read.  Python >= 3.13 spells this
    ``track=False``; earlier versions need the explicit unregister.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: suppress the tracker registration for the
        # duration of the attach.  Unregistering *after* would be
        # wrong under the fork start method, where children share the
        # parent's tracker process — it would strip the owner's own
        # registration.  Workers are single-threaded, so the swap is
        # not racy.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _create_untracked(name: str, size: int):
    """Create a segment the owner's ``resource_tracker`` will not adopt.

    The transport owns segment lifetime explicitly — release refcounts,
    ``weakref.finalize``/``atexit`` on clean exits, and the pidfile
    janitor after a crash.  Python's tracker is a *second*, competing
    owner: it outlives a SIGKILLed driver and unlinks every registered
    segment the moment its pipe hits EOF, racing the janitor and
    spraying "leaked shared_memory objects" warnings on every crash.
    Unregistering from our *own* tracker right after create is safe
    (unlike on the worker borrow path, where under fork it would strip
    the owner's registration — here we are the owner, and stripping it
    is the point).
    """
    try:
        segment = _shared_memory.SharedMemory(
            create=True, size=size, name=name, track=False
        )
    except TypeError:
        # Python < 3.13: create tracked, then take the registration
        # back.  The tracker registers the raw POSIX name (with the
        # leading slash), kept in the private ``_name`` attribute.
        segment = _shared_memory.SharedMemory(
            create=True, size=size, name=name
        )
        from multiprocessing import resource_tracker

        try:
            resource_tracker.unregister(
                getattr(segment, "_name", "/" + name), "shared_memory"
            )
        except Exception:  # pragma: no cover - tracker already gone
            pass
    return segment


#: The *wire* codec for shared-memory chunks.  Deliberately fixed and
#: lossless — independent of whatever ``encoding``/``errors`` the
#: caller uses to read files: in-memory documents are already ``str``,
#: and re-encoding them with a lossy user codec (``ascii`` +
#: ``replace``...) would make the worker evaluate a *different*
#: document than the serial path.  ``surrogatepass`` keeps lone
#: surrogates (e.g. from ``surrogateescape``-decoded files) intact.
WIRE_ENCODING = "utf-8"
WIRE_ERRORS = "surrogatepass"


class ShmChunk(NamedTuple):
    """What a shared-memory task message carries instead of documents.

    ``index`` holds one ``(offset, length)`` byte range per document in
    the segment, in document order; empty documents are zero-length
    ranges, so round-trips are exact.  ``encoding``/``errors`` name the
    wire codec the bytes were packed with (a lossless constant, carried
    so decoding stays correct across engine versions).
    """

    segment: str
    index: tuple[tuple[int, int], ...]
    encoding: str
    errors: str

    def __len__(self) -> int:  # documents, not tuple arity
        return len(self.index)


#: Worker-side attachment cache: segment name -> SharedMemory, in LRU
#: order.  Segments are recycled by the owner, so the same few names
#: arrive over and over — keeping them mapped turns the per-chunk
#: ``shm_open``/``mmap`` pair into a dict hit.  Single-threaded worker
#: processes only; bounded so an unlinked name can pin at most one
#: stale mapping until it falls off the end.
_attachments: dict[str, object] = {}


def _attach_cached(name: str):
    segment = _attachments.pop(name, None)
    if segment is None:
        segment = _attach_untracked(name)
    _attachments[name] = segment  # (re-)insert as most recent
    while len(_attachments) > _ATTACH_CACHE_SEGMENTS:
        stale = _attachments.pop(next(iter(_attachments)))
        stale.close()
    return segment


class ShmDocumentView(Sequence[str]):
    """Worker-side lazy view of one packed chunk.

    Attaches to the segment on first access (through the process-wide
    attachment cache), decodes each document slice on demand — straight
    from the shared buffer, no intermediate pickle or pipe copy — and
    drops its handle on :meth:`release`.  Views are sequences, so the
    worker's evaluation loop iterates them exactly like the plain
    document lists the pipe delivers.
    """

    __slots__ = ("_ref", "_segment")

    def __init__(self, ref: ShmChunk):
        self._ref = ref
        self._segment = None

    def _buffer(self):
        if self._segment is None:
            try:
                self._segment = _attach_cached(self._ref.segment)
            except (FileNotFoundError, OSError) as err:
                # The segment is not visible in this worker's namespace
                # (attach race with a recycle, or a fresh worker beating
                # the owner's publication).  That indicts neither the
                # query nor the document — surface it as *transient* so
                # the driver re-dispatches with backoff instead of
                # failing the task's future.
                raise TransientTaskError(
                    f"cannot attach shared-memory segment "
                    f"{self._ref.segment!r}: {err}"
                ) from err
        return self._segment.buf

    def __len__(self) -> int:
        return len(self._ref.index)

    def __getitem__(self, i: int) -> str:
        offset, length = self._ref.index[i]
        return str(
            self._buffer()[offset : offset + length],
            self._ref.encoding,
            self._ref.errors,
        )

    def __iter__(self) -> Iterator[str]:
        for i in range(len(self._ref.index)):
            yield self[i]

    def release(self) -> None:
        """Drop this view's handle (the attachment cache keeps the
        mapping warm for the segment's next reuse; the *owner* unlinks,
        never the worker)."""
        self._segment = None


class SharedMemoryTransport:
    """Driver-side owner of the fleet's document segments.

    Thread-safe: packing happens on submitter threads, releases on the
    collector thread.  Every segment this transport creates is
    accounted for — in flight (refcounted per unresolved task) or
    pooled for reuse — until :meth:`close` unlinks it, the explicit
    lifetime contract that keeps ``/dev/shm`` clean across crashes,
    recycles and abandoned sessions.

    Released segments are recycled through a small free pool keyed by
    size class (next power of two): the ``shm_open``/``ftruncate``/
    ``mmap``/``shm_unlink`` round per segment — plus the fresh page
    faults on first touch — costs several times the memcpy it
    transports, so a serving fleet's steady state runs on a handful of
    segments created once.
    """

    mode = "shm"

    def __init__(
        self,
        *,
        threshold: int = DEFAULT_SHM_THRESHOLD,
        force: bool = False,
        budget: int | None = None,
    ):
        if _shared_memory is None:  # pragma: no cover - guarded by factory
            raise TransportUnavailableError(
                "multiprocessing.shared_memory is unavailable"
            )
        if threshold < 0:
            raise ValueError(f"shm_threshold must be >= 0, got {threshold}")
        if budget is not None and budget < 1:
            raise ValueError(f"shm_budget must be >= 1, got {budget}")
        self.threshold = threshold
        self.force = force
        #: Max bytes of segment capacity (in-flight + pooled, counted
        #: by size class) this transport may own; ``None`` = unbounded.
        self.budget = budget
        self._lock = threading.Lock()
        #: segment name -> [SharedMemory, refcount] (in flight)
        self._segments: dict[str, list] = {}
        #: size class -> [SharedMemory, ...] (released, reusable)
        self._pool: dict[int, list] = {}
        self._pooled = 0
        #: segment name -> the size class it was created for.  The OS
        #: may round a segment's reported ``size`` up to its page size,
        #: so pooling must remember the class it will be looked up by,
        #: not re-derive it from ``segment.size``.
        self._classes: dict[str, int] = {}
        #: Bytes of owned segment capacity, by size class (the budget's
        #: unit of account — what the transport *reserved*, not what a
        #: chunk happened to fill).
        self._allocated = 0
        #: Chunks that fell back to the pipe on allocation failure or
        #: budget pressure (the graceful-degradation counter; chunks
        #: that merely lost the size negotiation are not degradations).
        self._degraded = 0
        #: Fault injection (tests): pack sequence numbers whose segment
        #: allocation must fail with a synthetic ``ENOSPC``.
        self._pack_seq = 0
        self._fault_packs: frozenset[int] = frozenset()
        #: Per-driver session identity: tag in every segment name, pid
        #: in a pidfile written *before* any segment exists — the
        #: attribution the orphan janitor sweeps by.  Startup is also
        #: sweep time: a fleet coming up reaps what a SIGKILLed
        #: predecessor stranded.
        try:
            self._orphans_swept = len(sweep_orphaned_segments())
        except Exception:  # pragma: no cover - sweeping is best-effort
            self._orphans_swept = 0
        self.session = _new_session_tag()
        try:
            self._pidfile = _write_pidfile(self.session)
        except OSError:  # pragma: no cover - unwritable tempdir
            self._pidfile = ""
        self._finalizer = weakref.finalize(
            self, _finalize_session, self._segments, self._pool, self._pidfile
        )

    # -- Introspection (tests assert leak-freedom through this) -------------
    def live_segments(self) -> tuple[str, ...]:
        """Names of in-flight segments (referenced by unresolved tasks;
        pooled segments are not live — they hold no task's data)."""
        with self._lock:
            return tuple(self._segments)

    def pooled_segments(self) -> tuple[str, ...]:
        """Names of released segments kept mapped for reuse."""
        with self._lock:
            return tuple(
                seg.name for bucket in self._pool.values() for seg in bucket
            )

    def stats(self) -> dict:
        """Resource accounting, for ``health()`` and the tests.

        ``bytes_in_flight``/``bytes_pooled`` are segment *capacity*
        (size classes — what counts against the budget), not payload
        bytes.  ``degraded_to_pipe`` counts chunks that fell back to
        the pipe on allocation failure or budget pressure since
        construction.
        """
        with self._lock:
            pooled = sum(
                self._classes.get(seg.name, 0)
                for bucket in self._pool.values()
                for seg in bucket
            )
            return {
                "bytes_in_flight": self._allocated - pooled,
                "bytes_pooled": pooled,
                "budget": self.budget,
                "degraded_to_pipe": self._degraded,
                "orphans_swept": self._orphans_swept,
            }

    def inject_enospc(self, packs: "frozenset[int] | set[int]") -> None:
        """Chaos hook: make these pack sequence numbers (0-based, in
        pack order) fail segment allocation with a synthetic
        ``ENOSPC`` — exercising the real exception path, fallback
        included, without actually filling ``/dev/shm``."""
        self._fault_packs = frozenset(packs)

    # -- Packing -------------------------------------------------------------
    def pack(self, items: Sequence[str]) -> ShmChunk | None:
        """Pack one chunk into a segment; ``None`` = use the pipe.

        The ``None`` outcome is the negotiation: below ``threshold``
        bytes of encoded payload (unless ``force``), the pipe's fixed
        costs win and the caller ships the documents as before.  The
        size test is cheap on both ends — a chunk whose character count
        already reaches the threshold must encode at least that many
        bytes, and one whose UTF-8 worst case stays under it cannot.

        Documents are encoded with the fixed lossless wire codec
        (:data:`WIRE_ENCODING`/:data:`WIRE_ERRORS`), never the caller's
        file codec — the worker must see the exact string the serial
        path would evaluate.

        Allocation failure is the *other* ``None`` outcome: a full
        ``/dev/shm`` (``ENOSPC``), an OS that refuses the mapping
        (``MemoryError``), or a chunk that would overrun this
        transport's ``budget`` degrades the chunk to the pipe — counted
        in :meth:`stats`, never raised to the submitter, ``force``
        included (the caller asked for a fast path, not an outage).
        """
        if not self.force:
            chars = sum(len(s) for s in items)
            if chars * 4 < self.threshold:
                return None  # cannot reach the threshold: pipe
            if chars < self.threshold:
                # Indeterminate band: only the real encoding decides.
                if sum(
                    len(s.encode(WIRE_ENCODING, WIRE_ERRORS)) for s in items
                ) < self.threshold:
                    return None
        blobs = [s.encode(WIRE_ENCODING, WIRE_ERRORS) for s in items]
        total = sum(len(b) for b in blobs)
        with self._lock:
            seq = self._pack_seq
            self._pack_seq += 1
            inject = seq in self._fault_packs
        try:
            if inject:
                raise OSError(
                    errno.ENOSPC, "injected fault: /dev/shm exhausted"
                )
            segment = self._obtain_segment(max(total, 1))
        except (OSError, MemoryError):
            # SharedMemory(create=True) failed (ENOSPC and kin), or the
            # budget cannot fit this chunk even after shrinking the
            # pool: degrade to the pipe.  The documents still reach the
            # worker — through the task message, exactly as if the
            # chunk had lost the size negotiation — so degradation is
            # a throughput event, never a correctness one.
            with self._lock:
                self._degraded += 1
            return None
        index = []
        offset = 0
        for blob in blobs:
            end = offset + len(blob)
            segment.buf[offset:end] = blob
            index.append((offset, len(blob)))
            offset = end
        with self._lock:
            self._segments[segment.name] = [segment, 1]
        return ShmChunk(
            segment.name, tuple(index), WIRE_ENCODING, WIRE_ERRORS
        )

    @staticmethod
    def _size_class(size: int) -> int:
        # Power-of-two classes (>= one page) so chunks of similar size
        # recycle each other's segments instead of near-missing.
        return max(4096, 1 << (size - 1).bit_length())

    def _obtain_segment(self, size: int):
        wanted = self._size_class(size)
        evicted: list = []
        overrun = False
        with self._lock:
            bucket = self._pool.get(wanted)
            if bucket:
                self._pooled -= 1
                return bucket.pop()
            if self.budget is not None:
                # Budget pressure: pooled-but-idle segments yield their
                # reserved bytes to live traffic before any chunk is
                # degraded — the pool is a throughput optimization, the
                # budget is a promise.
                while self._allocated + wanted > self.budget and self._pooled:
                    size_class, pool_bucket = next(
                        (c, b) for c, b in self._pool.items() if b
                    )
                    seg = pool_bucket.pop()
                    if not pool_bucket:
                        del self._pool[size_class]
                    self._pooled -= 1
                    self._classes.pop(seg.name, None)
                    self._allocated -= size_class
                    evicted.append(seg)
                overrun = self._allocated + wanted > self.budget
            if not overrun:
                # Reserve before creating, so concurrent packers cannot
                # collectively overshoot the budget between the check
                # and the create.
                self._allocated += wanted
        for seg in evicted:
            self._destroy(seg)
        if overrun:
            raise OSError(
                errno.ENOSPC,
                f"shm budget of {self.budget} bytes cannot fit a "
                f"{wanted}-byte segment",
            )
        try:
            segment = self._create_segment(wanted)
        except BaseException:
            with self._lock:
                self._allocated -= wanted
            raise
        with self._lock:
            self._classes[segment.name] = wanted
        return segment

    def _create_segment(self, size: int):
        # Explicit names (prefix + session tag + counter) so operators,
        # the cleanup tests *and the orphan janitor* can attribute
        # /dev/shm entries to a driver; retry on the (unlikely)
        # collision with a leftover from a previous session.
        while True:
            name = f"{_SEGMENT_PREFIX}-{self.session}-{next(_segment_ids)}"
            try:
                return _create_untracked(name, size)
            except FileExistsError:  # pragma: no cover - tag collision
                continue

    # -- The release handshake ----------------------------------------------
    def acquire(self, ref: ShmChunk) -> None:
        """One more consumer for a packed chunk (rarely needed: a task
        holds exactly one reference for its whole lifetime, crash
        re-dispatch included)."""
        with self._lock:
            entry = self._segments.get(ref.segment)
            if entry is not None:
                entry[1] += 1

    def release(self, ref: ShmChunk) -> None:
        """Drop one reference; recycle (or unlink) the segment at zero.

        At zero the segment goes back to the free pool for the next
        chunk of its size class; a full pool unlinks instead.
        Idempotent past zero (a shutdown sweep may race a late
        collector release) — releasing an unknown name is a no-op.
        """
        with self._lock:
            entry = self._segments.get(ref.segment)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._segments[ref.segment]
            segment = entry[0]
            if self._pooled < _POOL_SEGMENTS:
                size_class = self._classes[segment.name]
                self._pool.setdefault(size_class, []).append(segment)
                self._pooled += 1
                return
            self._allocated -= self._classes.pop(segment.name, 0)
        self._destroy(segment)

    def close(self) -> None:
        """Unlink everything still owned — in flight and pooled alike
        (fleet shutdown sweep; ``/dev/shm`` ends clean)."""
        with self._lock:
            leftovers = [entry[0] for entry in self._segments.values()]
            self._segments.clear()
            for bucket in self._pool.values():
                leftovers.extend(bucket)
            self._pool.clear()
            self._pooled = 0
            self._classes.clear()
            self._allocated = 0
        for segment in leftovers:
            self._destroy(segment)
        _remove_pidfile(self._pidfile)

    @staticmethod
    def _destroy(segment) -> None:
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# -- Worker side --------------------------------------------------------------


def open_chunk(items: "ShmChunk | Sequence[str]") -> Sequence[str]:
    """Materialize a task's document payload, whatever transport carried it.

    A :class:`ShmChunk` becomes a lazy :class:`ShmDocumentView`; plain
    lists (the pipe transport) pass through untouched.  Callers that
    received a view must :func:`release_chunk` it when the task is done.
    """
    if isinstance(items, ShmChunk):
        return ShmDocumentView(items)
    return items


def release_chunk(items: Sequence[str]) -> None:
    """Detach a view produced by :func:`open_chunk` (no-op otherwise)."""
    if isinstance(items, ShmDocumentView):
        items.release()


# -- File-backed documents: the mmap path -------------------------------------


def read_document(
    path: str,
    *,
    encoding: str = "utf-8",
    errors: str = "strict",
    mmap_threshold: int = MMAP_THRESHOLD,
) -> str:
    """Read one document, decoding huge files straight from ``mmap``.

    Files of at least ``mmap_threshold`` bytes are mapped and decoded
    from the mapping in one step (``str`` accepts any buffer), skipping
    the intermediate ``bytes`` copy a plain ``read()`` materializes —
    the worker-side path ``evaluate_files`` extends to huge single
    files.  Smaller files take the ordinary read.
    """
    if mmap_threshold is not None and mmap_threshold >= 0:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0  # let open() raise the canonical error below
        if size >= mmap_threshold and size > 0:
            with open(path, "rb") as handle:
                with mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                ) as window:
                    return str(window, encoding, errors)
    with open(path, encoding=encoding, errors=errors) as handle:
        return handle.read()
