"""The compiled-spanner runtime: compile once, evaluate many documents.

``SpannerEvaluator`` realizes Theorem 3.3 for one ``(automaton, string)``
pair; every construction re-derives the trim, the configuration sweep
and the variable-epsilon closures even though none of them depend on the
string.  :class:`CompiledSpanner` performs that work exactly once (via
:class:`~repro.runtime.tables.AutomatonTables`) and then streams any
number of documents through the cached tables:

    spanner = CompiledSpanner(".*x{[0-9]+}.*")
    for answers in spanner.evaluate_many(documents):
        ...

Per document only the truly string-dependent work remains: one pass over
the characters through the burst-step table (a dict lookup per frontier
state, thanks to the lazily grown character index), pruning, and the
radix enumeration itself.  The enumeration order is unchanged — a
compiled spanner yields exactly the tuple sequence the cold evaluator
yields, in the same radix order of configuration words.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..enumeration.enumerator import SpannerEvaluator
from ..regex.ast import RegexFormula
from ..regex.parser import parse
from ..spans import SpanRelation, SpanTuple
from ..vset.automaton import VSetAutomaton
from ..vset.compile import compile_regex
from .tables import AutomatonTables, tables_for

__all__ = ["CompiledSpanner", "estimate_compile_states"]


def estimate_compile_states(
    query: object,
) -> int | None:
    """Upper-bound the automaton size ``register()`` would build.

    Admission control needs the answer *before* compiling: the
    Thompson-style construction of Lemma 3.4 emits at most two states
    per syntax-tree node (plus the start/accept pair), so for formula
    inputs the bound ``2*|alpha| + 2`` costs one linear parse — never a
    compile.  Already-built inputs report their actual state count —
    including a :class:`~repro.runtime.equality.CompiledEqualityQuery`,
    whose static operands are already compiled and report the sum of
    their table sizes (the fused equality runtime never materializes
    the product, so the statics *are* its state inventory).  Inputs
    whose cost this function cannot bound cheaply return ``None``,
    meaning "admit".

    Beyond first registration, ``SpannerService.restore()`` re-runs
    this estimate on artifacts revived from the store — current limits
    apply to yesterday's fleet, so the function must price compiled
    objects, not just source.

    The estimate is an upper bound on the *pre-compaction* automaton;
    trimming only removes states, so a query admitted by its estimate
    never compiles into something larger than the estimate.
    """
    if isinstance(query, CompiledSpanner):
        return query.n_states
    if isinstance(query, AutomatonTables):
        return query.automaton.n_states
    if isinstance(query, VSetAutomaton):
        return query.n_states
    if isinstance(query, str):
        query = parse(query)
    if isinstance(query, RegexFormula):
        return 2 * query.size() + 2
    # Imported lazily: equality.py imports from this module at load.
    from .equality import CompiledEqualityQuery

    if isinstance(query, CompiledEqualityQuery):
        return sum(
            tables.automaton.n_states for tables, _groups in query.disjuncts
        )
    # Lazy for the same reason: fusion.py builds on this module.
    from .fusion import FusedQuery

    if isinstance(query, FusedQuery):
        # A fused engine is exactly its members' state inventory: the
        # sweep never builds a product, so the sum is the true bound.
        estimates = [
            estimate_compile_states(artifact)
            for _qid, artifact in query.members
        ]
        if any(e is None for e in estimates):
            return None
        return sum(estimates)  # type: ignore[arg-type]
    return None


class CompiledSpanner:
    """A spanner with all string-independent preprocessing done upfront.

    Accepts a vset-automaton, a regex-formula AST, or concrete regex
    syntax (compiled via Lemma 3.4).  Construction runs the automaton-
    side half of Theorem 3.3's preprocessing — trim + epsilon
    compaction, the configuration sweep (raising
    :class:`~repro.errors.NotFunctionalError` on non-functional input),
    interned variable-epsilon closures, terminal-edge lists — and every
    evaluation afterwards reuses those tables.

    The tables come from the shared :func:`tables_for` cache, so a
    ``CompiledSpanner`` and a join using the same automaton object share
    one set of closures.
    """

    __slots__ = ("automaton", "tables")

    def __init__(self, spanner: "VSetAutomaton | RegexFormula | str"):
        if isinstance(spanner, VSetAutomaton):
            automaton = spanner
        else:
            automaton = compile_regex(spanner)
        self.automaton = automaton
        self.tables: AutomatonTables = tables_for(automaton)
        if not self.tables.is_empty:
            self.tables.require_all_closed_final()
        # Chars-only automata have a statically known alphabet: index
        # every character row now so no document ever runs the
        # predicate fallback (no-op beyond the thresholds / for
        # wildcard predicates — those stay lazily indexed).
        self.tables.prebuild_burst()

    @classmethod
    def from_tables(cls, tables: AutomatonTables) -> "CompiledSpanner":
        """A spanner over already-built (e.g. unpickled) tables.

        The string-independent preprocessing is *not* rerun: this is
        how a :class:`~repro.runtime.parallel.ParallelSpanner` worker
        turns the one shipped :class:`AutomatonTables` artifact into a
        serving spanner.  The automaton is the prepared (compacted) one
        the tables describe.
        """
        self = object.__new__(cls)
        self.automaton = tables.automaton
        self.tables = tables
        if not tables.is_empty:
            tables.require_all_closed_final()
        return self

    # -- Serialization ------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"automaton": self.automaton, "tables": self.tables}

    def __setstate__(self, state: dict) -> None:
        self.automaton = state["automaton"]
        self.tables = state["tables"]

    # -- Introspection ------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return self.automaton.variables

    @property
    def n_states(self) -> int:
        """States of the prepared (compacted) automaton."""
        return self.tables.automaton.n_states

    # -- Per-document evaluation --------------------------------------------
    def evaluator(self, s: str) -> SpannerEvaluator:
        """A Theorem 3.3 evaluator for ``s`` on the cached tables.

        Only the string-dependent preprocessing runs (the leveled-graph
        sweep and pruning); iterate the result for polynomial-delay
        enumeration, or use its ``count()`` / ``is_empty()``.
        """
        return SpannerEvaluator(self.automaton, s, tables=self.tables)

    def stream(self, s: str) -> Iterator[SpanTuple]:
        """The tuples of ``[[A]](s)`` in radix order (streaming)."""
        yield from self.evaluator(s)

    def evaluate(self, s: str) -> SpanRelation:
        """Materialized ``[[A]](s)``."""
        return SpanRelation(self.variables, self.stream(s))

    def count(self, s: str, cap: int | None = None) -> int:
        """Number of distinct tuples of ``[[A]](s)`` without decoding."""
        return self.evaluator(s).count(cap=cap)

    def is_empty(self, s: str) -> bool:
        """True iff ``[[A]](s)`` is empty."""
        return self.evaluator(s).is_empty()

    # -- Batch evaluation ---------------------------------------------------
    def evaluate_many(self, docs: Iterable[str]) -> Iterator[list[SpanTuple]]:
        """Stream a document collection through the cached tables.

        Yields one ``list[SpanTuple]`` per document, in input order,
        each in the same radix order a cold evaluator would produce.
        Lazy: documents are only read as the iterator advances, so this
        composes with unbounded document streams.
        """
        for s in docs:
            yield list(self.stream(s))

    def count_many(self, docs: Iterable[str], cap: int | None = None) -> Iterator[int]:
        """Per-document distinct-tuple counts (no tuple decoding)."""
        for s in docs:
            yield self.count(s, cap=cap)

    def __repr__(self) -> str:
        return (
            f"CompiledSpanner(vars={sorted(self.variables)}, "
            f"states={self.n_states}, "
            f"chars_indexed={self.tables.distinct_characters_seen})"
        )
