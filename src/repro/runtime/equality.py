"""The fused equality-join runtime (Theorem 5.4 without materializing A_eq).

The paper evaluates a string-equality selection ``ζ^=(A)`` on input
``s`` as ``A ⋈ A_eq`` (Lemma 3.10 + Theorem 5.4), where ``A_eq`` is a
per-string path automaton with ``O(N^{k+2})`` states.  The materializing
pipeline (:func:`repro.vset.equality.equality_automaton` + the generic
join) therefore rebuilds and re-trims an enormous NFA for **every**
input string, then runs the full product construction against it — the
dominant per-document cost of equality workloads, while the
equality-free path is fully amortized.

This module evaluates the same join with the equality operand kept
*implicit*.  The insight is that ``A_eq`` has almost no information in
it: every path reads ``s`` verbatim, so a state of ``A_eq`` is fully
described by

* the current *gap* (1-based boundary position in ``s``),
* whether a marker burst has already fired at this gap (paths fire all
  of a gap's markers on one edge),
* the start positions of the currently-open group variables,
* which variables are already closed, and
* once the first variable has closed: the common span length ``L`` and
  a canonical *representative* start for the shared substring value
  (from the rolling-hash :class:`~repro.text.substrings.SubstringIndex`).

Crucially this representation **merges** the explicit construction's
paths: all choices that agree on the fired prefix share one implicit
state, and once a group is fully closed every choice collapses into a
single per-gap state.  Validity is enforced on the fly — a burst is
only emitted when the partial assignment still extends to a full
equal-span choice (hash-checked substring equality, occurrence queries
for still-unopened variables, longest-common-extension feasibility for
partially-opened groups) — so the product construction below never
explores a choice the string cannot complete.

The product itself is Lemma 3.10's construction, driven directly off
the static operand's cached :class:`~repro.runtime.tables.AutomatonTables`
(VE closures, configuration sweep, terminal edges — all
string-independent and shared with every other join of that operand)
via :func:`repro.vset.join.operand_view`.  Two runtime prunes keep it
lean:

* the implicit operand reads ``s`` position by position, so the product
  is automatically synchronized with the string — static states are
  only ever paired at gaps they can reach on ``s``;
* a backward sweep precomputes, per gap, the static states that can
  still reach the final state on the rest of ``s``; pairs outside it —
  e.g. marker bursts the static operand can never complete — are
  dropped immediately instead of waiting for the final trim.

The result is a :class:`~repro.vset.automaton.VSetAutomaton` with
exactly the relation of ``join(static, equality_automaton(s, group))``
on ``s``, so projection, union and Theorem 3.3 enumeration downstream
are untouched — and enumeration order is identical too, because the
radix order of configuration words depends only on the answer set.

:class:`CompiledEqualityQuery` packages the string-independent half of
an equality query (per-disjunct static join folds as picklable tables,
equality groups, head) into a ship-to-workers artifact mirroring
:class:`~repro.runtime.compiled.CompiledSpanner`'s interface, which is
what lets :class:`~repro.runtime.parallel.ParallelSpanner` shard
equality workloads across processes.
"""

from __future__ import annotations

from collections import deque
from itertools import product as cartesian_product
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..alphabet import EPSILON, char_pred, intersect_predicates
from ..automata.nfa import NFA
from ..errors import SchemaError
from ..spans import SpanRelation, SpanTuple
from ..text.substrings import SubstringIndex
from ..vset.automaton import VSetAutomaton
from ..vset.configurations import CLOSED, OPEN, WAITING, VariableConfiguration
from ..vset.join import _empty_result, operand_view
from ..vset.operations import project, union
from .tables import AutomatonTables, tables_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..enumeration.enumerator import SpannerEvaluator

__all__ = ["equality_join", "CompiledEqualityQuery"]


#: The implicit operand's unique final state (all markers fired, the
#: whole string read).  A sentinel, not a tuple-shaped state: identity
#: checks are cheap and unambiguous.
_FINAL = object()

#: Fire options per variable inside one burst.
_KEEP, _OPEN, _CLOSE, _OPEN_CLOSE = 0, 1, 2, 3


class _ImplicitEqualityOperand:
    """``A_eq`` for one group on one string, as states-on-demand.

    States are tuples ``(gap, fired, opens, closed_mask, length, ref)``:

    * ``gap``: 1-based boundary position, ``1 .. N+1``;
    * ``fired``: True after the gap's (single) marker burst;
    * ``opens``: sorted ``(var_index, start_gap)`` pairs of open vars;
    * ``closed_mask``: bitmask of closed vars;
    * ``length``/``ref``: the group's span length and the canonical
      representative start of its substring value, fixed by the first
      close (``None`` before; reset to ``None`` once *all* vars are
      closed, so completed states merge across every choice).

    ``ve_closure`` plays the role of the explicit operand's
    variable-epsilon closures: the state itself, every valid one-burst
    successor at the current gap, and the final state once the string
    is consumed and the group fully closed.
    """

    __slots__ = (
        "group",
        "k",
        "s",
        "n",
        "index",
        "full_mask",
        "initial",
        "_ve",
        "_advance",
    )

    def __init__(self, group: tuple[str, ...], s: str, index: SubstringIndex):
        self.group = group
        self.k = len(group)
        self.s = s
        self.n = len(s)
        self.index = index
        self.full_mask = (1 << self.k) - 1
        self.initial = (1, False, (), 0, None, None)
        self._ve: dict[tuple, tuple] = {}
        self._advance: dict[tuple, tuple | None] = {}

    # -- State inspection ---------------------------------------------------
    def gap(self, u: tuple | object) -> int:
        return self.n + 1 if u is _FINAL else u[0]  # type: ignore[index]

    def var_states(self, u: tuple | object) -> tuple[int, ...]:
        """Per-group-variable configuration states (w/o/c codes)."""
        if u is _FINAL:
            return (CLOSED,) * self.k
        _g, _fired, opens, closed_mask, _length, _ref = u  # type: ignore[misc]
        states = [WAITING] * self.k
        for j, _start in opens:
            states[j] = OPEN
        for j in range(self.k):
            if closed_mask >> j & 1:
                states[j] = CLOSED
        return tuple(states)

    def is_complete(self, u: tuple) -> bool:
        return u[3] == self.full_mask

    # -- The variable-epsilon closure ---------------------------------------
    def ve_closure(self, u: tuple | object) -> tuple:
        """States reachable from ``u`` by at most one (valid) burst.

        Mirrors the explicit ``A_eq``'s VE closures: paths fire all of
        a gap's markers on one edge, so the closure is the state, its
        burst successors, and the final state for fully-closed states
        at gap ``N+1``.
        """
        if u is _FINAL:
            return (_FINAL,)
        cached = self._ve.get(u)  # type: ignore[arg-type]
        if cached is None:
            targets = [u]
            if not u[1]:  # type: ignore[index]
                targets.extend(self._fire_targets(u))  # type: ignore[arg-type]
            closure: dict = {}
            end_gap = self.n + 1
            for t in targets:
                closure[t] = None
                if t[0] == end_gap and t[3] == self.full_mask:
                    closure[_FINAL] = None
            cached = tuple(closure)
            self._ve[u] = cached  # type: ignore[index]
        return cached

    def advance(self, u: tuple) -> tuple | None:
        """The state after reading the character at the current gap.

        ``None`` when the state is provably dead at the next gap — a
        fixed-length group variable whose mandatory close boundary was
        just passed, or a required future occurrence that no longer
        exists — so the product skips the whole doomed branch.
        """
        cached = self._advance.get(u, _FINAL)  # _FINAL = "not cached"
        if cached is not _FINAL:
            return cached  # type: ignore[return-value]
        g, _fired, opens, closed_mask, length, ref = u
        nxt: tuple | None = (g + 1, False, opens, closed_mask, length, ref)
        if length is not None:
            for _j, p in opens:
                if p + length <= g:  # close boundary missed: dead branch
                    nxt = None
                    break
            if nxt is not None and closed_mask != self.full_mask:
                open_mask = 0
                for j, _p in opens:
                    open_mask |= 1 << j
                if self.full_mask & ~closed_mask & ~open_mask:
                    # A still-unopened variable needs a fresh occurrence
                    # of the shared substring value from the next gap on.
                    if (
                        self.index.first_occurrence_at_or_after(
                            ref, length, g + 1
                        )
                        is None
                    ):
                        nxt = None
        self._advance[u] = nxt
        return nxt

    # -- Burst enumeration ---------------------------------------------------
    def _fire_targets(self, u: tuple) -> list[tuple]:
        """All valid one-burst successors of the unfired state ``u``.

        A burst picks, per variable, one of: keep, open here, close
        here (if open), or open-and-close here (an empty span).  The
        result is kept only when the new partial assignment still
        extends to a full equal-span choice of ``s``.
        """
        g, _fired, opens, closed_mask, length, ref = u
        n, k, index = self.n, self.k, self.index
        open_start = dict(opens)
        options: list[tuple[int, ...]] = []
        for j in range(k):
            if closed_mask >> j & 1:
                options.append((_KEEP,))
            elif j in open_start:
                options.append((_KEEP, _CLOSE))
            else:
                options.append((_KEEP, _OPEN, _OPEN_CLOSE))
        out: dict[tuple, None] = {}
        for combo in cartesian_product(*options):
            closes: list[int] = []  # start gaps closed by this burst
            new_opens: list[tuple[int, int]] = []
            new_closed = closed_mask
            changed = False
            for j, action in enumerate(combo):
                if action == _KEEP:
                    if j in open_start and not (closed_mask >> j & 1):
                        new_opens.append((j, open_start[j]))
                elif action == _OPEN:
                    new_opens.append((j, g))
                    changed = True
                elif action == _CLOSE:
                    closes.append(open_start[j])
                    new_closed |= 1 << j
                    changed = True
                else:  # _OPEN_CLOSE: an empty span at this gap
                    closes.append(g)
                    new_closed |= 1 << j
                    changed = True
            if not changed:
                continue
            # Fix (or check against) the group's common length/value.
            if closes:
                span_len = g - closes[0]
                if any(g - p != span_len for p in closes[1:]):
                    continue
                if length is None:
                    new_len = span_len
                    new_ref = index.class_rep(closes[0], span_len)
                else:
                    if span_len != length:
                        continue
                    new_len, new_ref = length, ref
                if not all(index.equal(p, new_ref, new_len) for p in closes):
                    continue
            else:
                new_len, new_ref = length, ref
            # Still-open variables must be closable later.
            if new_opens:
                if g == n + 1:
                    continue
                if new_len is not None:
                    dead = False
                    for _j, p in new_opens:
                        close_gap = p + new_len
                        if (
                            close_gap <= g
                            or close_gap > n + 1
                            or not index.equal(p, new_ref, new_len)
                        ):
                            dead = True
                            break
                    if dead:
                        continue
                elif len(new_opens) > 1:
                    # No length fixed yet: some common extension must
                    # cover every open start until the earliest legal
                    # close boundary (strictly after this gap).
                    starts = [p for _j, p in new_opens]
                    lo, hi = min(starts), max(starts)
                    needed = g + 1 - lo
                    if needed > n + 1 - hi:
                        continue
                    if needed > min(
                        index.lce(a, b)
                        for i, a in enumerate(starts)
                        for b in starts[i + 1 :]
                    ):
                        continue
            # Still-unopened variables must find an occurrence later.
            open_mask = 0
            for j, _p in new_opens:
                open_mask |= 1 << j
            if self.full_mask & ~new_closed & ~open_mask:
                if g == n + 1:
                    continue
                if new_len is not None and (
                    index.first_occurrence_at_or_after(new_ref, new_len, g + 1)
                    is None
                ):
                    continue
            if new_closed == self.full_mask:
                # Completed groups merge across all choices.
                out[(g, True, (), self.full_mask, None, None)] = None
            else:
                out[
                    (g, True, tuple(sorted(new_opens)), new_closed, new_len, new_ref)
                ] = None
        return list(out)


def _backward_reachable(
    op, s: str, ve_sets: list[frozenset[int]]
) -> list[frozenset[int]]:
    """Per-gap static states that can still finish on the rest of ``s``.

    ``result[g]`` (1-based, ``1 .. N+1``) holds every static state from
    which the final state is reachable while reading exactly
    ``s[g-1:]`` — the sound over-approximation the product uses to cut
    branches the static operand can never complete.
    """
    n = len(s)
    n_states = len(ve_sets)
    final = op.automaton.final
    reach: list[frozenset[int]] = [frozenset()] * (n + 2)
    reach[n + 1] = frozenset(
        q for q in range(n_states) if final in ve_sets[q]
    )
    for g in range(n, 0, -1):
        sigma = s[g - 1]
        nxt = reach[g + 1]
        readers: set[int] = set()
        for q in range(n_states):
            for pred, dst in op.terminal_edges[q]:
                if dst in nxt and pred.matches(sigma):
                    readers.add(q)
                    break
        reach[g] = frozenset(
            q for q in range(n_states) if ve_sets[q] & readers
        )
    return reach


def equality_join(
    static: VSetAutomaton,
    group: Sequence[str],
    s: str,
    *,
    tables: AutomatonTables | None = None,
    index: SubstringIndex | None = None,
) -> VSetAutomaton:
    """The join ``static ⋈ A_eq(s, group)`` without materializing ``A_eq``.

    Produces a functional vset-automaton whose relation on ``s`` is
    byte-identical to ``join(static, equality_automaton(s, group))`` —
    the tuples of ``static`` on ``s`` whose ``group`` spans carry equal
    substrings — while building only product states the string *and*
    the static operand can complete.

    Args:
        static: the (functional) static operand.
        group: the equality group, at least two distinct variables;
            variables outside ``static``'s set are allowed and join in
            unconstrained, as the explicit construction's would.
        s: the input string the equality is compiled against.
        tables: precomputed tables for ``static`` (defaults to the
            shared :func:`tables_for` cache).
        index: a substring index of ``s`` to share across groups.
    """
    group = tuple(sorted(group))
    if len(group) < 2:
        raise SchemaError("a string-equality group needs at least 2 variables")
    if len(set(group)) != len(group):
        raise SchemaError("string-equality variables must be distinct")
    if tables is None:
        tables = tables_for(static)
    variables = tables.variables | set(group)
    if tables.is_empty:
        return _empty_result(variables)

    shared = tuple(v for v in group if v in tables.variables)
    op = operand_view(tables, shared)
    if index is None:
        index = SubstringIndex(s)
    eq = _ImplicitEqualityOperand(group, s, index)
    n = len(s)

    ve_sets = [frozenset(states) for states in op.ve]
    reach = _backward_reachable(op, s, ve_sets)
    initial1 = op.automaton.initial
    final1 = op.automaton.final
    if initial1 not in reach[1]:
        return _empty_result(variables)

    # Merged-configuration plan: values come from the static side for
    # its variables and from the implicit operand for group-only ones
    # (shared variables agree by the consistency bucketing).
    union_vars = tuple(sorted(variables))
    static_order = tuple(sorted(tables.variables))
    static_pos = {v: i for i, v in enumerate(static_order)}
    group_pos = {v: i for i, v in enumerate(group)}
    plan = tuple(
        (1, group_pos[v]) if v in group_pos else (0, static_pos[v])
        for v in union_vars
    )
    shared_idx = tuple(group_pos[v] for v in shared)
    merged_cache: dict[tuple, VariableConfiguration] = {}
    ops_cache: dict[tuple, frozenset] = {}

    def merged(q1: int, eq_states: tuple[int, ...]) -> VariableConfiguration:
        config1 = op.configs[q1]
        assert config1 is not None
        key = (config1, eq_states)
        out = merged_cache.get(key)
        if out is None:
            states1 = config1.states
            out = VariableConfiguration(
                union_vars,
                tuple(
                    eq_states[i] if side else states1[i]
                    for side, i in plan
                ),
            )
            merged_cache[key] = out
        return out

    product = NFA()
    start_pair = (initial1, eq.initial)
    state_of: dict[tuple, int] = {start_pair: product.add_state()}
    product.set_initial(state_of[start_pair])
    queue: deque[tuple] = deque((start_pair,))

    while queue:
        p1, u = queue.popleft()
        src = state_of[(p1, u)]
        src_eq_states = eq.var_states(u)
        src_merged = merged(p1, src_eq_states)
        g = eq.gap(u)

        # Rule (a): burst transitions — every consistent pair of the
        # static VE closure with the implicit operand's closure, found
        # bucket-by-bucket on the shared-variable configuration.
        buckets1 = op.ve_by_key[p1]
        for v in eq.ve_closure(u):
            v_eq_states = eq.var_states(v)
            key = tuple(v_eq_states[i] for i in shared_idx)
            for q1 in buckets1.get(key, ()):
                if q1 == p1 and v is u:
                    continue
                if v is _FINAL:
                    # Only the true final pair survives: _FINAL has no
                    # outgoing moves, so anything else is dead weight.
                    if q1 != final1:
                        continue
                elif q1 not in reach[g]:
                    continue
                dst_merged = merged(q1, v_eq_states)
                ops_key = (src_merged, dst_merged)
                ops = ops_cache.get(ops_key)
                if ops is None:
                    ops = src_merged.markers_to(dst_merged)
                    ops_cache[ops_key] = ops
                label: object = ops if ops else EPSILON
                dst_pair = (q1, v)
                dst = state_of.get(dst_pair)
                if dst is None:
                    dst = product.add_state()
                    state_of[dst_pair] = dst
                    queue.append(dst_pair)
                product.add_transition(src, label, dst)

        # Rule (b): terminal transitions — the implicit operand reads
        # s verbatim, so the product reads exactly s[g-1] here.
        if u is not _FINAL and g <= n:
            u_next = eq.advance(u)
            if u_next is None:
                continue
            sigma = s[g - 1]
            next_reach = reach[g + 1]
            for pred, r1 in op.terminal_edges[p1]:
                if r1 not in next_reach or not pred.matches(sigma):
                    continue
                label = intersect_predicates(pred, char_pred(sigma))
                if label is None:  # pragma: no cover - matches() held
                    continue
                dst_pair = (r1, u_next)
                dst = state_of.get(dst_pair)
                if dst is None:
                    dst = product.add_state()
                    state_of[dst_pair] = dst
                    queue.append(dst_pair)
                product.add_transition(src, label, dst)

    final_pair = (final1, _FINAL)
    if final_pair not in state_of:
        return _empty_result(variables)
    product.add_final(state_of[final_pair])
    return VSetAutomaton(product, variables).trimmed()


class CompiledEqualityQuery:
    """A ship-anywhere engine for equality queries: compile once, fuse per doc.

    The string-independent half of Corollary 5.5's compilation — the
    per-disjunct static join folds, as :class:`AutomatonTables` — is
    computed (or handed over) once; every document then pays only the
    fused equality joins, projection, union and the Theorem 3.3 sweep.
    The interface mirrors :class:`~repro.runtime.compiled.CompiledSpanner`
    (``stream`` / ``evaluate`` / ``count`` / batch variants), which is
    what :class:`~repro.runtime.parallel.ParallelSpanner` drives, and
    the pickle contract ships the per-disjunct tables through the same
    worker-initializer path the equality-free artifacts use.
    """

    __slots__ = ("head", "disjuncts")

    def __init__(
        self,
        statics: Sequence[VSetAutomaton | AutomatonTables],
        groups_per_disjunct: Sequence[Sequence[Sequence[str]]],
        head: Sequence[str],
    ):
        if len(statics) != len(groups_per_disjunct):
            raise ValueError("one group list per static disjunct required")
        resolved: list[tuple[AutomatonTables, tuple[tuple[str, ...], ...]]] = []
        for static, groups in zip(statics, groups_per_disjunct):
            tables = (
                static
                if isinstance(static, AutomatonTables)
                else tables_for(static)
            )
            resolved.append(
                (tables, tuple(tuple(sorted(g)) for g in groups))
            )
        self.disjuncts = tuple(resolved)
        self.head = tuple(head)

    # -- Serialization ------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"head": self.head, "disjuncts": self.disjuncts}

    def __setstate__(self, state: dict) -> None:
        self.head = state["head"]
        self.disjuncts = state["disjuncts"]

    # -- Introspection ------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self.head)

    def __repr__(self) -> str:
        groups = sum(len(groups) for _t, groups in self.disjuncts)
        return (
            f"CompiledEqualityQuery(head={list(self.head)}, "
            f"disjuncts={len(self.disjuncts)}, equality_groups={groups})"
        )

    # -- Per-document compilation -------------------------------------------
    def compile_for(
        self, s: str, *, index: SubstringIndex | None = None
    ) -> VSetAutomaton:
        """The fully-compiled automaton for ``s`` (fused equality joins).

        Pass ``index`` to share one per-document
        :class:`SubstringIndex` across several equality queries hitting
        the same document — the fused serving path does, so the
        rolling-hash preprocessing is paid once per document instead of
        once per (query, document) pair.
        """
        if index is None:
            index = SubstringIndex(s)
        per_disjunct = []
        for tables, groups in self.disjuncts:
            automaton = tables.automaton
            disjunct_tables: AutomatonTables | None = tables
            for group in groups:
                automaton = equality_join(
                    automaton, group, s, tables=disjunct_tables, index=index
                )
                disjunct_tables = None  # later folds derive their own
            per_disjunct.append(project(automaton, self.head))
        if len(per_disjunct) == 1:
            return per_disjunct[0]
        return union(per_disjunct)

    # -- Evaluation ---------------------------------------------------------
    def evaluator(
        self, s: str, *, index: SubstringIndex | None = None
    ) -> "SpannerEvaluator":
        from ..enumeration.enumerator import SpannerEvaluator

        return SpannerEvaluator(self.compile_for(s, index=index), s)

    def stream(self, s: str) -> Iterator[SpanTuple]:
        yield from self.evaluator(s)

    def evaluate(self, s: str) -> SpanRelation:
        return SpanRelation(self.head, self.stream(s))

    def count(self, s: str, cap: int | None = None) -> int:
        return self.evaluator(s).count(cap=cap)

    def is_empty(self, s: str) -> bool:
        return self.evaluator(s).is_empty()

    def evaluate_many(self, docs: Iterable[str]) -> Iterator[list[SpanTuple]]:
        for s in docs:
            yield list(self.stream(s))

    def count_many(
        self, docs: Iterable[str], cap: int | None = None
    ) -> Iterator[int]:
        for s in docs:
            yield self.count(s, cap=cap)
