"""The long-lived serving fleet: queue-fed workers, many queries, one pool.

:class:`~repro.runtime.parallel.ParallelSpanner` (PR 2/3) shards one
compiled artifact across a pool that lives for a batch call or a
context-manager scope and serves exactly **one** query.  The paper's
compile-once/evaluate-many split (Theorem 3.3, Lemma 3.10) pays off in
proportion to how long the compiled artifact outlives its compilation —
a serving system should therefore keep the workers *resident* and let
every registered query share them.  :class:`SpannerService` is that
fleet:

* **Queue-fed workers.**  Each worker process owns a dedicated task
  queue and blocks on it; the driver assigns chunks to the least-loaded
  healthy worker.  One shared result queue carries answers (and
  failures) back, tagged by task id, so results resolve strictly to the
  futures that requested them whatever order workers finish in.
* **Many queries per worker.**  Queries — equality-free spanners, vset
  extractors and fused :class:`~repro.runtime.equality.CompiledEqualityQuery`
  workloads alike — are registered once, keyed by a *fingerprint* of
  their pickled compiled artifact.  A worker receives a query's
  artifact at most once for its lifetime (the driver tracks what each
  worker has been shipped) and materializes it into its process-wide
  engine table, so however many tasks it serves it compiles each query
  exactly once.  Re-registering an identical query is a no-op returning
  the same id.
* **Shared-memory document transport.**  In-memory corpora do not have
  to ride the task pipe: with ``transport="auto"`` (the default) a
  chunk whose encoded payload clears a size threshold is packed into a
  ref-counted ``multiprocessing.shared_memory`` segment
  (:mod:`repro.runtime.transport`) and the task message carries only a
  ``(segment, index)`` reference; workers decode documents lazily out
  of the shared buffer and the driver unlinks each segment the moment
  its task resolves — an explicit release handshake, no GC, no leaked
  ``/dev/shm`` entries after crashes, recycles or abandoned sessions.
  ``transport="shm"``/``"pipe"`` force either side; platforms without
  POSIX shm fall back to the pipe under ``"auto"``.
* **Graceful lifecycle.**  Workers are recycled after
  ``max_tasks_per_worker`` tasks (finish in-flight work, stop, get
  replaced — results stay byte-identical across a recycle); a worker
  that *dies* has its in-flight tasks re-dispatched to a healthy worker
  (at-most-once resolution: a straggler result for an already-resolved
  task is dropped, so tuples are neither lost nor duplicated); and
  :meth:`close` drains in-flight work before stopping the fleet
  (``drain=False`` terminates immediately instead).
* **Fault tolerance.**  Worker *death* is survived by re-dispatch (with
  capped exponential backoff), worker *hangs* by per-task deadlines: a
  heartbeat channel (each worker stamps a shared value at task start)
  lets the collector spot a task running past its deadline, kill and
  replace the worker, and fail exactly that task's future with
  :class:`~repro.errors.TaskTimeoutError` — deliberately *not*
  re-dispatching it, since Theorems 4.5/4.9 mean some query/document
  pairs legitimately never finish and would hang the replacement too.
  A per-query circuit breaker quarantines repeat offenders
  (:class:`~repro.errors.QueryQuarantinedError` fail-fast, half-open
  probes after a cool-down, :meth:`reinstate` to restore manually),
  and the ``on_overload`` policy picks what happens past the
  ``max_in_flight`` high-water mark: ``"block"`` (backpressure),
  ``"reject"`` (:class:`~repro.errors.OverloadedError` to the
  submitter) or ``"shed_oldest"`` (the oldest backlogged task is
  failed to make room).  :mod:`repro.runtime.faults` injects all of
  these failure modes deterministically for the chaos suite.
* **Asyncio front-end.**  ``await service.extract(query_id, docs)``
  evaluates a batch without blocking the event loop;
  :meth:`submit` returns a :class:`concurrent.futures.Future` usable
  from sync code or (via :meth:`gather`) from coroutines.  In-flight
  work is bounded by ``max_in_flight`` chunks (submission blocks — in
  a coroutine, parks in a thread — once the bound is hit), the
  backpressure that keeps an unbounded caller from flooding the task
  queues.  Cancelling an ``extract`` abandons its result but leaves
  the fleet fully serviceable.

Results are **byte-identical and in-order** versus the serial runtime:
chunks are submitted in document order and concatenated in submission
order, and each worker runs the exact serial per-document evaluation,
so a batch's answer is the same list-of-``SpanTuple``-lists whatever
the worker count, chunking, recycling or crash history.

::

    with SpannerService(workers=4) as service:
        logs = service.register(".*level{ERROR|WARN}.*")
        mail = service.register("(ε|.* )m{u{[a-z]+}@d{[a-z]+\\.[a-z]+}}( .*|ε)")
        f1 = service.submit(logs, log_lines)      # both queries share
        f2 = service.submit(mail, mail_bodies)    # ... the same workers
        answers = f1.result(), f2.result()

    async def serve():
        async with_service...  # or: await service.extract(logs, docs)
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import os
import pickle
import queue as queue_module
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, InvalidStateError, wait
from itertools import count, islice
from typing import TYPE_CHECKING, Awaitable, Iterable, Sequence

from ..errors import (
    OverloadedError,
    QueryQuarantinedError,
    ServiceClosedError,
    TaskTimeoutError,
    TransientTaskError,
)
from ..spans import SpanTuple
from ..vset.automaton import VSetAutomaton
from .compiled import CompiledSpanner
from .equality import CompiledEqualityQuery
from .faults import FaultPlan
from .tables import AutomatonTables
from .transport import (
    DEFAULT_SHM_THRESHOLD,
    ShmChunk,
    create_transport,
    open_chunk,
    read_document,
    release_chunk,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess

    from ..regex.ast import RegexFormula

__all__ = ["SpannerService"]

#: Documents per dispatched task (same granularity ParallelSpanner uses).
DEFAULT_CHUNK_SIZE = 16

#: A task is re-dispatched after a worker death at most this many times
#: in total before its future fails — the bound that keeps one
#: worker-killing ("poison") task from crashing replacement workers
#: forever.
MAX_TASK_ATTEMPTS = 3

#: Re-dispatch backoff: attempt ``n`` (1-based) waits
#: ``RETRY_BACKOFF_BASE * 2**(n-1)`` seconds, capped.  The base sits
#: just above the collector's poll interval so the first retry is
#: nearly immediate while repeat offenders stop monopolising workers.
RETRY_BACKOFF_BASE = 0.05
RETRY_BACKOFF_CAP = 1.0

#: What ``submit`` does once ``max_in_flight`` chunks are outstanding.
OVERLOAD_POLICIES = ("block", "shed_oldest", "reject")

#: Fleet-level failures (timeouts, lost workers, exhausted transient
#: retries) before a query's circuit breaker opens.
DEFAULT_QUARANTINE_AFTER = 3

#: Seconds a quarantined query waits before a half-open probe is let
#: through.
DEFAULT_QUARANTINE_COOLDOWN = 30.0

#: Distinguishes "caller passed None" (disable the deadline) from
#: "caller passed nothing" (inherit the query/service default).
_UNSET = object()

#: Tasks a worker may hold (one running + prefetch) before dispatch
#: falls back to the service backlog.  Keeping per-worker queues this
#: shallow is what bounds head-of-line blocking: a worker stuck on one
#: pathological chunk can strand at most one prefetched task, while
#: everything else drains to workers as they free up — the same
#: behavior a shared task queue would give, without losing the
#: per-worker queues that make artifact shipment and recycling
#: addressable.
MAX_WORKER_PREFETCH = 2


# -- Worker-process side ------------------------------------------------------
#
# Module-level so both fork and spawn start methods can address it.  A
# worker is a plain loop over its task queue; its ``engines`` dict is
# the per-process compile-at-most-once guarantee (artifacts arrive
# pickled at most once per worker, keyed by query fingerprint, and the
# process-wide caches of :mod:`repro.runtime.cache` back any further
# compilation the engines do internally).


def _materialize(artifact: object) -> object:
    """An unpickled shipped artifact, rebuilt into a serving engine."""
    if isinstance(artifact, AutomatonTables):
        # The equality-free contract: one tables object, rebuilt into a
        # spanner without rerunning any preprocessing.
        return CompiledSpanner.from_tables(artifact)
    # A self-contained engine (CompiledEqualityQuery, CompiledSpanner):
    # its pickle contract already ships everything it needs.
    return artifact


def _run_op(
    engine,
    op: str,
    items: "list[str] | ShmChunk",
    extra: int | None,
    encoding: str,
    errors: str,
) -> list:
    """One task's evaluation — exactly the serial per-document path.

    ``items`` is either the plain document/path list the pipe carried,
    or a :class:`ShmChunk` reference to a shared-memory segment the
    driver packed; either way the evaluation loop sees a sequence of
    strings (decoded lazily out of the shared buffer in the shm case),
    and the attachment is released before the result ships back.
    """
    docs = open_chunk(items)
    try:
        if op == "evaluate":
            if extra is None:
                return [list(engine.stream(doc)) for doc in docs]
            # Stop enumerating (polynomial delay) at the cap instead of
            # materializing combinatorially many tuples only to discard
            # them.
            return [list(islice(engine.stream(doc), extra)) for doc in docs]
        if op == "count":
            return [engine.count(doc, cap=extra) for doc in docs]
        if op == "files":
            # Only paths crossed the pipe; read the documents
            # worker-side (huge files decode straight from mmap).
            out: list[list[SpanTuple]] = []
            for path in docs:
                doc = read_document(path, encoding=encoding, errors=errors)
                stream = engine.stream(doc)
                out.append(
                    list(stream if extra is None else islice(stream, extra))
                )
            return out
        raise ValueError(f"unknown task op {op!r}")
    finally:
        release_chunk(docs)


def _fleet_worker(
    worker_id: int,
    task_queue,
    result_queue,
    heartbeat=None,
    encoding: str = "utf-8",
    errors: str = "strict",
    fault_plan: "FaultPlan | None" = None,
) -> None:
    """The worker loop: block on the task queue until told to stop.

    Exceptions are reported per task (the worker stays alive and keeps
    serving); only process death — crash, kill, recycle stop — ends the
    loop.  Results and failures go back tagged with the task id, so the
    driver resolves exactly the future that asked.

    ``heartbeat`` is a shared ``Array('d', 2)`` the worker stamps with
    ``(task_id, monotonic start time)`` when a task begins and
    ``(-1, now)`` when it ends — the driver's only window into a worker
    that has stopped answering.  ``time.monotonic`` is system-wide on
    the platforms we support, so driver-side age arithmetic is valid.
    The idle stamp lands *before* the result is enqueued: once a result
    is visible, the heartbeat can no longer name its task, so the
    deadline scan cannot kill a worker for work it already finished
    (the reverse race — kill just after the stamp, result in flight —
    is handled driver-side by at-most-once straggler dropping).

    ``fault_plan`` is the deterministic chaos hook (tests only); it
    runs after the heartbeat stamp so injected hangs age exactly like
    real ones.
    """
    engines: dict[str, object] = {}
    while True:
        msg = task_queue.get()
        if msg[0] == "stop":
            break
        _kind, task_id, attempt, query_id, payload, op, items, extra = msg
        if heartbeat is not None:
            with heartbeat.get_lock():
                heartbeat[0] = float(task_id)
                heartbeat[1] = time.monotonic()
        try:
            # Materialize a shipped artifact *before* any injected
            # fault: the driver marks the query shipped the moment the
            # message is enqueued, so a retry of this task may arrive
            # with ``payload=None`` — the engine must already be here.
            engine = engines.get(query_id)
            if engine is None:
                if payload is None:
                    raise RuntimeError(
                        f"worker {worker_id} has no artifact for query "
                        f"{query_id!r}"
                    )
                engine = _materialize(pickle.loads(payload))
                engines[query_id] = engine
            if fault_plan is not None:
                fault_plan.apply(task_id, attempt)
            out = _run_op(engine, op, items, extra, encoding, errors)
        except Exception as err:
            try:  # ship the real exception when it pickles
                pickle.dumps(err)
            except Exception:
                err = RuntimeError(f"{type(err).__name__}: {err}")
            result = ("fail", worker_id, task_id, err)
        else:
            result = ("done", worker_id, task_id, out)
        if heartbeat is not None:
            with heartbeat.get_lock():
                heartbeat[0] = -1.0
                heartbeat[1] = time.monotonic()
        result_queue.put(result)


# -- Driver side --------------------------------------------------------------


class _Task:
    """One dispatched chunk: its future, where it is, how often it ran.

    ``items`` is the *wire form* of the chunk — the plain document/path
    list for pipe transport, or the :class:`ShmChunk` reference whose
    segment the driver holds alive until this task resolves (so a crash
    re-dispatch re-sends the same reference without re-packing).
    """

    __slots__ = (
        "task_id", "query_id", "op", "items", "extra",
        "future", "worker", "attempts", "done", "bounded",
        "deadline", "not_before",
    )

    def __init__(
        self,
        task_id: int,
        query_id: str,
        op: str,
        items: "list[str] | ShmChunk",
        extra: int | None,
        bounded: bool,
        deadline: float | None = None,
    ):
        self.task_id = task_id
        self.query_id = query_id
        self.op = op
        self.items = items
        self.extra = extra
        self.future: Future = Future()
        self.worker: "_WorkerHandle | None" = None
        self.attempts = 0
        self.done = False
        self.bounded = bounded  # holds one max_in_flight slot
        self.deadline = deadline  # seconds of *execution* per attempt
        self.not_before = 0.0  # monotonic re-dispatch eligibility (backoff)


class _WorkerHandle:
    """Driver-side record of one worker process."""

    __slots__ = (
        "worker_id", "process", "task_queue", "heartbeat", "shipped",
        "in_flight", "assigned", "retiring", "stopped",
    )

    def __init__(
        self, worker_id: int, process: "BaseProcess", task_queue, heartbeat
    ):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.heartbeat = heartbeat  # shared (running task_id, stamp)
        self.shipped: set[str] = set()  # query ids this worker holds
        self.in_flight: dict[int, _Task] = {}
        self.assigned = 0  # lifetime task count (drives recycling)
        self.retiring = False  # no new assignments; stop when drained
        self.stopped = False  # stop sent (or crash/kill observed)

    def read_heartbeat(self) -> tuple[int, float]:
        """The (running task id, stamp) pair; task id is -1 when idle."""
        with self.heartbeat.get_lock():
            return int(self.heartbeat[0]), self.heartbeat[1]


class _Breaker:
    """Per-query circuit-breaker state (guarded by the service lock).

    closed (``opened_at is None``): counting consecutive fleet-level
    failures.  open: submissions fail fast until the cool-down elapses,
    then exactly one probe is admitted (``probe_at`` stamps it); the
    probe's success closes the breaker, its failure re-arms the
    cool-down.  ``probe_at`` is a timestamp rather than a flag so a
    probe that never resolves (shed, cancelled, lost in a close) merely
    delays the next probe by one cool-down instead of wedging the
    breaker half-open forever.
    """

    __slots__ = ("failures", "opened_at", "probe_at")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: float | None = None
        self.probe_at: float | None = None


class SpannerService:
    """A resident multi-query worker fleet with an asyncio front-end.

    Args:
        workers: fleet size; defaults to the machine's CPU count.
        chunk_size: documents per dispatched task (the granularity of
            load balancing, re-dispatch and recycling).
        max_tasks_per_worker: recycle a worker after it has been
            assigned this many tasks — it finishes its in-flight work,
            stops, and is replaced by a fresh process.  ``None`` (the
            default) never recycles.
        max_in_flight: chunks in flight across the whole service before
            :meth:`submit` blocks (backpressure); ``None`` = unbounded.
        mp_context: a :mod:`multiprocessing` start-method name
            ("fork", "spawn", "forkserver") or ``None`` for the
            platform default.
        transport: how in-memory documents reach the workers —
            ``"auto"`` (shared-memory segments for chunks whose encoded
            payload reaches ``shm_threshold`` bytes, the task pipe
            below it or where POSIX shm is missing), ``"shm"`` (always
            shared memory; raises
            :class:`~repro.runtime.transport.TransportUnavailableError`
            where unsupported) or ``"pipe"`` (always the task message,
            the pre-transport behavior).  File paths (``submit_files``)
            always ride the pipe — workers read those themselves.
        shm_threshold: the ``"auto"`` negotiation bound, in encoded
            bytes per chunk.
        encoding / errors: how workers decode file-backed documents
            (the ``files`` op); any :func:`codecs` name / error
            handler.  In-memory documents are never re-encoded with
            this codec — the shm transport uses its own fixed lossless
            wire codec.
        task_timeout: default per-task execution deadline in seconds;
            ``None`` (the default) never times out.  Override per query
            (``register(..., timeout=...)``) or per call
            (``submit*(..., timeout=...)``); the most specific setting
            wins, and an explicit ``timeout=None`` at a more specific
            level *disables* the inherited deadline.  A task past its
            deadline has its worker killed and replaced and its future
            failed with :class:`~repro.errors.TaskTimeoutError`.
        quarantine_after: consecutive fleet-level failures (timeouts,
            lost workers, exhausted transient retries — not ordinary
            per-task exceptions) before a query is quarantined.
        quarantine_cooldown: seconds a quarantined query waits before a
            half-open probe submission is admitted.
        on_overload: policy once ``max_in_flight`` chunks are
            outstanding — ``"block"`` (default: submission blocks, the
            pre-fault-tolerance backpressure), ``"reject"`` (submission
            raises :class:`~repro.errors.OverloadedError`) or
            ``"shed_oldest"`` (the oldest *backlogged* task's future is
            failed with ``OverloadedError`` to make room; falls back to
            blocking when nothing is sheddable).
        fault_plan: a :class:`~repro.runtime.faults.FaultPlan` shipped
            to every worker — deterministic chaos for the test suite;
            leave ``None`` in production.

    The service starts lazily on first use (or explicitly via
    :meth:`start` / ``with service:``) and must be closed —
    :meth:`close` drains and stops the fleet (and unlinks every
    shared-memory segment it still owns); the context manager does so
    on exit.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_tasks_per_worker: int | None = None,
        max_in_flight: int | None = None,
        mp_context: str | None = None,
        transport: str = "auto",
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        encoding: str = "utf-8",
        errors: str = "strict",
        task_timeout: float | None = None,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        quarantine_cooldown: float = DEFAULT_QUARANTINE_COOLDOWN,
        on_overload: str = "block",
        fault_plan: "FaultPlan | None" = None,
    ):
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        if max_tasks_per_worker is not None and max_tasks_per_worker < 1:
            raise ValueError(
                f"max_tasks_per_worker must be >= 1, got {max_tasks_per_worker}"
            )
        self.max_tasks_per_worker = max_tasks_per_worker
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = max_in_flight
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        self.task_timeout = task_timeout
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.quarantine_after = quarantine_after
        if quarantine_cooldown < 0:
            raise ValueError(
                f"quarantine_cooldown must be >= 0, got {quarantine_cooldown}"
            )
        self.quarantine_cooldown = quarantine_cooldown
        if on_overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"on_overload must be one of {OVERLOAD_POLICIES}, "
                f"got {on_overload!r}"
            )
        self.on_overload = on_overload
        self.fault_plan = fault_plan
        self.mp_context = mp_context
        self.encoding = encoding
        self.errors = errors
        self.transport = transport
        # None = pure pipe; otherwise the owning side of the
        # shared-memory document transport (validates the mode string).
        self._doc_transport = create_transport(
            transport, shm_threshold=shm_threshold
        )

        self._lock = threading.RLock()
        self._registry: dict[str, bytes] = {}  # query id -> pickled artifact
        self._query_timeouts: dict[str, float | None] = {}  # per-query override
        self._breakers: dict[str, _Breaker] = {}  # query id -> breaker
        self._workers: list[_WorkerHandle] = []
        self._all_processes: list["BaseProcess"] = []
        self._tasks: dict[int, _Task] = {}  # every unresolved task
        self._backlog: deque[_Task] = deque()  # awaiting an eligible worker
        self._task_ids = count()
        self._worker_ids = count()
        self._results = None  # shared result queue (created on start)
        self._collector: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._inflight_slots = (
            threading.BoundedSemaphore(max_in_flight)
            if max_in_flight is not None
            else None
        )
        self._started = False
        self._closing = False
        self._closed = False
        self._completed = 0
        self._recycled = 0
        self._crashed = 0
        self._timed_out = 0  # tasks failed by their deadline
        self._timeout_kills = 0  # workers killed for a hung task
        self._retried = 0  # re-dispatches (crash + transient)
        self._shed = 0  # tasks failed by the shed_oldest policy

    # -- Introspection ------------------------------------------------------
    @property
    def queries(self) -> tuple[str, ...]:
        """The registered query ids, in registration order."""
        with self._lock:
            return tuple(self._registry)

    @property
    def tasks_completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def workers_recycled(self) -> int:
        with self._lock:
            return self._recycled

    @property
    def workers_crashed(self) -> int:
        with self._lock:
            return self._crashed

    @property
    def tasks_timed_out(self) -> int:
        with self._lock:
            return self._timed_out

    @property
    def tasks_retried(self) -> int:
        with self._lock:
            return self._retried

    @property
    def tasks_shed(self) -> int:
        with self._lock:
            return self._shed

    @property
    def quarantined_queries(self) -> tuple[str, ...]:
        """Query ids whose circuit breaker is currently open."""
        with self._lock:
            return tuple(
                qid
                for qid, b in self._breakers.items()
                if b.opened_at is not None
            )

    def health(self) -> dict:
        """A point-in-time fleet health snapshot (plain dict, loggable).

        Per-worker: liveness, tasks in flight, lifetime assignments,
        the task it is executing right now (from the heartbeat) and how
        long ago that heartbeat was stamped — a large ``heartbeat_age``
        on a worker with a ``running_task`` is the signature of a hang.
        Fleet-wide: backlog depth, outstanding tasks, open quarantines
        and the lifetime fault counters.
        """
        with self._lock:
            now = time.monotonic()
            workers = []
            for w in self._workers:
                hb_task, hb_stamp = w.read_heartbeat()
                running = hb_task >= 0
                workers.append(
                    {
                        "worker_id": w.worker_id,
                        "pid": w.process.pid,
                        "alive": w.process.is_alive(),
                        "tasks_in_flight": len(w.in_flight),
                        "tasks_assigned": w.assigned,
                        "running_task": hb_task if running else None,
                        "heartbeat_age": (now - hb_stamp) if running else None,
                        "retiring": w.retiring,
                    }
                )
            quarantined = {
                qid: {
                    "failures": b.failures,
                    "open_for": now - b.opened_at,
                }
                for qid, b in self._breakers.items()
                if b.opened_at is not None
            }
            return {
                "workers": workers,
                "backlog_depth": len(self._backlog),
                "tasks_outstanding": len(self._tasks),
                "queries_registered": len(self._registry),
                "quarantined_queries": quarantined,
                "counters": {
                    "tasks_completed": self._completed,
                    "tasks_timed_out": self._timed_out,
                    "tasks_retried": self._retried,
                    "tasks_shed": self._shed,
                    "workers_recycled": self._recycled,
                    "workers_crashed": self._crashed,
                    "workers_killed_on_timeout": self._timeout_kills,
                    "worker_restarts": (
                        self._recycled + self._crashed + self._timeout_kills
                    ),
                },
            }

    def reinstate(self, query_id: str) -> bool:
        """Manually clear a query's quarantine (and failure history).

        Returns ``True`` when the query had an open breaker.  The
        half-open probe path does this automatically after a cool-down;
        ``reinstate`` is the operator override for "the bad corpus is
        gone, let it through now".
        """
        with self._lock:
            breaker = self._breakers.pop(query_id, None)
            return breaker is not None and breaker.opened_at is not None

    def __repr__(self) -> str:
        return (
            f"SpannerService(workers={self.workers}, "
            f"queries={len(self._registry)}, "
            f"completed={self._completed}, recycled={self._recycled}, "
            f"crashed={self._crashed})"
        )

    # -- Registration -------------------------------------------------------
    @staticmethod
    def _artifact_for(query: object) -> object:
        """The ship-to-workers artifact for anything register() accepts.

        The pickle contract matches :class:`ParallelSpanner`'s:
        equality-free spanners ship their
        :class:`~repro.runtime.tables.AutomatonTables` (a worker
        rebuilds a ``CompiledSpanner`` around them without rerunning
        preprocessing); self-contained engines ship themselves.
        """
        if isinstance(query, CompiledSpanner):
            return query.tables
        if isinstance(query, (CompiledEqualityQuery, AutomatonTables)):
            return query
        return CompiledSpanner(query).tables  # automaton / formula / syntax

    def register(
        self,
        query: (
            "CompiledSpanner | CompiledEqualityQuery | AutomatonTables "
            "| VSetAutomaton | RegexFormula | str"
        ),
        *,
        query_id: str | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> str:
        """Register a query with the fleet; returns its id.

        The id is a fingerprint of the pickled compiled artifact, so
        registering the same compiled query twice dedupes to one entry
        (and one shipment per worker).  Pass ``query_id`` to pick a
        stable name; re-using a name for a *different* artifact raises.
        Registration is allowed at any time — workers receive the
        artifact lazily, with the first task that needs it.

        ``timeout`` sets this query's per-task deadline, overriding the
        service's ``task_timeout`` (``None`` disables the deadline for
        this query; omit it to inherit the service default).
        """
        payload = pickle.dumps(
            self._artifact_for(query), protocol=pickle.HIGHEST_PROTOCOL
        )
        qid = (
            query_id
            if query_id is not None
            else "q" + hashlib.sha256(payload).hexdigest()[:16]
        )
        if timeout is not _UNSET and timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        with self._lock:
            if self._closing:
                raise ServiceClosedError("SpannerService is closed")
            existing = self._registry.get(qid)
            if existing is not None and existing != payload:
                raise ValueError(
                    f"query id {qid!r} already registered with a "
                    "different artifact"
                )
            self._registry[qid] = payload
            if timeout is not _UNSET:
                self._query_timeouts[qid] = timeout
        return qid

    # -- Lifecycle ----------------------------------------------------------
    def start(self) -> "SpannerService":
        """Spawn the fleet (idempotent; called lazily by submission)."""
        with self._lock:
            if self._closing:
                raise ServiceClosedError("SpannerService is closed")
            if self._started:
                return self
            ctx = multiprocessing.get_context(self.mp_context)
            self._mp_ctx: "BaseContext" = ctx
            self._results = ctx.Queue()
            for _ in range(self.workers):
                self._spawn_worker()
            self._collector = threading.Thread(
                target=self._collector_loop,
                name="spanner-service-collector",
                daemon=True,
            )
            self._collector.start()
            self._started = True
        return self

    def __enter__(self) -> "SpannerService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the fleet.

        ``drain=True`` (the default) waits for every in-flight and
        backlogged task to resolve, then stops the workers gracefully;
        with a ``timeout``, tasks still unresolved when it expires are
        *failed* with :class:`~repro.errors.ServiceClosedError` (never
        left pending), and the same budget bounds the worker joins —
        ``close(drain=True, timeout=t)`` returns in roughly ``t`` plus
        termination overhead, whatever the fleet is stuck on.
        ``drain=False`` cancels outstanding futures and terminates the
        worker processes immediately.  Either way the service rejects
        new work afterwards.
        """
        deadline = None if timeout is None else time.monotonic() + timeout

        def budget(default: float) -> float:
            if deadline is None:
                return default
            return max(0.0, deadline - time.monotonic())

        with self._lock:
            if self._closed:
                return
            self._closing = True
            outstanding = [t.future for t in self._tasks.values()]
            started = self._started
        if drain and started and outstanding:
            wait(outstanding, timeout=timeout)
        leftovers: list[_Task] = []
        with self._lock:
            for task in self._tasks.values():
                task.done = True
                leftovers.append(task)
            self._tasks.clear()
            self._backlog.clear()
            for w in self._workers:
                if not w.stopped:
                    if drain:
                        w.task_queue.put(("stop",))
                    w.stopped = True
            self._workers.clear()
        # A drain that gave up (timeout expired with work unresolved)
        # FAILS the leftovers — a pending future after close() returns
        # would strand its caller forever.  A no-drain close cancels
        # instead: the caller asked for abandonment, not an error.
        detail = (
            f" (drain timed out after {timeout}s)" if timeout is not None else ""
        )
        leftover_exc = (
            ServiceClosedError(
                f"service closed before this task completed{detail}"
            )
            if drain
            else _CANCELLED
        )
        for task in leftovers:
            self._finish(task, leftover_exc, None)
        self._stop_event.set()
        if self._collector is not None:
            self._collector.join(timeout=budget(10))
        for proc in self._all_processes:
            if drain:
                proc.join(timeout=budget(10))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=budget(10))
            if proc.is_alive():  # stuck past the budget: no mercy
                proc.kill()
                proc.join(timeout=1)
        if self._results is not None:
            self._results.close()
        if self._doc_transport is not None:
            # Belt over the per-task handshake: whatever segments are
            # somehow still owned (e.g. a collector that died mid-
            # resolution) are unlinked now — /dev/shm ends clean.
            self._doc_transport.close()
        with self._lock:
            self._closed = True

    # -- Submission ---------------------------------------------------------
    def submit_chunk(
        self,
        query_id: str,
        items: Sequence[str],
        *,
        op: str = "evaluate",
        extra: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Future:
        """Dispatch one chunk; returns the future of its result list.

        The building block the batch APIs (and
        :class:`~repro.runtime.parallel.ParallelSpanner`'s streaming
        sessions) fan out over.  While ``max_in_flight`` chunks are
        already outstanding the ``on_overload`` policy applies (block,
        reject, or shed the oldest backlogged task).  ``timeout``
        overrides the query/service deadline for this chunk alone.
        Raises :class:`~repro.errors.QueryQuarantinedError` — before
        consuming an in-flight slot or any worker time — while the
        query's circuit breaker is open.
        """
        items = list(items)
        if timeout is not _UNSET and timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if not items:
            fut: Future = Future()
            fut.set_result([])
            return fut
        self.start()
        with self._lock:
            if self._closing:
                raise ServiceClosedError("SpannerService is closed")
            if query_id not in self._registry:
                raise KeyError(f"unknown query id {query_id!r}")
            self._admit_locked(query_id)
            deadline = timeout
            if deadline is _UNSET:
                deadline = self._query_timeouts.get(query_id, _UNSET)
            if deadline is _UNSET:
                deadline = self.task_timeout
        bounded = self._inflight_slots is not None
        if bounded:
            self._acquire_slot()
        # Pack only after holding an in-flight slot: a submitter parked
        # on the backpressure bound must not pin a packed segment's
        # bytes beyond the configured max_in_flight budget.
        wire = self._pack(items, op)
        with self._lock:
            if self._closing:
                if bounded:
                    self._inflight_slots.release()
                self._release_wire(wire)
                raise ServiceClosedError("SpannerService is closed")
            task = _Task(
                next(self._task_ids), query_id, op, wire, extra, bounded,
                deadline,
            )
            self._tasks[task.task_id] = task
            self._dispatch_or_backlog(task)
        return task.future

    def _admit_locked(self, query_id: str) -> None:
        """Fail fast while ``query_id``'s breaker is open (lock held).

        Once the cool-down has elapsed, admits exactly one *probe*
        submission (half-open); further submissions keep failing until
        the probe resolves — or until a full extra cool-down passes, in
        case the probe itself was lost (shed, cancelled, closed away).
        """
        breaker = self._breakers.get(query_id)
        if breaker is None or breaker.opened_at is None:
            return
        now = time.monotonic()
        ready_at = breaker.opened_at + self.quarantine_cooldown
        if breaker.probe_at is not None:
            ready_at = max(ready_at, breaker.probe_at + self.quarantine_cooldown)
        if now >= ready_at:
            breaker.probe_at = now  # this submission is the probe
            return
        raise QueryQuarantinedError(query_id, breaker.failures, ready_at - now)

    def _acquire_slot(self) -> None:
        """One ``max_in_flight`` slot, by way of the overload policy."""
        slots = self._inflight_slots
        if slots.acquire(blocking=False):
            return
        if self.on_overload == "block":
            slots.acquire()
            return
        if self.on_overload == "reject":
            raise OverloadedError(
                f"max_in_flight={self.max_in_flight} chunks already "
                "outstanding (on_overload='reject')"
            )
        # shed_oldest: fail backlogged tasks oldest-first until a slot
        # frees up.  Only the backlog is sheddable — a task already on
        # a worker's queue cannot be un-sent — so a fully-dispatched
        # fleet degrades to blocking, which is the right floor: the
        # policy bounds *queue growth*, it does not abandon running
        # work.
        while not slots.acquire(blocking=False):
            with self._lock:
                shed = None
                while self._backlog:
                    candidate = self._backlog.popleft()
                    if candidate.done:
                        continue
                    candidate.done = True
                    self._tasks.pop(candidate.task_id, None)
                    self._shed += 1
                    shed = candidate
                    break
            if shed is None:
                slots.acquire()
                return
            # _finish releases the shed task's slot; another submitter
            # may win the race to it, hence the retry loop.
            self._finish(
                shed,
                OverloadedError(
                    "task shed under load: newer work displaced it "
                    "(on_overload='shed_oldest')"
                ),
                None,
            )

    def _pack(self, items: list[str], op: str) -> "list[str] | ShmChunk":
        """The transport negotiation: the wire form of one chunk.

        ``files`` chunks are path lists (the workers read the bytes
        themselves — already off the pipe); in-memory chunks go through
        the shared-memory transport when one is configured and the
        chunk clears its size threshold, and ride the task message
        otherwise.  Packing always uses the transport's fixed lossless
        wire codec — ``self.encoding`` only governs how workers read
        *files*.
        """
        if self._doc_transport is None or op == "files":
            return items
        ref = self._doc_transport.pack(items)
        return items if ref is None else ref

    def _release_wire(self, wire: "list[str] | ShmChunk") -> None:
        """The owner half of the release handshake (no-op for pipe)."""
        if self._doc_transport is not None and isinstance(wire, ShmChunk):
            self._doc_transport.release(wire)

    def submit(
        self,
        query_id: str,
        docs: Iterable[str],
        *,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Future:
        """Evaluate a batch; the future resolves to one list per doc.

        Documents are split into ``chunk_size`` tasks balanced across
        the fleet; the combined result is concatenated in input order —
        byte-identical to the serial ``evaluate_many``.  ``timeout``
        overrides the per-task deadline for every chunk of this batch.
        """
        return self._submit_batch(query_id, docs, "evaluate", limit, timeout)

    def submit_files(
        self,
        query_id: str,
        paths: Iterable[str],
        *,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Future:
        """Like :meth:`submit`, but workers read the documents by path."""
        return self._submit_batch(query_id, paths, "files", limit, timeout)

    def submit_counts(
        self,
        query_id: str,
        docs: Iterable[str],
        *,
        cap: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Future:
        """Per-document distinct-tuple counts (no tuple decoding)."""
        return self._submit_batch(query_id, docs, "count", cap, timeout)

    def _submit_batch(
        self,
        query_id: str,
        items: Iterable[str],
        op: str,
        extra: int | None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Future:
        items = list(items)
        chunk_futures = [
            self.submit_chunk(query_id, items[i : i + self.chunk_size],
                              op=op, extra=extra, timeout=timeout)
            for i in range(0, len(items), self.chunk_size)
        ]
        return _combine(chunk_futures)

    # -- Asyncio front-end --------------------------------------------------
    async def extract(
        self,
        query_id: str,
        docs: Iterable[str],
        *,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> list[list[SpanTuple]]:
        """``await``-able :meth:`submit`: one ``list[SpanTuple]`` per doc.

        Submission happens in a thread (it may block on the
        ``max_in_flight`` backpressure bound), so the event loop never
        stalls.  Cancelling the coroutine abandons the result — the
        chunks already dispatched still complete worker-side and the
        fleet stays fully serviceable.  A chunk that exceeds its
        deadline (``timeout`` here, else the query/service default)
        rejects the ``await`` with
        :class:`~repro.errors.TaskTimeoutError` — a clean exception on
        the awaiting coroutine, never a wedged event loop.
        """
        docs = list(docs)
        future = await asyncio.to_thread(
            self.submit, query_id, docs, limit=limit, timeout=timeout
        )
        return await asyncio.wrap_future(future)

    async def extract_files(
        self,
        query_id: str,
        paths: Iterable[str],
        *,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> list[list[SpanTuple]]:
        """``await``-able :meth:`submit_files`."""
        paths = list(paths)
        future = await asyncio.to_thread(
            self.submit_files, query_id, paths, limit=limit, timeout=timeout
        )
        return await asyncio.wrap_future(future)

    @staticmethod
    async def gather(*items: "Future | Awaitable") -> list:
        """Await a mix of coroutines and service futures, in order."""
        aws = [
            asyncio.wrap_future(item) if isinstance(item, Future) else item
            for item in items
        ]
        return await asyncio.gather(*aws)

    # -- Scheduling (driver internals; self._lock held throughout) ----------
    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = next(self._worker_ids)
        task_queue = self._mp_ctx.Queue()
        # [running task id (or -1.0), monotonic stamp] — two doubles
        # under one lock so a reader never sees a torn pair.
        heartbeat = self._mp_ctx.Array("d", [-1.0, 0.0])
        process = self._mp_ctx.Process(
            target=_fleet_worker,
            args=(
                worker_id, task_queue, self._results, heartbeat,
                self.encoding, self.errors, self.fault_plan,
            ),
            name=f"spanner-service-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(worker_id, process, task_queue, heartbeat)
        self._workers.append(handle)
        self._all_processes.append(process)
        return handle

    def _pick_worker(self) -> _WorkerHandle | None:
        eligible = [
            w
            for w in self._workers
            if not w.retiring
            and not w.stopped
            and len(w.in_flight) < MAX_WORKER_PREFETCH
            and w.process.is_alive()
        ]
        if not eligible:
            return None
        return min(eligible, key=lambda w: len(w.in_flight))

    def _dispatch_or_backlog(self, task: _Task) -> None:
        worker = self._pick_worker()
        if worker is None:
            # Every worker is busy to its prefetch bound (or
            # retiring/replacing); the collector hands backlogged tasks
            # to workers as their in-flight chunks complete.
            self._backlog.append(task)
            return
        self._assign(worker, task)

    def _assign(self, worker: _WorkerHandle, task: _Task) -> None:
        # Ship the artifact with the first task that needs it on this
        # worker — at most one shipment per (worker, query) lifetime.
        payload = None
        if task.query_id not in worker.shipped:
            payload = self._registry[task.query_id]
            worker.shipped.add(task.query_id)
        task.worker = worker
        worker.in_flight[task.task_id] = task
        worker.assigned += 1
        if (
            self.max_tasks_per_worker is not None
            and worker.assigned >= self.max_tasks_per_worker
        ):
            worker.retiring = True
        worker.task_queue.put(
            (
                "task", task.task_id, task.attempts + 1, task.query_id,
                payload, task.op, task.items, task.extra,
            )
        )

    # -- The collector thread -----------------------------------------------
    def _collector_loop(self) -> None:
        # The collector must never die with futures outstanding — a
        # silently dead daemon thread would strand every caller in
        # ``future.result()``.  Anything unexpected (spawn failures are
        # already tolerated in _ensure_fleet; this catches the rest)
        # fails the outstanding work loudly instead of hanging it, and
        # the loop keeps serving.
        while not self._collector_iteration():
            pass

    def _collector_iteration(self) -> bool:
        """One collector pass; True when the loop should stop."""
        resolutions: list[tuple[_Task, BaseException | None, object]] = []
        try:
            try:
                msg = self._results.get(timeout=0.05)
            except queue_module.Empty:
                msg = None
            except (OSError, ValueError):  # queue closed mid-shutdown
                return True
            with self._lock:
                if msg is not None:
                    self._handle_result(msg, resolutions)
                    while True:  # drain whatever else already arrived
                        try:
                            extra_msg = self._results.get_nowait()
                        except queue_module.Empty:
                            break
                        self._handle_result(extra_msg, resolutions)
                self._check_deadlines(resolutions)
                self._reap_crashed(resolutions)
                self._recycle_retiring()
                self._ensure_fleet()
                self._drain_backlog()
                self._prune_processes()
                stopping = self._stop_event.is_set()
            for task, exc, value in resolutions:
                self._finish(task, exc, value)
        except Exception as err:  # pragma: no cover - defensive
            for task, _exc, _value in resolutions:
                self._finish(
                    task,
                    RuntimeError(f"serving fleet scheduler failed: {err!r}"),
                    None,
                )
            self._fail_all_outstanding(err)
            return self._stop_event.is_set()
        return stopping

    def _fail_all_outstanding(self, err: Exception) -> None:
        """Resolve every unfinished future with ``err`` (never hang)."""
        with self._lock:
            stranded = [t for t in self._tasks.values() if not t.done]
            for task in stranded:
                task.done = True
            self._tasks.clear()
            self._backlog.clear()
        for task in stranded:
            self._finish(
                task,
                RuntimeError(f"serving fleet scheduler failed: {err!r}"),
                None,
            )

    def _handle_result(self, msg, resolutions) -> None:
        kind, _worker_id, task_id, payload = msg
        task = self._tasks.get(task_id)
        if task is None or task.done:
            # A straggler result for a task already re-dispatched and
            # resolved elsewhere: drop it — at-most-once resolution is
            # what keeps re-dispatch from duplicating tuples.
            return
        if task.worker is not None:
            task.worker.in_flight.pop(task_id, None)
            task.worker = None
        if kind == "fail" and isinstance(payload, TransientTaskError):
            # The worker said "not my fault, try again" — shm attach
            # race, injected transient fault.  Backoff + re-dispatch,
            # bounded by the same attempt budget as crashes.
            self._retry_or_fail(task, resolutions, payload)
            return
        self._tasks.pop(task_id, None)
        task.done = True
        self._completed += 1
        if kind == "done":
            # Only clean completions reset the breaker: ordinary task
            # exceptions say nothing fleet-level either way.
            self._record_success_locked(task.query_id)
            resolutions.append((task, None, payload))
        else:
            resolutions.append((task, payload, None))

    def _check_deadlines(self, resolutions) -> None:
        """Kill workers whose running task has outlived its deadline.

        The heartbeat names the task a worker is executing and when it
        started; a deadlined task older than its budget gets its worker
        killed (SIGKILL — a genuinely hung process may ignore SIGTERM),
        its future failed with :class:`TaskTimeoutError`, and its
        query's breaker charged.  The task is NOT re-dispatched — see
        the class docstring — but the worker's *prefetched* tasks never
        started running, so those go back through the retry path like
        crash orphans.  ``_ensure_fleet`` respawns the replacement on
        this same collector pass, so detection-to-replacement is one
        0.05s tick past the deadline.
        """
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.stopped or not worker.process.is_alive():
                continue
            hb_task, hb_stamp = worker.read_heartbeat()
            if hb_task < 0:
                continue
            task = worker.in_flight.get(hb_task)
            if task is None or task.done or task.deadline is None:
                continue
            if now - hb_stamp <= task.deadline:
                continue
            worker.stopped = True  # _reap_crashed must not double-count
            self._workers.remove(worker)
            worker.process.kill()
            self._timeout_kills += 1
            worker.in_flight.pop(task.task_id, None)
            self._tasks.pop(task.task_id, None)
            task.done = True
            task.worker = None
            self._timed_out += 1
            self._record_failure_locked(task.query_id)
            resolutions.append(
                (
                    task,
                    TaskTimeoutError(
                        f"task for query {task.query_id!r} exceeded its "
                        f"{task.deadline}s deadline "
                        f"(ran {now - hb_stamp:.2f}s); worker "
                        f"{worker.worker_id} killed"
                    ),
                    None,
                )
            )
            self._orphan_worker_tasks(worker, resolutions)

    def _reap_crashed(self, resolutions) -> None:
        for worker in list(self._workers):
            if worker.stopped or worker.process.is_alive():
                continue
            # Died without being told to stop: a crash.  Replace it and
            # re-dispatch everything it was holding.
            worker.stopped = True
            self._workers.remove(worker)
            self._crashed += 1
            self._orphan_worker_tasks(worker, resolutions)

    def _orphan_worker_tasks(self, worker: _WorkerHandle, resolutions) -> None:
        """Route a dead worker's in-flight tasks through retry/give-up."""
        orphans = list(worker.in_flight.values())
        worker.in_flight.clear()
        for task in orphans:
            if task.done:
                continue
            task.worker = None
            self._retry_or_fail(
                task,
                resolutions,
                RuntimeError(
                    f"task for query {task.query_id!r} lost "
                    f"{task.attempts + 1} workers; giving up"
                ),
            )

    def _retry_or_fail(
        self, task: _Task, resolutions, give_up_exc: BaseException
    ) -> None:
        """One more attempt with backoff — or fail and charge the breaker.

        The backoff is capped exponential in the attempt number; the
        task sits in the backlog until ``not_before`` passes, so a
        repeatedly-failing task stops hammering replacement workers
        while everything else flows around it.
        """
        task.attempts += 1
        if task.attempts >= MAX_TASK_ATTEMPTS:
            task.done = True
            self._tasks.pop(task.task_id, None)
            self._record_failure_locked(task.query_id)
            resolutions.append((task, give_up_exc, None))
            return
        self._retried += 1
        task.not_before = time.monotonic() + min(
            RETRY_BACKOFF_BASE * (2 ** (task.attempts - 1)),
            RETRY_BACKOFF_CAP,
        )
        self._backlog.append(task)

    # -- Circuit breakers (self._lock held) -----------------------------------
    def _record_failure_locked(self, query_id: str) -> None:
        """A fleet-level failure: deadline kill, lost workers, or
        exhausted transient retries.  Ordinary worker exceptions (a bad
        path in ``submit_files``, a decode error) do NOT land here —
        they indict the input, not the fleet, and must never quarantine
        a query other inputs are using fine.
        """
        breaker = self._breakers.setdefault(query_id, _Breaker())
        breaker.failures += 1
        now = time.monotonic()
        if breaker.opened_at is not None:
            # Open already (this was the probe, or a straggler): re-arm
            # the cool-down from now.
            breaker.opened_at = now
            breaker.probe_at = None
        elif breaker.failures >= self.quarantine_after:
            breaker.opened_at = now

    def _record_success_locked(self, query_id: str) -> None:
        # Consecutive-failure semantics: any clean completion (probe or
        # otherwise) clears the query's whole failure history.
        self._breakers.pop(query_id, None)

    def _recycle_retiring(self) -> None:
        for worker in list(self._workers):
            if worker.retiring and not worker.stopped and not worker.in_flight:
                worker.task_queue.put(("stop",))
                worker.stopped = True
                self._workers.remove(worker)
                self._recycled += 1

    def _ensure_fleet(self) -> None:
        """Keep the fleet at full strength (replaces crashed/recycled
        workers).  A failed spawn — PID/memory pressure — is tolerated:
        the tasks stay backlogged and the next collector pass retries,
        so transient resource exhaustion degrades instead of deadlocks.
        """
        if self._closing and not self._tasks:
            return
        while len(self._workers) < self.workers:
            try:
                self._spawn_worker()
            except Exception:
                break  # retry on the next collector pass

    def _prune_processes(self) -> None:
        """Reap exited worker processes from the lifetime list.

        A recycling service replaces workers indefinitely; without
        pruning, ``_all_processes`` (kept so ``close`` can join
        everything) would grow without bound over the fleet's life.
        """
        if len(self._all_processes) <= 2 * self.workers:
            return
        alive = []
        for process in self._all_processes:
            if process.is_alive():
                alive.append(process)
            else:
                process.join(timeout=0)  # reap the zombie
        self._all_processes = alive

    def _drain_backlog(self) -> None:
        # Tasks still serving a retry backoff (not_before in the
        # future) are skipped, not reordered: they return to the front
        # of the backlog and a later collector pass (ticks every 0.05s)
        # dispatches them once eligible.
        now = time.monotonic()
        deferred: deque[_Task] = deque()
        while self._backlog:
            task = self._backlog[0]
            if task.not_before > now:
                deferred.append(self._backlog.popleft())
                continue
            worker = self._pick_worker()
            if worker is None:
                break
            self._assign(worker, self._backlog.popleft())
        while deferred:
            self._backlog.appendleft(deferred.pop())

    # -- Future resolution (never under self._lock) --------------------------
    def _finish(
        self, task: _Task, exc: BaseException | None, value: object
    ) -> None:
        # The resolution IS the release handshake: whatever way the
        # task ended — result, failure, cancellation, shutdown — its
        # shared-memory segment (if any) loses its one reference here
        # and is unlinked by the owner.  Runs before the cancelled
        # check below so an abandoned future can never pin a segment.
        self._release_wire(task.items)
        if task.bounded and self._inflight_slots is not None:
            self._inflight_slots.release()
        future = task.future
        if future.cancelled():
            return
        try:
            if exc is _CANCELLED:
                future.cancel()
            elif exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(value)
        except InvalidStateError:  # cancelled concurrently by a caller
            pass


#: Sentinel: resolve a task's future by cancellation (terminate path).
_CANCELLED = CancelledError()


def _combine(chunk_futures: list[Future]) -> Future:
    """One future over many chunk futures, results concatenated in order."""
    aggregate: Future = Future()
    if not chunk_futures:
        aggregate.set_result([])
        return aggregate
    remaining = [len(chunk_futures)]
    remaining_lock = threading.Lock()

    def on_done(_f: Future) -> None:
        with remaining_lock:
            remaining[0] -= 1
            if remaining[0]:
                return
        out: list = []
        try:
            for chunk in chunk_futures:
                out.extend(chunk.result())
        except BaseException as err:
            if not aggregate.cancelled():
                try:
                    aggregate.set_exception(err)
                except InvalidStateError:
                    pass
            return
        if not aggregate.cancelled():
            try:
                aggregate.set_result(out)
            except InvalidStateError:
                pass

    for chunk in chunk_futures:
        chunk.add_done_callback(on_done)
    return aggregate
