"""The long-lived serving fleet: queue-fed workers, many queries, one pool.

:class:`~repro.runtime.parallel.ParallelSpanner` (PR 2/3) shards one
compiled artifact across a pool that lives for a batch call or a
context-manager scope and serves exactly **one** query.  The paper's
compile-once/evaluate-many split (Theorem 3.3, Lemma 3.10) pays off in
proportion to how long the compiled artifact outlives its compilation —
a serving system should therefore keep the workers *resident* and let
every registered query share them.  :class:`SpannerService` is that
fleet:

* **Queue-fed workers.**  Each worker process owns a dedicated task
  queue and blocks on it; the driver assigns chunks to the least-loaded
  healthy worker.  One shared result queue carries answers (and
  failures) back, tagged by task id, so results resolve strictly to the
  futures that requested them whatever order workers finish in.
* **Many queries per worker.**  Queries — equality-free spanners, vset
  extractors and fused :class:`~repro.runtime.equality.CompiledEqualityQuery`
  workloads alike — are registered once, keyed by a *fingerprint* of
  their pickled compiled artifact.  A worker receives a query's
  artifact at most once for its lifetime (the driver tracks what each
  worker has been shipped) and materializes it into its process-wide
  engine table, so however many tasks it serves it compiles each query
  exactly once.  Re-registering an identical query is a no-op returning
  the same id.
* **Shared-memory document transport.**  In-memory corpora do not have
  to ride the task pipe: with ``transport="auto"`` (the default) a
  chunk whose encoded payload clears a size threshold is packed into a
  ref-counted ``multiprocessing.shared_memory`` segment
  (:mod:`repro.runtime.transport`) and the task message carries only a
  ``(segment, index)`` reference; workers decode documents lazily out
  of the shared buffer and the driver unlinks each segment the moment
  its task resolves — an explicit release handshake, no GC, no leaked
  ``/dev/shm`` entries after crashes, recycles or abandoned sessions.
  ``transport="shm"``/``"pipe"`` force either side; platforms without
  POSIX shm fall back to the pipe under ``"auto"``.
* **Graceful lifecycle.**  Workers are recycled after
  ``max_tasks_per_worker`` tasks (finish in-flight work, stop, get
  replaced — results stay byte-identical across a recycle); a worker
  that *dies* has its in-flight tasks re-dispatched to a healthy worker
  (at-most-once resolution: a straggler result for an already-resolved
  task is dropped, so tuples are neither lost nor duplicated); and
  :meth:`close` drains in-flight work before stopping the fleet
  (``drain=False`` terminates immediately instead).
* **Fault tolerance.**  Worker *death* is survived by re-dispatch (with
  capped exponential backoff), worker *hangs* by per-task deadlines: a
  heartbeat channel (each worker stamps a shared value at task start)
  lets the collector spot a task running past its deadline, kill and
  replace the worker, and fail exactly that task's future with
  :class:`~repro.errors.TaskTimeoutError` — deliberately *not*
  re-dispatching it, since Theorems 4.5/4.9 mean some query/document
  pairs legitimately never finish and would hang the replacement too.
  A per-query circuit breaker quarantines repeat offenders
  (:class:`~repro.errors.QueryQuarantinedError` fail-fast, half-open
  probes after a cool-down, :meth:`reinstate` to restore manually),
  and the ``on_overload`` policy picks what happens past the
  ``max_in_flight`` high-water mark: ``"block"`` (backpressure),
  ``"reject"`` (:class:`~repro.errors.OverloadedError` to the
  submitter) or ``"shed_oldest"`` (the oldest backlogged task is
  failed to make room).  :mod:`repro.runtime.faults` injects all of
  these failure modes deterministically for the chaos suite.
* **Resource governance.**  The time-domain defenses above assume the
  fleet has memory to run in; the resource domain gets its own layer.
  A ``shm_budget`` bounds the transport's segment bytes — a chunk the
  budget (or ``/dev/shm`` itself) cannot fit degrades to the task pipe
  for that chunk, counted, never fatal.  Per-document result caps
  (``max_tuples`` / ``max_result_bytes``, service/query/call scoped)
  stop the combinatorially large outputs Theorem 5.4 allows at the
  enumeration boundary: ``on_result_limit="error"`` fails exactly that
  task with :class:`~repro.errors.ResultLimitError` (never charging
  the query's breaker — the *input* is indicted, not the fleet);
  ``"truncate"`` returns the exact serial prefix, counted.  A memory
  watchdog reads each worker's RSS off the heartbeat channel and
  drain-recycles past ``worker_memory_limit`` (hard-kills only past
  ``worker_memory_hard_limit``).  And ``register()`` practices
  admission control: an automaton-size estimate gates
  ``max_compile_states`` before compiling, and ``compile_timeout``
  runs the compilation under the fleet's deadline pattern —
  :class:`~repro.errors.QueryRejectedError` instead of an unbounded
  compile.  ``health()['resources']`` reports all of it.
* **One-pass multi-query fusion.**  ``submit_all(docs)`` (and the
  ``await``-able ``extract_all``) serves one batch to *every*
  registered query in a single document scan: the members'
  vset-automata are fused into one tagged engine
  (:mod:`repro.runtime.fusion`) whose shared leveled-NFA sweep answers
  all of them per document, demultiplexed per query — per-query
  streams byte-identical (content and order) to Q sequential
  submissions.  Fused tasks ride the same deadline / result-cap /
  breaker machinery; the heartbeat's member slot lets a fused failure
  indict exactly the offending query's breaker.
* **Asyncio front-end.**  ``await service.extract(query_id, docs)``
  evaluates a batch without blocking the event loop;
  :meth:`submit` returns a :class:`concurrent.futures.Future` usable
  from sync code or (via :meth:`gather`) from coroutines.  In-flight
  work is bounded by ``max_in_flight`` chunks (submission blocks — in
  a coroutine, parks in a thread — once the bound is hit), the
  backpressure that keeps an unbounded caller from flooding the task
  queues.  Cancelling an ``extract`` abandons its result but leaves
  the fleet fully serviceable.

Results are **byte-identical and in-order** versus the serial runtime:
chunks are submitted in document order and concatenated in submission
order, and each worker runs the exact serial per-document evaluation,
so a batch's answer is the same list-of-``SpanTuple``-lists whatever
the worker count, chunking, recycling or crash history.

::

    with SpannerService(workers=4) as service:
        logs = service.register(".*level{ERROR|WARN}.*")
        mail = service.register("(ε|.* )m{u{[a-z]+}@d{[a-z]+\\.[a-z]+}}( .*|ε)")
        f1 = service.submit(logs, log_lines)      # both queries share
        f2 = service.submit(mail, mail_bodies)    # ... the same workers
        answers = f1.result(), f2.result()

    async def serve():
        async with_service...  # or: await service.extract(logs, docs)
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import pickle
import signal
import threading
import time
import warnings
from collections import deque
from concurrent.futures import CancelledError, Future, InvalidStateError, wait
from itertools import count
from pathlib import Path
from typing import TYPE_CHECKING, Awaitable, Iterable, Sequence

from ..errors import (
    ArtifactCorruptError,
    OverloadedError,
    QueryQuarantinedError,
    QueryRejectedError,
    ResultLimitError,
    ServiceClosedError,
    SpannerError,
    TaskTimeoutError,
    TransientTaskError,
)
from ..spans import SpanTuple
from ..vset.automaton import VSetAutomaton
from .backends.base import WorkerHandle, resolve_backend
from .compiled import CompiledSpanner, estimate_compile_states
from .equality import CompiledEqualityQuery
from .faults import FaultPlan
from .fusion import (
    FUSED_ID_PREFIX,
    FusedQuery,
    fused_fingerprint,
    fused_query_id,
    plan_submission,
)
from .store import (
    ArtifactStore,
    FileStore,
    MemoryStore,
    atomic_write_bytes,
)
from .tables import AutomatonTables
from .transport import (
    DEFAULT_SHM_THRESHOLD,
    TRANSPORT_MODES,
    ShmChunk,
    create_transport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..regex.ast import RegexFormula

__all__ = ["SpannerService", "QueryHandle", "MANIFEST_FORMAT_VERSION"]

#: Documents per dispatched task (same granularity ParallelSpanner uses).
DEFAULT_CHUNK_SIZE = 16

#: A task is re-dispatched after a worker death at most this many times
#: in total before its future fails — the bound that keeps one
#: worker-killing ("poison") task from crashing replacement workers
#: forever.
MAX_TASK_ATTEMPTS = 3

#: Re-dispatch backoff: attempt ``n`` (1-based) waits
#: ``RETRY_BACKOFF_BASE * 2**(n-1)`` seconds, capped.  The base sits
#: just above the collector's poll interval so the first retry is
#: nearly immediate while repeat offenders stop monopolising workers.
RETRY_BACKOFF_BASE = 0.05
RETRY_BACKOFF_CAP = 1.0

#: What ``submit`` does once ``max_in_flight`` chunks are outstanding.
OVERLOAD_POLICIES = ("block", "shed_oldest", "reject")

#: What a worker does when a document's result crosses its cap:
#: ``"error"`` fails exactly that task with
#: :class:`~repro.errors.ResultLimitError`; ``"truncate"`` returns the
#: bounded prefix (byte-identical up to the cap) and counts the
#: truncation.
RESULT_LIMIT_POLICIES = ("error", "truncate")

#: Fleet-level failures (timeouts, lost workers, exhausted transient
#: retries) before a query's circuit breaker opens.
DEFAULT_QUARANTINE_AFTER = 3

#: Seconds a quarantined query waits before a half-open probe is let
#: through.
DEFAULT_QUARANTINE_COOLDOWN = 30.0

#: Distinguishes "caller passed None" (disable the deadline) from
#: "caller passed nothing" (inherit the query/service default).
_UNSET = object()

#: Bump when the restart-manifest layout changes; ``restore()`` rejects
#: unknown versions rather than guessing at field meanings.
#:
#: v1 -> v2: the config records the resolved ``backend`` name, so
#: ``restore()`` revives the fleet onto the same substrate.  v1
#: manifests (which predate the backend seam and could only have been
#: written by a process fleet) are still accepted: restore reads them
#: as ``backend="process"``.
MANIFEST_FORMAT_VERSION = 2

#: Tasks a worker may hold (one running + prefetch) before dispatch
#: falls back to the service backlog.  Keeping per-worker queues this
#: shallow is what bounds head-of-line blocking: a worker stuck on one
#: pathological chunk can strand at most one prefetched task, while
#: everything else drains to workers as they free up — the same
#: behavior a shared task queue would give, without losing the
#: per-worker queues that make artifact shipment and recycling
#: addressable.
MAX_WORKER_PREFETCH = 2


# -- Driver side --------------------------------------------------------------


class _Task:
    """One dispatched chunk: its future, where it is, how often it ran.

    ``items`` is the *wire form* of the chunk — the plain document/path
    list for pipe transport, or the :class:`ShmChunk` reference whose
    segment the driver holds alive until this task resolves (so a crash
    re-dispatch re-sends the same reference without re-packing).
    """

    __slots__ = (
        "task_id", "query_id", "op", "items", "extra", "caps",
        "future", "worker", "attempts", "done", "bounded",
        "deadline", "not_before", "members", "indicted",
    )

    def __init__(
        self,
        task_id: int,
        query_id: str,
        op: str,
        items: "list[str] | ShmChunk",
        extra: int | None,
        bounded: bool,
        deadline: float | None = None,
        caps: "tuple[int | None, int | None, str] | None" = None,
        members: "tuple[str, ...] | None" = None,
    ):
        self.task_id = task_id
        self.query_id = query_id
        self.op = op
        self.items = items
        self.extra = extra
        self.caps = caps  # resolved (max_tuples, max_bytes, policy)
        self.future: Future = Future()
        self.worker: "WorkerHandle | None" = None
        self.attempts = 0
        self.done = False
        self.bounded = bounded  # holds one max_in_flight slot
        self.deadline = deadline  # seconds of *execution* per attempt
        self.not_before = 0.0  # monotonic re-dispatch eligibility (backoff)
        #: Fused tasks only: member query ids, index-aligned with the
        #: engine's member order (and hence the heartbeat ordinal).
        self.members = members
        #: The member a fleet-level failure was attributed to (from the
        #: heartbeat's member slot); None = unattributed, charge all.
        self.indicted: str | None = None


class _Breaker:
    """Per-query circuit-breaker state (guarded by the service lock).

    closed (``opened_at is None``): counting consecutive fleet-level
    failures.  open: submissions fail fast until the cool-down elapses,
    then exactly one probe is admitted (``probe_at`` stamps it); the
    probe's success closes the breaker, its failure re-arms the
    cool-down.  ``probe_at`` is a timestamp rather than a flag so a
    probe that never resolves (shed, cancelled, lost in a close) merely
    delays the next probe by one cool-down instead of wedging the
    breaker half-open forever.
    """

    __slots__ = ("failures", "opened_at", "probe_at")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: float | None = None
        self.probe_at: float | None = None


class QueryHandle(str):
    """A registered query's id with its registration facts attached.

    Returned by :meth:`SpannerService.register`.  It *is* the query id
    — a ``str`` subclass, so every pre-existing call form
    (``submit(qid, ...)``, dict keys, manifest entries) keeps working
    unchanged — but it additionally carries the artifact fingerprint
    and the effective per-task limits the query was registered with:

    * ``fingerprint`` — sha256 hex digest of the pickled artifact (the
      same bytes the manifest journals as ``payload_sha256``);
    * ``timeout`` / ``max_tuples`` / ``max_result_bytes`` — the
      *effective* values after query-over-service inheritance, i.e.
      what a ``submit`` without call-level overrides will enforce.

    Handles compare and hash as plain strings, and the driver
    normalizes them back to ``str`` at the submission boundary so the
    worker wire protocol never carries the subclass.
    """

    # str is a variable-length builtin, so no __slots__: the attributes
    # live in a per-instance dict like any ordinary class.
    def __new__(
        cls,
        query_id: str,
        *,
        fingerprint: str | None = None,
        timeout: float | None = None,
        max_tuples: int | None = None,
        max_result_bytes: int | None = None,
    ) -> "QueryHandle":
        self = super().__new__(cls, query_id)
        self.fingerprint = fingerprint
        self.timeout = timeout
        self.max_tuples = max_tuples
        self.max_result_bytes = max_result_bytes
        return self

    def __repr__(self) -> str:
        return (
            f"QueryHandle({str.__repr__(self)}, "
            f"fingerprint={self.fingerprint!r})"
        )


class SpannerService:
    """A resident multi-query worker fleet with an asyncio front-end.

    Args:
        workers: fleet size; defaults to the machine's CPU count.
        chunk_size: documents per dispatched task (the granularity of
            load balancing, re-dispatch and recycling).
        max_tasks_per_worker: recycle a worker after it has been
            assigned this many tasks — it finishes its in-flight work,
            stops, and is replaced by a fresh process.  ``None`` (the
            default) never recycles.
        max_in_flight: chunks in flight across the whole service before
            :meth:`submit` blocks (backpressure); ``None`` = unbounded.
        backend: the compute substrate the fleet runs on —
            ``"process"`` (spawned worker processes; shm transport,
            SIGKILL deadlines — the pre-seam behavior), ``"thread"``
            (worker threads sharing one materialized engine per query;
            no pickling, no shm — real parallelism on free-threaded
            builds), ``"serial"`` (inline execution in the calling
            thread; deadlines and the memory watchdog are inert — there
            is no worker to kill) or ``"auto"`` (the default: thread on
            free-threaded interpreters, process otherwise).  Results
            are byte-identical across backends.
        mp_context: a :mod:`multiprocessing` start-method name
            ("fork", "spawn", "forkserver") or ``None`` for the
            platform default (process backend only).
        transport: how in-memory documents reach the workers —
            ``"auto"`` (shared-memory segments for chunks whose encoded
            payload reaches ``shm_threshold`` bytes, the task pipe
            below it or where POSIX shm is missing), ``"shm"`` (always
            shared memory; raises
            :class:`~repro.runtime.transport.TransportUnavailableError`
            where unsupported) or ``"pipe"`` (always the task message,
            the pre-transport behavior).  File paths (``submit_files``)
            always ride the pipe — workers read those themselves.
        shm_threshold: the ``"auto"`` negotiation bound, in encoded
            bytes per chunk.
        encoding / errors: how workers decode file-backed documents
            (the ``files`` op); any :func:`codecs` name / error
            handler.  In-memory documents are never re-encoded with
            this codec — the shm transport uses its own fixed lossless
            wire codec.
        task_timeout: default per-task execution deadline in seconds;
            ``None`` (the default) never times out.  Override per query
            (``register(..., timeout=...)``) or per call
            (``submit*(..., timeout=...)``); the most specific setting
            wins, and an explicit ``timeout=None`` at a more specific
            level *disables* the inherited deadline.  A task past its
            deadline has its worker killed and replaced and its future
            failed with :class:`~repro.errors.TaskTimeoutError`.
        quarantine_after: consecutive fleet-level failures (timeouts,
            lost workers, exhausted transient retries — not ordinary
            per-task exceptions) before a query is quarantined.
        quarantine_cooldown: seconds a quarantined query waits before a
            half-open probe submission is admitted.
        on_overload: policy once ``max_in_flight`` chunks are
            outstanding — ``"block"`` (default: submission blocks, the
            pre-fault-tolerance backpressure), ``"reject"`` (submission
            raises :class:`~repro.errors.OverloadedError`) or
            ``"shed_oldest"`` (the oldest *backlogged* task's future is
            failed with ``OverloadedError`` to make room; falls back to
            blocking when nothing is sheddable).
        shm_budget: byte budget for the shared-memory transport's
            segments (in-flight + free pool together); ``None`` =
            unbounded.  Under pressure the free pool shrinks first; a
            chunk the remaining budget cannot fit — like any real
            ``ENOSPC``/``MemoryError`` out of ``/dev/shm`` — falls back
            to the task pipe for that chunk (counted in ``health()``,
            never fatal, results byte-identical).
        max_tuples / max_result_bytes: service-default result cap per
            *document* (``None`` = uncapped).  Enforced worker-side
            with incremental accounting over the polynomial-delay
            stream; override per query (``register``) or per call
            (``submit*``), most specific wins, explicit ``None``
            disables an inherited cap.
        on_result_limit: ``"error"`` (default) fails a capped task with
            :class:`~repro.errors.ResultLimitError` — which indicts the
            input, so it never charges the query's breaker; or
            ``"truncate"`` — the document contributes exactly its first
            ``max_tuples`` tuples (/ last tuple under the byte cap),
            byte-identical to the serial prefix, and the truncation is
            counted.
        worker_memory_limit: RSS (bytes) past which a worker is
            drained-and-recycled at its next task boundary — in-flight
            work finishes, nothing is lost.  Sampled from the heartbeat
            channel, so detection is one collector tick after the task
            that bloated the worker ends.
        worker_memory_hard_limit: RSS past which a worker is killed
            *immediately* (its tasks re-dispatch like crash orphans) —
            the backstop for a worker ballooning mid-task, before any
            task boundary.  Must be >= ``worker_memory_limit``.
        max_compile_states: reject ``register()`` inputs whose
            *estimated* automaton size exceeds this with
            :class:`~repro.errors.QueryRejectedError` — the estimate
            (Lemma 3.4's construction emits <= 2 states per syntax-tree
            node) costs a parse, not a compile.
        compile_timeout: seconds a ``register()`` compilation may run.
            When set, compilation happens in a throwaway process under
            this deadline (the fleet's hung-task pattern); on expiry it
            is killed and ``register`` raises
            :class:`~repro.errors.QueryRejectedError` — no worker is
            consumed and the fleet keeps serving.
        fault_plan: a :class:`~repro.runtime.faults.FaultPlan` shipped
            to every worker — deterministic chaos for the test suite;
            leave ``None`` in production.
        artifact_store: an :class:`~repro.runtime.store.ArtifactStore`
            consulted by ``register()`` before compiling — a hit revives
            the stored artifact bytes verbatim (warm start, results
            byte-identical to a cold compile), a miss compiles and
            ``put``\\ s the artifact for the next driver.  A corrupt
            entry is quarantined by the store and treated as a miss;
            it can degrade a warm start to a compile but never fails a
            registration.  ``None`` (the default) disables the store —
            unless ``manifest_path`` is set, which derives a
            :class:`~repro.runtime.store.FileStore` under
            ``<manifest dir>/artifacts``.
        manifest_path: when set, the service journals a restart
            manifest (registered queries, their store keys and
            recompilable sources, open quarantines, the constructor
            config) to this JSON file — atomically rewritten on every
            ``register()`` and on quarantine changes — so
            :meth:`SpannerService.restore` can rebuild an equivalent
            fleet after a crash (``kill -9`` included).

    The service starts lazily on first use (or explicitly via
    :meth:`start` / ``with service:``) and must be closed —
    :meth:`close` drains and stops the fleet (and unlinks every
    shared-memory segment it still owns); the context manager does so
    on exit.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_tasks_per_worker: int | None = None,
        max_in_flight: int | None = None,
        backend: str = "auto",
        mp_context: str | None = None,
        transport: str = "auto",
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        encoding: str = "utf-8",
        errors: str = "strict",
        task_timeout: float | None = None,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        quarantine_cooldown: float = DEFAULT_QUARANTINE_COOLDOWN,
        on_overload: str = "block",
        shm_budget: int | None = None,
        max_tuples: int | None = None,
        max_result_bytes: int | None = None,
        on_result_limit: str = "error",
        worker_memory_limit: int | None = None,
        worker_memory_hard_limit: int | None = None,
        max_compile_states: int | None = None,
        compile_timeout: float | None = None,
        fault_plan: "FaultPlan | None" = None,
        artifact_store: "ArtifactStore | None" = None,
        manifest_path: "str | os.PathLike | None" = None,
    ):
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        if max_tasks_per_worker is not None and max_tasks_per_worker < 1:
            raise ValueError(
                f"max_tasks_per_worker must be >= 1, got {max_tasks_per_worker}"
            )
        self.max_tasks_per_worker = max_tasks_per_worker
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = max_in_flight
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        self.task_timeout = task_timeout
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.quarantine_after = quarantine_after
        if quarantine_cooldown < 0:
            raise ValueError(
                f"quarantine_cooldown must be >= 0, got {quarantine_cooldown}"
            )
        self.quarantine_cooldown = quarantine_cooldown
        if on_overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"on_overload must be one of {OVERLOAD_POLICIES}, "
                f"got {on_overload!r}"
            )
        self.on_overload = on_overload
        if max_tuples is not None and max_tuples < 1:
            raise ValueError(f"max_tuples must be >= 1, got {max_tuples}")
        self.max_tuples = max_tuples
        if max_result_bytes is not None and max_result_bytes < 1:
            raise ValueError(
                f"max_result_bytes must be >= 1, got {max_result_bytes}"
            )
        self.max_result_bytes = max_result_bytes
        if on_result_limit not in RESULT_LIMIT_POLICIES:
            raise ValueError(
                f"on_result_limit must be one of {RESULT_LIMIT_POLICIES}, "
                f"got {on_result_limit!r}"
            )
        self.on_result_limit = on_result_limit
        if worker_memory_limit is not None and worker_memory_limit < 1:
            raise ValueError(
                f"worker_memory_limit must be >= 1, got {worker_memory_limit}"
            )
        self.worker_memory_limit = worker_memory_limit
        if worker_memory_hard_limit is not None:
            if worker_memory_hard_limit < 1:
                raise ValueError(
                    "worker_memory_hard_limit must be >= 1, "
                    f"got {worker_memory_hard_limit}"
                )
            if (
                worker_memory_limit is not None
                and worker_memory_hard_limit < worker_memory_limit
            ):
                raise ValueError(
                    "worker_memory_hard_limit must be >= worker_memory_limit "
                    f"({worker_memory_hard_limit} < {worker_memory_limit})"
                )
        self.worker_memory_hard_limit = worker_memory_hard_limit
        if max_compile_states is not None and max_compile_states < 1:
            raise ValueError(
                f"max_compile_states must be >= 1, got {max_compile_states}"
            )
        self.max_compile_states = max_compile_states
        if compile_timeout is not None and compile_timeout <= 0:
            raise ValueError(
                f"compile_timeout must be > 0, got {compile_timeout}"
            )
        self.compile_timeout = compile_timeout
        self.fault_plan = fault_plan
        self.mp_context = mp_context
        self.encoding = encoding
        self.errors = errors
        self.transport = transport
        self.shm_threshold = shm_threshold
        self.shm_budget = shm_budget
        #: The mechanism layer: everything process/thread/inline-specific
        #: (spawn, dispatch, result collection, heartbeats, kill) lives
        #: behind this seam; the service is pure policy over it.
        self._backend = resolve_backend(
            backend,
            workers=self.workers,
            mp_context=mp_context,
            encoding=encoding,
            errors=errors,
            fault_plan=fault_plan,
        )
        #: The *resolved* backend name ("auto" never survives
        #: construction) — what health() and the manifest report.
        self.backend = self._backend.name
        if self._backend.uses_wire_transport:
            # None = pure pipe; otherwise the owning side of the
            # shared-memory document transport (validates the mode
            # string and the budget).
            self._doc_transport = create_transport(
                transport, shm_threshold=shm_threshold, shm_budget=shm_budget
            )
        else:
            # Same-address-space workers read the submitted documents
            # directly — no wire, nothing to pack.  Still validate the
            # mode string so a typo fails identically on every backend.
            if transport not in TRANSPORT_MODES:
                raise ValueError(
                    f"transport must be one of {TRANSPORT_MODES}, "
                    f"got {transport!r}"
                )
            self._doc_transport = None
        if (
            fault_plan is not None
            and fault_plan.enospc_packs
            and self._doc_transport is not None
        ):
            self._doc_transport.inject_enospc(fault_plan.enospc_packs)
        self.manifest_path = (
            Path(manifest_path) if manifest_path is not None else None
        )
        if artifact_store is None and self.manifest_path is not None:
            # A manifest without a store would journal queries it can
            # only revive from source; defaulting the store next to the
            # manifest makes restore() warm for every registration.
            artifact_store = FileStore(self.manifest_path.parent / "artifacts")
        self.artifact_store = artifact_store
        if fault_plan is not None and artifact_store is not None:
            if fault_plan.store_torn_puts:
                artifact_store.inject_torn_write(fault_plan.store_torn_puts)
            if fault_plan.store_corrupt_puts:
                artifact_store.inject_corrupt(fault_plan.store_corrupt_puts)
        #: qid -> its manifest record; insertion order mirrors _registry.
        self._manifest_entries: dict[str, dict] = {}
        #: Quarantine state changed since the last manifest write; the
        #: collector flushes this outside its hot path.
        self._manifest_dirty = False

        self._lock = threading.RLock()
        self._registry: dict[str, bytes] = {}  # query id -> pickled artifact
        self._query_timeouts: dict[str, float | None] = {}  # per-query override
        # per-query result-cap overrides: (max_tuples, max_result_bytes),
        # each either a value, None (explicitly uncapped) or _UNSET
        # (inherit the service default).
        self._query_caps: dict[str, tuple] = {}
        self._breakers: dict[str, _Breaker] = {}  # query id -> breaker
        self._workers: list[WorkerHandle] = []
        self._tasks: dict[int, _Task] = {}  # every unresolved task
        self._backlog: deque[_Task] = deque()  # awaiting an eligible worker
        self._task_ids = count()
        self._collector: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._inflight_slots = (
            threading.BoundedSemaphore(max_in_flight)
            if max_in_flight is not None
            else None
        )
        self._started = False
        self._closing = False
        self._closed = False
        self._completed = 0
        self._recycled = 0
        self._crashed = 0
        self._timed_out = 0  # tasks failed by their deadline
        self._timeout_kills = 0  # workers killed for a hung task
        self._retried = 0  # re-dispatches (crash + transient)
        self._shed = 0  # tasks failed by the shed_oldest policy
        self._truncated_docs = 0  # docs cut at their cap (truncate policy)
        self._result_limited = 0  # tasks failed by ResultLimitError
        self._rejected = 0  # register() admissions refused
        self._memory_recycles = 0  # workers drained by the watchdog
        self._memory_kills = 0  # workers killed past the hard ceiling

    # -- Introspection ------------------------------------------------------
    @property
    def _all_processes(self) -> list:
        """Every worker process the backend has ever spawned (process
        backend only; empty elsewhere).  Kept as a property so fleet
        tests can bound its growth against the reap policy."""
        return getattr(self._backend, "processes", [])

    @property
    def queries(self) -> tuple[str, ...]:
        """The registered query ids, in registration order.

        Fused pseudo-entries (internal engines the fleet builds to
        serve ``submit_all`` in one pass) are plumbing, not registered
        queries, and are filtered out here as everywhere public.
        """
        with self._lock:
            return tuple(
                qid
                for qid in self._registry
                if not qid.startswith(FUSED_ID_PREFIX)
            )

    @property
    def tasks_completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def workers_recycled(self) -> int:
        with self._lock:
            return self._recycled

    @property
    def workers_crashed(self) -> int:
        with self._lock:
            return self._crashed

    @property
    def tasks_timed_out(self) -> int:
        with self._lock:
            return self._timed_out

    @property
    def tasks_retried(self) -> int:
        with self._lock:
            return self._retried

    @property
    def tasks_shed(self) -> int:
        with self._lock:
            return self._shed

    @property
    def docs_truncated(self) -> int:
        with self._lock:
            return self._truncated_docs

    @property
    def tasks_result_limited(self) -> int:
        with self._lock:
            return self._result_limited

    @property
    def queries_rejected(self) -> int:
        with self._lock:
            return self._rejected

    @property
    def workers_recycled_on_memory(self) -> int:
        with self._lock:
            return self._memory_recycles

    @property
    def quarantined_queries(self) -> tuple[str, ...]:
        """Query ids whose circuit breaker is currently open."""
        with self._lock:
            return tuple(
                qid
                for qid, b in self._breakers.items()
                if b.opened_at is not None
            )

    def health(self) -> dict:
        """A point-in-time fleet health snapshot (plain dict, loggable).

        The top-level ``backend`` entry names the compute substrate
        serving the fleet (resolved name + worker model).
        Per-worker: liveness, tasks in flight, lifetime assignments,
        the task it is executing right now (from the heartbeat), how
        long ago that heartbeat was stamped — a large ``heartbeat_age``
        on a worker with a ``running_task`` is the signature of a hang
        — and the last RSS sample the worker stamped.  Fleet-wide:
        backlog depth, outstanding tasks, open quarantines, the
        lifetime fault counters, and a ``resources`` section (shm bytes
        against the budget, degraded-to-pipe episodes, orphaned
        segments swept at startup, the artifact store's counters when
        one is configured, per-worker RSS and the
        truncation/rejection/recycle counters of the governance layer).

        The snapshot survives ``json.dumps`` unchanged — every value is
        a JSON scalar, list or string-keyed dict — so it can be logged
        or shipped to a metrics pipe verbatim.
        """
        with self._lock:
            now = time.monotonic()
            workers = []
            # str keys: the snapshot must survive a json.dumps round
            # trip unchanged (operators log it), and JSON object keys
            # are strings.
            worker_rss: dict[str, float | None] = {}
            for w in self._workers:
                hb_task, hb_stamp, hb_rss, hb_member = w.read_heartbeat()
                running = hb_task >= 0
                rss = hb_rss if hb_rss > 0 else None  # None = never stamped
                worker_rss[str(w.worker_id)] = rss
                workers.append(
                    {
                        "worker_id": w.worker_id,
                        "pid": w.pid,
                        "alive": w.alive(),
                        "tasks_in_flight": len(w.in_flight),
                        "tasks_assigned": w.assigned,
                        "running_task": hb_task if running else None,
                        "running_member": (
                            hb_member if running and hb_member >= 0 else None
                        ),
                        "heartbeat_age": (now - hb_stamp) if running else None,
                        "retiring": w.retiring,
                        "rss_bytes": rss,
                    }
                )
            if self._doc_transport is not None:
                shm = self._doc_transport.stats()
            else:
                shm = {
                    "bytes_in_flight": 0,
                    "bytes_pooled": 0,
                    "budget": None,
                    "degraded_to_pipe": 0,
                    "orphans_swept": 0,
                }
            resources = {
                "shm_bytes_in_flight": shm["bytes_in_flight"],
                "shm_bytes_pooled": shm["bytes_pooled"],
                "shm_budget": shm["budget"],
                "degraded_to_pipe": shm["degraded_to_pipe"],
                "orphans_swept": shm.get("orphans_swept", 0),
                "store": (
                    self.artifact_store.stats()
                    if self.artifact_store is not None
                    else None
                ),
                "worker_rss_bytes": worker_rss,
                "docs_truncated": self._truncated_docs,
                "tasks_result_limited": self._result_limited,
                "queries_rejected": self._rejected,
                "memory_recycles": self._memory_recycles,
                "memory_kills": self._memory_kills,
            }
            quarantined = {
                qid: {
                    "failures": b.failures,
                    "open_for": now - b.opened_at,
                }
                for qid, b in self._breakers.items()
                if b.opened_at is not None
            }
            return {
                "backend": {
                    "name": self._backend.name,
                    "worker_model": self._backend.worker_model,
                },
                "workers": workers,
                "backlog_depth": len(self._backlog),
                "tasks_outstanding": len(self._tasks),
                "queries_registered": sum(
                    1
                    for qid in self._registry
                    if not qid.startswith(FUSED_ID_PREFIX)
                ),
                "quarantined_queries": quarantined,
                "resources": resources,
                "counters": {
                    "tasks_completed": self._completed,
                    "tasks_timed_out": self._timed_out,
                    "tasks_retried": self._retried,
                    "tasks_shed": self._shed,
                    "workers_recycled": self._recycled,
                    "workers_crashed": self._crashed,
                    "workers_killed_on_timeout": self._timeout_kills,
                    "workers_killed_on_memory": self._memory_kills,
                    # memory_recycles are ordinary (graceful) recycles,
                    # already inside workers_recycled — attribution, not
                    # an extra restart.
                    "worker_restarts": (
                        self._recycled + self._crashed
                        + self._timeout_kills + self._memory_kills
                    ),
                },
            }

    def reinstate(self, query_id: str) -> bool:
        """Manually clear a query's quarantine (and failure history).

        Returns ``True`` when the query had an open breaker.  The
        half-open probe path does this automatically after a cool-down;
        ``reinstate`` is the operator override for "the bad corpus is
        gone, let it through now".
        """
        with self._lock:
            breaker = self._breakers.pop(query_id, None)
            was_open = breaker is not None and breaker.opened_at is not None
            if was_open and self.manifest_path is not None:
                # An operator decision deserves immediate durability —
                # a crash right after reinstate() must not resurrect
                # the quarantine.
                self._write_manifest_locked()
            return was_open

    def __repr__(self) -> str:
        return (
            f"SpannerService(workers={self.workers}, "
            f"queries={len(self._registry)}, "
            f"completed={self._completed}, recycled={self._recycled}, "
            f"crashed={self._crashed})"
        )

    # -- Registration -------------------------------------------------------
    @staticmethod
    def _artifact_for(query: object) -> object:
        """The ship-to-workers artifact for anything register() accepts.

        The pickle contract matches :class:`ParallelSpanner`'s:
        equality-free spanners ship their
        :class:`~repro.runtime.tables.AutomatonTables` (a worker
        rebuilds a ``CompiledSpanner`` around them without rerunning
        preprocessing); self-contained engines ship themselves.
        """
        if isinstance(query, CompiledSpanner):
            return query.tables
        if isinstance(query, (CompiledEqualityQuery, AutomatonTables, FusedQuery)):
            return query
        return CompiledSpanner(query).tables  # automaton / formula / syntax

    def register(
        self,
        query: (
            "CompiledSpanner | CompiledEqualityQuery | AutomatonTables "
            "| VSetAutomaton | RegexFormula | str"
        ),
        *,
        query_id: str | None = None,
        source: "VSetAutomaton | RegexFormula | str | None" = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        max_tuples: int | None = _UNSET,  # type: ignore[assignment]
        max_result_bytes: int | None = _UNSET,  # type: ignore[assignment]
    ) -> "QueryHandle":
        """Register a query with the fleet; returns its handle.

        The returned :class:`QueryHandle` *is* the query id (a ``str``
        subclass usable everywhere an id is) and additionally carries
        the artifact fingerprint and the effective per-task limits.

        The id is a fingerprint of the pickled compiled artifact, so
        registering the same compiled query twice dedupes to one entry
        (and one shipment per worker).  Pass ``query_id`` to pick a
        stable name; re-using a name for a *different* artifact raises.
        Registration is allowed at any time — workers receive the
        artifact lazily, with the first task that needs it.

        ``timeout`` sets this query's per-task deadline, overriding the
        service's ``task_timeout`` (``None`` disables the deadline for
        this query; omit it to inherit the service default).
        ``max_tuples`` / ``max_result_bytes`` override the service's
        result caps for this query the same way.

        Admission control runs first: with ``max_compile_states`` set,
        a query whose *estimated* automaton size exceeds the bound is
        refused with :class:`~repro.errors.QueryRejectedError` before
        any compilation; with ``compile_timeout`` set, the compilation
        itself runs in a throwaway process under that deadline and a
        timeout rejects the query the same way.  Either rejection
        leaves the fleet and every registered query untouched.

        With an ``artifact_store`` configured, the store is consulted
        between admission and compilation: a hit skips the compile
        entirely and registers the stored bytes verbatim (warm start —
        the payload IS the fingerprint, so results and query ids are
        byte-identical to the cold path); a miss compiles and ``put``\\ s
        the artifact; a corrupt entry is quarantined by the store and
        recompiled — counted, never fatal.

        ``source`` names the compilable origin of an *already compiled*
        ``query``.  Precompiled artifacts have no stable fingerprint —
        their pickle bytes differ across processes — so without it a
        pre-wrapped query is keyed by its own bytes and never warm-hits
        a cache written by another driver.  Passing the original
        syntax/formula/automaton keys the store entry (and the manifest
        journal) by the source fingerprint instead, at no extra compile:
        on a hit the stored bytes replace the local artifact, on a miss
        the local artifact is stored under the source key.  The caller
        asserts that ``source`` compiles to ``query`` — the pairing is
        not checked.  Ignored when ``query`` is itself compilable.
        """
        if timeout is not _UNSET and timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if max_tuples is not _UNSET and max_tuples is not None and max_tuples < 1:
            raise ValueError(f"max_tuples must be >= 1, got {max_tuples}")
        if (
            max_result_bytes is not _UNSET
            and max_result_bytes is not None
            and max_result_bytes < 1
        ):
            raise ValueError(
                f"max_result_bytes must be >= 1, got {max_result_bytes}"
            )
        if self.max_compile_states is not None:
            estimate = estimate_compile_states(query)
            if estimate is not None and estimate > self.max_compile_states:
                with self._lock:
                    self._rejected += 1
                raise QueryRejectedError(
                    f"estimated automaton size {estimate} exceeds "
                    f"max_compile_states={self.max_compile_states}",
                    estimated_states=estimate,
                    max_compile_states=self.max_compile_states,
                )
        store = self.artifact_store
        spec = self._source_spec(query)
        if spec is None and source is not None:
            # Precompiled query with a declared origin: fingerprint by
            # the origin so warm starts work across driver processes.
            spec = self._source_spec(source)
        store_key = (
            self._source_key(spec)
            if store is not None and spec is not None
            else None
        )
        payload = None
        if store is not None and store_key is not None:
            try:
                payload = store.get(store_key)
            except ArtifactCorruptError:
                payload = None  # quarantined by the store; recompile
        if payload is None:
            payload = self._compile_payload(query)
            if store is not None:
                if store_key is None:
                    # Precompiled input: no source to fingerprint, so
                    # key by the artifact bytes themselves.
                    store_key = (
                        "a" + hashlib.sha256(payload).hexdigest()[:24]
                    )
                store.put(store_key, payload)
        qid = (
            str(query_id)
            if query_id is not None
            else "q" + hashlib.sha256(payload).hexdigest()[:16]
        )
        self._commit_registration(
            qid,
            payload,
            timeout,
            max_tuples,
            max_result_bytes,
            store_key=store_key,
            source_json=self._source_json(spec),
        )
        with self._lock:
            eff_timeout = self._query_timeouts.get(qid, self.task_timeout)
            q_tuples, q_bytes = self._query_caps.get(qid, (_UNSET, _UNSET))
        return QueryHandle(
            qid,
            fingerprint=hashlib.sha256(payload).hexdigest(),
            timeout=eff_timeout,
            max_tuples=self.max_tuples if q_tuples is _UNSET else q_tuples,
            max_result_bytes=(
                self.max_result_bytes if q_bytes is _UNSET else q_bytes
            ),
        )

    def _commit_registration(
        self,
        qid: str,
        payload: bytes,
        timeout,
        max_tuples,
        max_result_bytes,
        *,
        store_key: str | None,
        source_json: dict | None,
    ) -> str:
        """The locked tail of registration (shared with ``restore()``).

        Installs the payload in the registry, records the per-query
        overrides, and — with a manifest configured — journals the
        registration atomically before returning.
        """
        with self._lock:
            if self._closing:
                raise ServiceClosedError("SpannerService is closed")
            existing = self._registry.get(qid)
            if existing is not None and existing != payload:
                raise ValueError(
                    f"query id {qid!r} already registered with a "
                    "different artifact"
                )
            self._registry[qid] = payload
            if timeout is not _UNSET:
                self._query_timeouts[qid] = timeout
            if max_tuples is not _UNSET or max_result_bytes is not _UNSET:
                self._query_caps[qid] = (max_tuples, max_result_bytes)
            if self.manifest_path is not None:
                options: dict = {}
                if timeout is not _UNSET:
                    options["timeout"] = timeout
                if max_tuples is not _UNSET:
                    options["max_tuples"] = max_tuples
                if max_result_bytes is not _UNSET:
                    options["max_result_bytes"] = max_result_bytes
                self._manifest_entries[qid] = {
                    "query_id": qid,
                    "store_key": store_key,
                    "payload_sha256": hashlib.sha256(payload).hexdigest(),
                    "source": source_json,
                    "options": options,
                }
                self._write_manifest_locked()
        return qid

    # -- Durable state: source specs, the manifest, restore ------------------
    @staticmethod
    def _source_spec(query: object) -> tuple[str, object] | None:
        """A restorable description of a compilable input, or ``None``.

        Concrete syntax survives as itself; formula/automaton inputs as
        their (deterministic, pure-data) pickle.  Precompiled inputs
        return ``None`` — there is nothing cheaper than the artifact to
        record, so the store entry is their only revival path.
        """
        if isinstance(query, str):
            return ("syntax", query)
        if isinstance(
            query,
            (CompiledSpanner, CompiledEqualityQuery, AutomatonTables, FusedQuery),
        ):
            return None
        return (
            "pickle",
            pickle.dumps(query, protocol=pickle.HIGHEST_PROTOCOL),
        )

    @staticmethod
    def _source_key(source: tuple[str, object]) -> str:
        """The store key of a source spec: ``s`` + a sha256 prefix.

        Keyed on the *source*, not the artifact, so a warm ``register``
        can look up the compiled bytes before any compilation happens —
        the whole point of the warm start.
        """
        kind, data = source
        raw = data.encode("utf-8") if isinstance(data, str) else data
        digest = hashlib.sha256(kind.encode("ascii") + b"\x00" + raw)
        return "s" + digest.hexdigest()[:24]

    @staticmethod
    def _source_json(source: tuple[str, object] | None) -> dict | None:
        if source is None:
            return None
        kind, data = source
        if kind == "syntax":
            return {"kind": "syntax", "data": data}
        return {"kind": "pickle", "data": base64.b64encode(data).decode("ascii")}

    @staticmethod
    def _query_from_source(source_json: dict) -> object:
        if source_json["kind"] == "syntax":
            return source_json["data"]
        return pickle.loads(base64.b64decode(source_json["data"]))

    def _store_descriptor(self) -> dict | None:
        """How to rebuild (or at least name) the configured store."""
        store = self.artifact_store
        if store is None:
            return None
        if isinstance(store, FileStore):
            return {
                "kind": "file",
                "root": str(store.root),
                "budget": store.budget,
            }
        if isinstance(store, MemoryStore):
            return {"kind": "memory", "budget": store.budget}
        return {"kind": "custom"}

    @staticmethod
    def _store_from_descriptor(desc: dict | None) -> "ArtifactStore | None":
        if not desc:
            return None
        kind = desc.get("kind")
        if kind == "file":
            return FileStore(desc["root"], budget=desc.get("budget"))
        if kind == "memory":
            # A MemoryStore died with its driver; restoring builds an
            # empty one and every query revives from source.
            return MemoryStore(budget=desc.get("budget"))
        return None  # custom stores cannot be rebuilt from a manifest

    def _manifest_config(self) -> dict:
        """The constructor kwargs ``restore()`` replays (JSON-safe)."""
        return {
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "max_tasks_per_worker": self.max_tasks_per_worker,
            "max_in_flight": self.max_in_flight,
            # The *resolved* name: a fleet constructed with "auto"
            # restores onto the substrate it actually ran on, not onto
            # whatever "auto" means on the restoring interpreter.
            "backend": self.backend,
            "mp_context": self.mp_context,
            "transport": self.transport,
            "shm_threshold": self.shm_threshold,
            "encoding": self.encoding,
            "errors": self.errors,
            "task_timeout": self.task_timeout,
            "quarantine_after": self.quarantine_after,
            "quarantine_cooldown": self.quarantine_cooldown,
            "on_overload": self.on_overload,
            "shm_budget": self.shm_budget,
            "max_tuples": self.max_tuples,
            "max_result_bytes": self.max_result_bytes,
            "on_result_limit": self.on_result_limit,
            "worker_memory_limit": self.worker_memory_limit,
            "worker_memory_hard_limit": self.worker_memory_hard_limit,
            "max_compile_states": self.max_compile_states,
            "compile_timeout": self.compile_timeout,
        }

    def _write_manifest_locked(self) -> None:
        """Atomically rewrite the restart manifest (self._lock held).

        The write is the same tmp + fsync + rename primitive the
        ``FileStore`` uses, so a crash at any instant leaves the old
        manifest or the new one — never a torn JSON document.
        """
        if self.manifest_path is None:
            return
        doc = {
            "format": MANIFEST_FORMAT_VERSION,
            "config": self._manifest_config(),
            "store": self._store_descriptor(),
            "queries": [
                self._manifest_entries[qid]
                for qid in self._registry
                if qid in self._manifest_entries
            ],
            "quarantined": {
                qid: {"failures": b.failures}
                for qid, b in self._breakers.items()
                if b.opened_at is not None
            },
        }
        atomic_write_bytes(
            self.manifest_path, json.dumps(doc, indent=2).encode("utf-8")
        )

    def _flush_manifest(self) -> None:
        """Write the manifest if quarantine state changed (collector tick).

        Best-effort: a full disk must not take the fleet down with it —
        queries keep serving and the next tick retries.
        """
        if self.manifest_path is None or not self._manifest_dirty:
            return
        try:
            with self._lock:
                if not self._manifest_dirty:
                    return
                self._manifest_dirty = False
                self._write_manifest_locked()
        except OSError:
            with self._lock:
                self._manifest_dirty = True

    @classmethod
    def restore(
        cls,
        manifest_path: "str | os.PathLike",
        *,
        artifact_store: "ArtifactStore | None" = None,
        **overrides,
    ) -> "SpannerService":
        """Rebuild a fleet from its restart manifest after a crash.

        Reconstructs the service with the manifest's constructor config
        (``overrides`` win key-by-key), re-registers every journaled
        query — reviving the compiled artifact from the store when its
        bytes verify against the recorded fingerprint (no
        recompilation; the store's hit counter proves it), recompiling
        from the recorded source otherwise — and re-arms quarantines
        that were open at the crash.  Admission control runs again on
        every query: today's ``max_compile_states`` applies to
        yesterday's fleet, so a query that no longer fits raises
        :class:`~repro.errors.QueryRejectedError` exactly as a fresh
        ``register()`` would.

        Results are byte-identical to the original fleet's: a revived
        artifact is the *same bytes* the crashed driver shipped, and a
        recompiled one is the output of the same deterministic
        preprocessing (Theorem 3.3 is a pure function of the query).

        Raises :class:`~repro.errors.SpannerError` when the manifest is
        unreadable, from an unknown format version, or names a query
        whose artifact is gone *and* that has no recompilable source.
        """
        path = Path(manifest_path)
        try:
            doc = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError) as err:
            raise SpannerError(
                f"cannot restore fleet: unreadable manifest {path}: {err}"
            ) from err
        fmt = doc.get("format")
        if fmt not in (1, MANIFEST_FORMAT_VERSION):
            raise SpannerError(
                f"manifest {path} is format {fmt!r}; this "
                f"build speaks v{MANIFEST_FORMAT_VERSION}"
            )
        config = dict(doc.get("config") or {})
        if fmt == 1:
            # v1 predates the backend seam: only the process fleet
            # existed, so that is what the manifest implicitly records.
            config.setdefault("backend", "process")
        config.update(overrides)
        if artifact_store is None:
            artifact_store = cls._store_from_descriptor(doc.get("store"))
        service = cls(
            artifact_store=artifact_store, manifest_path=path, **config
        )
        try:
            for entry in doc.get("queries") or ():
                service._restore_entry(entry)
            now = time.monotonic()
            with service._lock:
                for qid, rec in (doc.get("quarantined") or {}).items():
                    if qid not in service._registry:
                        continue
                    breaker = _Breaker()
                    breaker.failures = int(
                        rec.get("failures", service.quarantine_after)
                    )
                    breaker.opened_at = now
                    service._breakers[qid] = breaker
                service._write_manifest_locked()
        except BaseException:
            service.close(drain=False)
            raise
        return service

    def _restore_entry(self, entry: dict) -> None:
        """Re-register one journaled query: store-first, source-second."""
        qid = entry.get("query_id")
        if not isinstance(qid, str) or not qid:
            raise SpannerError(f"manifest query entry without an id: {entry!r}")
        opts = entry.get("options") or {}
        timeout = opts["timeout"] if "timeout" in opts else _UNSET
        max_tuples = opts["max_tuples"] if "max_tuples" in opts else _UNSET
        max_result_bytes = (
            opts["max_result_bytes"] if "max_result_bytes" in opts else _UNSET
        )
        store = self.artifact_store
        key = entry.get("store_key")
        recorded_sha = entry.get("payload_sha256")
        payload = None
        if store is not None and key:
            try:
                payload = store.get(key)
            except ArtifactCorruptError:
                payload = None  # quarantined; fall back to the source
            if (
                payload is not None
                and recorded_sha
                and hashlib.sha256(payload).hexdigest() != recorded_sha
            ):
                # Internally consistent entry, but not the artifact the
                # manifest promised (e.g. a source-key collision after
                # an eviction/re-put cycle): not safe to revive.
                payload = None
        if payload is not None:
            if self.max_compile_states is not None:
                estimate = estimate_compile_states(pickle.loads(payload))
                if estimate is not None and estimate > self.max_compile_states:
                    with self._lock:
                        self._rejected += 1
                    raise QueryRejectedError(
                        f"restored query {qid!r}: automaton size {estimate} "
                        f"exceeds max_compile_states={self.max_compile_states}",
                        estimated_states=estimate,
                        max_compile_states=self.max_compile_states,
                    )
            self._commit_registration(
                qid,
                payload,
                timeout,
                max_tuples,
                max_result_bytes,
                store_key=key,
                source_json=entry.get("source"),
            )
            return
        source_json = entry.get("source")
        if source_json is None:
            raise SpannerError(
                f"cannot restore query {qid!r}: artifact {key!r} is not in "
                "the store and the manifest records no recompilable source"
            )
        kwargs: dict = {}
        if "timeout" in opts:
            kwargs["timeout"] = opts["timeout"]
        if "max_tuples" in opts:
            kwargs["max_tuples"] = opts["max_tuples"]
        if "max_result_bytes" in opts:
            kwargs["max_result_bytes"] = opts["max_result_bytes"]
        self.register(
            self._query_from_source(source_json), query_id=qid, **kwargs
        )

    def _compile_payload(self, query: object) -> bytes:
        """The pickled ship-to-workers artifact, under the compile deadline.

        Without a ``compile_timeout`` (or for inputs that are already
        compiled — nothing left to bound), compilation runs inline,
        exactly the pre-governance path.  With one, a throwaway process
        compiles and pickles the artifact while we poll its pipe under
        the deadline; expiry kills the process and raises
        :class:`~repro.errors.QueryRejectedError` — the driver thread
        is never stuck inside an unbounded ``compile_regex``.
        """
        plan = self.fault_plan
        delay = plan.compile_delay if plan is not None else None
        precompiled = isinstance(
            query,
            (CompiledSpanner, CompiledEqualityQuery, AutomatonTables, FusedQuery),
        )
        if self.compile_timeout is None or (precompiled and not delay):
            if delay:
                time.sleep(delay)
            return pickle.dumps(
                self._artifact_for(query), protocol=pickle.HIGHEST_PROTOCOL
            )
        # The bounded compile is process-lifecycle mechanism, so it
        # lives with the process backend — and is used *whatever* the
        # serving backend, since a throwaway process is the only
        # compile-bounding primitive Python offers.
        from .backends.process import compile_in_subprocess

        def on_timeout() -> None:
            with self._lock:
                self._rejected += 1

        return compile_in_subprocess(
            query, delay, self.compile_timeout, self.mp_context,
            on_timeout=on_timeout,
        )

    # -- Lifecycle ----------------------------------------------------------
    def start(self) -> "SpannerService":
        """Spawn the fleet (idempotent; called lazily by submission)."""
        with self._lock:
            if self._closing:
                raise ServiceClosedError("SpannerService is closed")
            if self._started:
                return self
            self._backend.start()
            for _ in range(self.workers):
                self._spawn_worker()
            self._collector = threading.Thread(
                target=self._collector_loop,
                name="spanner-service-collector",
                daemon=True,
            )
            self._collector.start()
            self._started = True
        return self

    def __enter__(self) -> "SpannerService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the fleet.

        ``drain=True`` (the default) waits for every in-flight and
        backlogged task to resolve, then stops the workers gracefully;
        with a ``timeout``, tasks still unresolved when it expires are
        *failed* with :class:`~repro.errors.ServiceClosedError` (never
        left pending), and the same budget bounds the worker joins —
        ``close(drain=True, timeout=t)`` returns in roughly ``t`` plus
        termination overhead, whatever the fleet is stuck on.
        ``drain=False`` cancels outstanding futures and terminates the
        worker processes immediately.  Either way the service rejects
        new work afterwards.
        """
        deadline = None if timeout is None else time.monotonic() + timeout

        def budget(default: float) -> float:
            if deadline is None:
                return default
            return max(0.0, deadline - time.monotonic())

        with self._lock:
            if self._closed:
                return
            self._closing = True
            outstanding = [t.future for t in self._tasks.values()]
            started = self._started
        if drain and started and outstanding:
            wait(outstanding, timeout=timeout)
        leftovers: list[_Task] = []
        with self._lock:
            for task in self._tasks.values():
                task.done = True
                leftovers.append(task)
            self._tasks.clear()
            self._backlog.clear()
            for w in self._workers:
                self._backend.stop_worker(w, graceful=drain)
            self._workers.clear()
        # A drain that gave up (timeout expired with work unresolved)
        # FAILS the leftovers — a pending future after close() returns
        # would strand its caller forever.  A no-drain close cancels
        # instead: the caller asked for abandonment, not an error.
        detail = (
            f" (drain timed out after {timeout}s)" if timeout is not None else ""
        )
        leftover_exc = (
            ServiceClosedError(
                f"service closed before this task completed{detail}"
            )
            if drain
            else _CANCELLED
        )
        for task in leftovers:
            self._finish(task, leftover_exc, None)
        self._stop_event.set()
        if self._collector is not None:
            self._collector.join(timeout=budget(10))
        self._backend.close(drain=drain, budget=budget)
        if self._doc_transport is not None:
            # Belt over the per-task handshake: whatever segments are
            # somehow still owned (e.g. a collector that died mid-
            # resolution) are unlinked now — /dev/shm ends clean.
            self._doc_transport.close()
        with self._lock:
            self._closed = True

    # -- Submission ---------------------------------------------------------
    def submit_chunk(
        self,
        query_id: str,
        items: Sequence[str],
        *,
        op: str = "evaluate",
        extra: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        max_tuples: int | None = _UNSET,  # type: ignore[assignment]
        max_result_bytes: int | None = _UNSET,  # type: ignore[assignment]
    ) -> Future:
        """Dispatch one chunk; returns the future of its result list.

        The building block the batch APIs (and
        :class:`~repro.runtime.parallel.ParallelSpanner`'s streaming
        sessions) fan out over.  While ``max_in_flight`` chunks are
        already outstanding the ``on_overload`` policy applies (block,
        reject, or shed the oldest backlogged task).  ``timeout``
        overrides the query/service deadline for this chunk alone, and
        ``max_tuples`` / ``max_result_bytes`` the query/service result
        caps (per document; explicit ``None`` disables an inherited
        cap).  Raises :class:`~repro.errors.QueryQuarantinedError` —
        before consuming an in-flight slot or any worker time — while
        the query's circuit breaker is open.
        """
        # Normalize QueryHandle (a str subclass) back to plain str so
        # the worker wire protocol never pickles the handle type.
        query_id = str(query_id)
        items = list(items)
        if timeout is not _UNSET and timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if max_tuples is not _UNSET and max_tuples is not None and max_tuples < 1:
            raise ValueError(f"max_tuples must be >= 1, got {max_tuples}")
        if (
            max_result_bytes is not _UNSET
            and max_result_bytes is not None
            and max_result_bytes < 1
        ):
            raise ValueError(
                f"max_result_bytes must be >= 1, got {max_result_bytes}"
            )
        if not items:
            fut: Future = Future()
            fut.set_result([])
            return fut
        self.start()
        with self._lock:
            if self._closing:
                raise ServiceClosedError("SpannerService is closed")
            if query_id not in self._registry:
                raise KeyError(f"unknown query id {query_id!r}")
            self._admit_locked(query_id)
            deadline = timeout
            if deadline is _UNSET:
                deadline = self._query_timeouts.get(query_id, _UNSET)
            if deadline is _UNSET:
                deadline = self.task_timeout
            caps = self._resolve_caps_locked(
                query_id, max_tuples, max_result_bytes
            )
        bounded = self._inflight_slots is not None
        if bounded:
            self._acquire_slot()
        # Pack only after holding an in-flight slot: a submitter parked
        # on the backpressure bound must not pin a packed segment's
        # bytes beyond the configured max_in_flight budget.
        wire = self._pack(items, op)
        with self._lock:
            if self._closing:
                if bounded:
                    self._inflight_slots.release()
                self._release_wire(wire)
                raise ServiceClosedError("SpannerService is closed")
            task = _Task(
                next(self._task_ids), query_id, op, wire, extra, bounded,
                deadline, caps,
            )
            self._tasks[task.task_id] = task
            self._dispatch_or_backlog(task)
        if self._backend.inline:
            self._drain_inline()
        return task.future

    def _resolve_caps_locked(
        self,
        query_id: str,
        max_tuples: "int | None",
        max_result_bytes: "int | None",
    ) -> "tuple[int | None, int | None, str] | None":
        """The effective per-document result cap for one chunk.

        Per-call beats per-query beats the service default, per field;
        an explicit ``None`` at a more specific level disables the
        inherited cap.  ``None`` (no cap at all) keeps the worker on
        the uncapped fast path.
        """
        q_tuples, q_bytes = self._query_caps.get(query_id, (_UNSET, _UNSET))
        if max_tuples is _UNSET:
            max_tuples = self.max_tuples if q_tuples is _UNSET else q_tuples
        if max_result_bytes is _UNSET:
            max_result_bytes = (
                self.max_result_bytes if q_bytes is _UNSET else q_bytes
            )
        if max_tuples is None and max_result_bytes is None:
            return None
        return (max_tuples, max_result_bytes, self.on_result_limit)

    def _admit_locked(self, query_id: str) -> None:
        """Fail fast while ``query_id``'s breaker is open (lock held).

        Once the cool-down has elapsed, admits exactly one *probe*
        submission (half-open); further submissions keep failing until
        the probe resolves — or until a full extra cool-down passes, in
        case the probe itself was lost (shed, cancelled, closed away).
        """
        breaker = self._breakers.get(query_id)
        if breaker is None or breaker.opened_at is None:
            return
        now = time.monotonic()
        ready_at = breaker.opened_at + self.quarantine_cooldown
        if breaker.probe_at is not None:
            ready_at = max(ready_at, breaker.probe_at + self.quarantine_cooldown)
        if now >= ready_at:
            breaker.probe_at = now  # this submission is the probe
            return
        raise QueryQuarantinedError(query_id, breaker.failures, ready_at - now)

    def _acquire_slot(self) -> None:
        """One ``max_in_flight`` slot, by way of the overload policy."""
        slots = self._inflight_slots
        if slots.acquire(blocking=False):
            return
        if self.on_overload == "block":
            slots.acquire()
            return
        if self.on_overload == "reject":
            raise OverloadedError(
                f"max_in_flight={self.max_in_flight} chunks already "
                "outstanding (on_overload='reject')"
            )
        # shed_oldest: fail backlogged tasks oldest-first until a slot
        # frees up.  Only the backlog is sheddable — a task already on
        # a worker's queue cannot be un-sent — so a fully-dispatched
        # fleet degrades to blocking, which is the right floor: the
        # policy bounds *queue growth*, it does not abandon running
        # work.
        while not slots.acquire(blocking=False):
            with self._lock:
                shed = None
                while self._backlog:
                    candidate = self._backlog.popleft()
                    if candidate.done:
                        continue
                    candidate.done = True
                    self._tasks.pop(candidate.task_id, None)
                    self._shed += 1
                    shed = candidate
                    break
            if shed is None:
                slots.acquire()
                return
            # _finish releases the shed task's slot; another submitter
            # may win the race to it, hence the retry loop.
            self._finish(
                shed,
                OverloadedError(
                    "task shed under load: newer work displaced it "
                    "(on_overload='shed_oldest')"
                ),
                None,
            )

    def _pack(self, items: list[str], op: str) -> "list[str] | ShmChunk":
        """The transport negotiation: the wire form of one chunk.

        ``files`` chunks are path lists (the workers read the bytes
        themselves — already off the pipe); in-memory chunks go through
        the shared-memory transport when one is configured and the
        chunk clears its size threshold, and ride the task message
        otherwise.  Packing always uses the transport's fixed lossless
        wire codec — ``self.encoding`` only governs how workers read
        *files*.
        """
        if self._doc_transport is None or op in ("files", "fused_files"):
            return items
        ref = self._doc_transport.pack(items)
        return items if ref is None else ref

    def _release_wire(self, wire: "list[str] | ShmChunk") -> None:
        """The owner half of the release handshake (no-op for pipe)."""
        if self._doc_transport is not None and isinstance(wire, ShmChunk):
            self._doc_transport.release(wire)

    #: ``kind`` values the unified :meth:`submit` core accepts, and the
    #: worker op each maps to.
    _SUBMIT_KINDS = {"docs": "evaluate", "files": "files", "counts": "count"}

    @staticmethod
    def _legacy_shim_warning(old: str, new: str) -> None:
        warnings.warn(
            f"{old} is deprecated; use {new} instead "
            "(see the README migration table)",
            DeprecationWarning,
            stacklevel=3,
        )

    def submit(
        self,
        work,
        docs: "Iterable[str] | None" = None,
        *,
        queries=None,
        kind: str = "docs",
        limit: int | None = None,
        cap: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        max_tuples: int | None = _UNSET,  # type: ignore[assignment]
        max_result_bytes: int | None = _UNSET,  # type: ignore[assignment]
        fuse: bool = True,
    ):
        """Evaluate a batch of work against one or many queries.

        The unified submission core every other entry point is a thin
        wrapper over.  ``work`` is the batch (documents for
        ``kind="docs"``/``"counts"``, file paths for ``kind="files"``);
        ``queries`` selects what runs against it:

        * a single query id (or :class:`QueryHandle`) — returns one
          :class:`~concurrent.futures.Future` resolving to one result
          per item, exactly the pre-redesign behavior;
        * a sequence of ids — returns ``{query_id: Future}``, served
          fused (one document scan answers every member, demultiplexed
          per query) whenever ``fuse`` is true, at least two members
          are admissible, and ``kind`` is not ``"counts"``; falls back
          to per-query sequential submission otherwise.  Per-query
          results are byte-identical (content *and* order) either way;
        * ``None`` — every registered query, as a sequence.

        Documents are split into ``chunk_size`` tasks balanced across
        the fleet; each combined result is concatenated in input order —
        byte-identical to the serial ``evaluate_many``.  ``limit``
        bounds tuples per document (``cap`` likewise for ``"counts"``);
        ``timeout`` overrides the per-task deadline for every chunk of
        this batch, ``max_tuples`` / ``max_result_bytes`` the
        per-document result caps.

        The pre-redesign call form ``submit(query_id, docs, ...)`` (two
        positionals) still works and emits a ``DeprecationWarning``.
        """
        if docs is not None:
            self._legacy_shim_warning(
                "submit(query_id, docs, ...)",
                "submit(docs, queries=query_id, ...)",
            )
            return self._submit_batch(
                work, docs, "evaluate", limit, timeout,
                max_tuples, max_result_bytes,
            )
        if kind not in self._SUBMIT_KINDS:
            raise ValueError(
                f"kind must be one of {tuple(self._SUBMIT_KINDS)}, "
                f"got {kind!r}"
            )
        op = self._SUBMIT_KINDS[kind]
        extra = cap if kind == "counts" else limit
        if isinstance(queries, str):
            if kind == "counts":
                return self._submit_batch(queries, work, op, extra, timeout)
            return self._submit_batch(
                queries, work, op, extra, timeout,
                max_tuples, max_result_bytes,
            )
        return self._submit_all(
            work, queries, kind, limit, cap, timeout,
            max_tuples, max_result_bytes, fuse,
        )

    def submit_files(
        self,
        work,
        paths: "Iterable[str] | None" = None,
        *,
        queries=None,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        max_tuples: int | None = _UNSET,  # type: ignore[assignment]
        max_result_bytes: int | None = _UNSET,  # type: ignore[assignment]
        fuse: bool = True,
    ):
        """Like :meth:`submit` with ``kind="files"`` — workers read the
        documents by path.  The pre-redesign form
        ``submit_files(query_id, paths, ...)`` still works and emits a
        ``DeprecationWarning``."""
        if paths is not None:
            self._legacy_shim_warning(
                "submit_files(query_id, paths, ...)",
                "submit_files(paths, queries=query_id, ...)",
            )
            return self._submit_batch(
                work, paths, "files", limit, timeout,
                max_tuples, max_result_bytes,
            )
        return self.submit(
            work, queries=queries, kind="files", limit=limit,
            timeout=timeout, max_tuples=max_tuples,
            max_result_bytes=max_result_bytes, fuse=fuse,
        )

    def submit_counts(
        self,
        work,
        docs: "Iterable[str] | None" = None,
        *,
        queries=None,
        cap: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ):
        """Per-document distinct-tuple counts (no tuple decoding).

        :meth:`submit` with ``kind="counts"`` — always sequential (a
        count is one integer per document; there is no fused count op).
        The pre-redesign form ``submit_counts(query_id, docs, ...)``
        still works and emits a ``DeprecationWarning``."""
        if docs is not None:
            self._legacy_shim_warning(
                "submit_counts(query_id, docs, ...)",
                "submit_counts(docs, queries=query_id, ...)",
            )
            return self._submit_batch(work, docs, "count", cap, timeout)
        return self.submit(work, queries=queries, kind="counts", cap=cap,
                           timeout=timeout)

    def submit_all(
        self,
        work,
        *,
        queries: "Sequence[str] | None" = None,
        kind: str = "docs",
        limit: int | None = None,
        cap: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        max_tuples: int | None = _UNSET,  # type: ignore[assignment]
        max_result_bytes: int | None = _UNSET,  # type: ignore[assignment]
        fuse: bool = True,
    ) -> "dict[str, Future]":
        """Evaluate one batch against many queries; ``{query_id: Future}``.

        The multi-query face of :meth:`submit`: ``queries=None`` means
        every registered query.  With ``fuse=True`` (the default) and
        at least two admissible members, the fleet serves the batch
        through one *fused* engine — a single leveled-NFA sweep per
        document answers every member, results demultiplexed per query
        in the exact order (and bytes) Q sequential submissions would
        produce.  Members whose circuit breaker is open fail their own
        future with :class:`~repro.errors.QueryQuarantinedError`
        without blocking the rest; a fleet-level failure of a fused
        task charges only the member the heartbeat indicts (or all
        members when it died in the shared sweep phase).
        """
        return self._submit_all(
            work, queries, kind, limit, cap, timeout,
            max_tuples, max_result_bytes, fuse,
        )

    def _submit_all(
        self,
        work,
        queries,
        kind: str,
        limit,
        cap,
        timeout,
        max_tuples,
        max_result_bytes,
        fuse: bool,
    ) -> "dict[str, Future]":
        if kind not in self._SUBMIT_KINDS:
            raise ValueError(
                f"kind must be one of {tuple(self._SUBMIT_KINDS)}, "
                f"got {kind!r}"
            )
        items = list(work)
        member_ids = (
            list(self.queries)
            if queries is None
            else [str(q) for q in queries]
        )
        if len(set(member_ids)) != len(member_ids):
            raise ValueError("duplicate query ids in submit_all")
        op = self._SUBMIT_KINDS[kind]
        extra = cap if kind == "counts" else limit
        out: "dict[str, Future]" = {}
        candidates: list[str] = []
        with self._lock:
            for qid in member_ids:
                if qid not in self._registry:
                    raise KeyError(f"unknown query id {qid!r}")
            for qid in member_ids:
                blocked = self._quarantine_error_locked(qid)
                if blocked is not None:
                    refused: Future = Future()
                    refused.set_exception(blocked)
                    out[qid] = refused
                else:
                    candidates.append(qid)
        mode, ordered = plan_submission(
            candidates, fuse=fuse and kind != "counts"
        )
        if mode == "fused" and not self._fused_admissible(ordered):
            mode = "sequential"
        if mode == "sequential":
            for qid in ordered:
                try:
                    if kind == "counts":
                        out[qid] = self._submit_batch(
                            qid, items, op, extra, timeout
                        )
                    else:
                        out[qid] = self._submit_batch(
                            qid, items, op, extra, timeout,
                            max_tuples, max_result_bytes,
                        )
                except QueryQuarantinedError as err:  # raced a breaker
                    refused = Future()
                    refused.set_exception(err)
                    out[qid] = refused
            return out
        members = tuple(sorted(ordered))
        with self._lock:
            # Consume the members' half-open probes now: the fused
            # batch IS the probe for any cooled-down breaker.
            for qid in members:
                self._admit_locked(qid)
            if timeout is _UNSET:
                # The fused task serves every member, so the most
                # restrictive member deadline bounds it.
                finite = [
                    d
                    for d in (
                        self._query_timeouts.get(qid, self.task_timeout)
                        for qid in members
                    )
                    if d is not None
                ]
                deadline = min(finite) if finite else None
            else:
                deadline = timeout
            caps = tuple(
                self._resolve_caps_locked(qid, max_tuples, max_result_bytes)
                for qid in members
            )
            member_caps = None if all(c is None for c in caps) else caps
        fused_qid = self._ensure_fused(members)
        fused_op = "fused" if kind == "docs" else "fused_files"
        chunk_futures = [
            self._submit_fused_chunk(
                fused_qid, members, items[i : i + self.chunk_size],
                fused_op, extra, deadline, member_caps,
            )
            for i in range(0, len(items), self.chunk_size)
        ]
        out.update(_combine_fused(chunk_futures, members))
        return out

    def _quarantine_error_locked(
        self, query_id: str
    ) -> "QueryQuarantinedError | None":
        """Like :meth:`_admit_locked`, but non-mutating: reports the
        error an admission would raise without stamping a probe."""
        breaker = self._breakers.get(query_id)
        if breaker is None or breaker.opened_at is None:
            return None
        now = time.monotonic()
        ready_at = breaker.opened_at + self.quarantine_cooldown
        if breaker.probe_at is not None:
            ready_at = max(ready_at, breaker.probe_at + self.quarantine_cooldown)
        if now >= ready_at:
            return None  # would admit (as the probe)
        return QueryQuarantinedError(query_id, breaker.failures, ready_at - now)

    def _fused_admissible(self, member_ids: "Sequence[str]") -> bool:
        """Admission control for the fused engine (compile-time bound).

        The fused engine's state inventory is the sum of its members';
        when ``max_compile_states`` would refuse that sum, fusion is
        skipped (sequential fallback) rather than refused — every
        member already passed admission individually.
        """
        if self.max_compile_states is None:
            return True
        with self._lock:
            payloads = [self._registry[qid] for qid in member_ids]
        total = 0
        for payload in payloads:
            estimate = estimate_compile_states(pickle.loads(payload))
            if estimate is None:
                return True  # unboundable member: admit, as register() does
            total += estimate
        return total <= self.max_compile_states

    def _ensure_fused(self, member_ids: "tuple[str, ...]") -> str:
        """The registry id of the fused engine over ``member_ids``.

        Built at most once per member set: the registry entry is keyed
        by :func:`~repro.runtime.fusion.fused_query_id` over the sorted
        member payload fingerprints, and the artifact store (when
        configured) caches the fused payload under
        :func:`~repro.runtime.fusion.fused_fingerprint` — so a warm
        restart that re-registers the same member set revives the fused
        engine without re-pickling a single member.  Fused entries
        never reach the manifest or the public ``queries`` tuple.
        """
        with self._lock:
            shas = [
                hashlib.sha256(self._registry[qid]).hexdigest()
                for qid in member_ids
            ]
        fused_qid = fused_query_id(shas)
        store_key = fused_fingerprint(shas)
        with self._lock:
            if fused_qid in self._registry:
                return fused_qid
        store = self.artifact_store
        payload = None
        if store is not None:
            try:
                payload = store.get(store_key)
            except ArtifactCorruptError:
                payload = None  # quarantined by the store; rebuild
        if payload is None:
            with self._lock:
                members = [
                    (qid, pickle.loads(self._registry[qid]))
                    for qid in member_ids
                ]
            payload = pickle.dumps(
                FusedQuery(members), protocol=pickle.HIGHEST_PROTOCOL
            )
            if store is not None:
                store.put(store_key, payload)
        with self._lock:
            if self._closing:
                raise ServiceClosedError("SpannerService is closed")
            self._registry.setdefault(fused_qid, payload)
        return fused_qid

    def _submit_fused_chunk(
        self,
        fused_qid: str,
        members: "tuple[str, ...]",
        items: "Sequence[str]",
        op: str,
        extra: int | None,
        deadline: float | None,
        caps: "tuple | None",
    ) -> Future:
        """Dispatch one fused chunk (admission already done per member).

        The tail of :meth:`submit_chunk` without the per-query
        admission/resolution steps — those ran per *member* in
        :meth:`_submit_all`; the fused pseudo-id itself has no breaker,
        no per-query caps and no manifest entry.
        """
        items = list(items)
        self.start()
        bounded = self._inflight_slots is not None
        if bounded:
            self._acquire_slot()
        wire = self._pack(items, op)
        with self._lock:
            if self._closing:
                if bounded:
                    self._inflight_slots.release()
                self._release_wire(wire)
                raise ServiceClosedError("SpannerService is closed")
            task = _Task(
                next(self._task_ids), fused_qid, op, wire, extra, bounded,
                deadline, caps, members=members,
            )
            self._tasks[task.task_id] = task
            self._dispatch_or_backlog(task)
        if self._backend.inline:
            self._drain_inline()
        return task.future

    def _submit_batch(
        self,
        query_id: str,
        items: Iterable[str],
        op: str,
        extra: int | None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        max_tuples: int | None = _UNSET,  # type: ignore[assignment]
        max_result_bytes: int | None = _UNSET,  # type: ignore[assignment]
    ) -> Future:
        items = list(items)
        chunk_futures = [
            self.submit_chunk(query_id, items[i : i + self.chunk_size],
                              op=op, extra=extra, timeout=timeout,
                              max_tuples=max_tuples,
                              max_result_bytes=max_result_bytes)
            for i in range(0, len(items), self.chunk_size)
        ]
        return _combine(chunk_futures)

    # -- Asyncio front-end --------------------------------------------------
    async def extract(
        self,
        query_id: str,
        docs: Iterable[str],
        *,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> list[list[SpanTuple]]:
        """``await``-able :meth:`submit`: one ``list[SpanTuple]`` per doc.

        Submission happens in a thread (it may block on the
        ``max_in_flight`` backpressure bound), so the event loop never
        stalls.  Cancelling the coroutine abandons the result — the
        chunks already dispatched still complete worker-side and the
        fleet stays fully serviceable.  A chunk that exceeds its
        deadline (``timeout`` here, else the query/service default)
        rejects the ``await`` with
        :class:`~repro.errors.TaskTimeoutError` — a clean exception on
        the awaiting coroutine, never a wedged event loop.
        """
        docs = list(docs)
        future = await asyncio.to_thread(
            self.submit, query_id, docs, limit=limit, timeout=timeout
        )
        return await asyncio.wrap_future(future)

    async def extract_files(
        self,
        query_id: str,
        paths: Iterable[str],
        *,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> list[list[SpanTuple]]:
        """``await``-able :meth:`submit_files`."""
        paths = list(paths)
        future = await asyncio.to_thread(
            self.submit_files, query_id, paths, limit=limit, timeout=timeout
        )
        return await asyncio.wrap_future(future)

    async def extract_all(
        self,
        docs: Iterable[str],
        *,
        queries: "Sequence[str] | None" = None,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        fuse: bool = True,
    ) -> "dict[str, list[list[SpanTuple]]]":
        """``await``-able :meth:`submit_all`: every query's answer to one
        batch, ``{query_id: [per-doc tuple lists]}``, from one fused
        document scan whenever fusion applies.  Per-query results are
        byte-identical to awaiting Q separate :meth:`extract` calls.
        """
        docs = list(docs)
        futures = await asyncio.to_thread(
            lambda: self.submit_all(
                docs, queries=queries, limit=limit, timeout=timeout,
                fuse=fuse,
            )
        )
        results = await asyncio.gather(
            *(asyncio.wrap_future(f) for f in futures.values())
        )
        return dict(zip(futures.keys(), results))

    async def extract_all_files(
        self,
        paths: Iterable[str],
        *,
        queries: "Sequence[str] | None" = None,
        limit: int | None = None,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        fuse: bool = True,
    ) -> "dict[str, list[list[SpanTuple]]]":
        """``await``-able :meth:`submit_all` with ``kind="files"``."""
        paths = list(paths)
        futures = await asyncio.to_thread(
            lambda: self.submit_all(
                paths, queries=queries, kind="files", limit=limit,
                timeout=timeout, fuse=fuse,
            )
        )
        results = await asyncio.gather(
            *(asyncio.wrap_future(f) for f in futures.values())
        )
        return dict(zip(futures.keys(), results))

    @staticmethod
    async def gather(*items: "Future | Awaitable") -> list:
        """Await a mix of coroutines and service futures, in order."""
        aws = [
            asyncio.wrap_future(item) if isinstance(item, Future) else item
            for item in items
        ]
        return await asyncio.gather(*aws)

    # -- Scheduling (driver internals; self._lock held throughout) ----------
    def _spawn_worker(self) -> WorkerHandle:
        handle = self._backend.spawn_worker()
        self._workers.append(handle)
        return handle

    def _pick_worker(self) -> WorkerHandle | None:
        eligible = [
            w
            for w in self._workers
            if not w.retiring
            and not w.stopped
            and len(w.in_flight) < MAX_WORKER_PREFETCH
            and w.alive()
        ]
        if not eligible:
            return None
        return min(eligible, key=lambda w: len(w.in_flight))

    def _dispatch_or_backlog(self, task: _Task) -> None:
        worker = self._pick_worker()
        if worker is None:
            # Every worker is busy to its prefetch bound (or
            # retiring/replacing); the collector hands backlogged tasks
            # to workers as their in-flight chunks complete.
            self._backlog.append(task)
            return
        self._assign(worker, task)

    def _assign(self, worker: WorkerHandle, task: _Task) -> None:
        # Ship the artifact with the first task that needs it on this
        # worker — at most one shipment per (worker, query) lifetime.
        # What "ship" means is the backend's business: the process
        # fleet sends the registry's pickled bytes over the task queue;
        # shared-memory backends hand back a reference to the one
        # materialized engine.
        payload = None
        if task.query_id not in worker.shipped:
            payload = self._backend.prepare_payload(
                task.query_id, self._registry[task.query_id]
            )
            worker.shipped.add(task.query_id)
        task.worker = worker
        task.indicted = None  # attribution is per attempt
        worker.in_flight[task.task_id] = task
        worker.assigned += 1
        if (
            self.max_tasks_per_worker is not None
            and worker.assigned >= self.max_tasks_per_worker
        ):
            worker.retiring = True
        self._backend.dispatch(
            worker,
            (
                "task", task.task_id, task.attempts + 1, task.query_id,
                payload, task.op, task.items, task.extra, task.caps,
            ),
        )

    # -- The collector thread -----------------------------------------------
    def _collector_loop(self) -> None:
        # The collector must never die with futures outstanding — a
        # silently dead daemon thread would strand every caller in
        # ``future.result()``.  Anything unexpected (spawn failures are
        # already tolerated in _ensure_fleet; this catches the rest)
        # fails the outstanding work loudly instead of hanging it, and
        # the loop keeps serving.
        while not self._collector_iteration():
            pass

    def _collector_iteration(self) -> bool:
        """One collector pass; True when the loop should stop."""
        resolutions: list[tuple[_Task, BaseException | None, object]] = []
        try:
            # Poll outside the service lock: the backend blocks up to
            # one tick waiting for results, and submitters must not
            # stall behind that wait.
            msgs = self._backend.poll(0.05)
            with self._lock:
                for msg in msgs:
                    self._handle_result(msg, resolutions)
                self._check_deadlines(resolutions)
                self._check_memory(resolutions)
                self._reap_crashed(resolutions)
                self._recycle_retiring()
                self._ensure_fleet()
                self._drain_backlog()
                self._backend.reap()
                stopping = self._stop_event.is_set()
            for task, exc, value in resolutions:
                self._finish(task, exc, value)
            self._flush_manifest()
        except Exception as err:  # pragma: no cover - defensive
            for task, _exc, _value in resolutions:
                self._finish(
                    task,
                    RuntimeError(f"serving fleet scheduler failed: {err!r}"),
                    None,
                )
            self._fail_all_outstanding(err)
            return self._stop_event.is_set()
        return stopping

    def _fail_all_outstanding(self, err: Exception) -> None:
        """Resolve every unfinished future with ``err`` (never hang)."""
        with self._lock:
            stranded = [t for t in self._tasks.values() if not t.done]
            for task in stranded:
                task.done = True
            self._tasks.clear()
            self._backlog.clear()
        for task in stranded:
            self._finish(
                task,
                RuntimeError(f"serving fleet scheduler failed: {err!r}"),
                None,
            )

    def _drain_inline(self) -> None:
        """Resolve results an inline backend produced during dispatch.

        On the serial backend the result exists the moment
        ``_dispatch_or_backlog`` returns; draining it here (on the
        submitting thread) instead of waiting for the collector tick
        keeps a serial service's latency at bare-loop levels.
        """
        resolutions: list[tuple[_Task, BaseException | None, object]] = []
        msgs = self._backend.poll(0)
        with self._lock:
            for msg in msgs:
                self._handle_result(msg, resolutions)
        for task, exc, value in resolutions:
            self._finish(task, exc, value)

    def _handle_result(self, msg, resolutions) -> None:
        kind, _worker_id, task_id, payload, truncated = msg
        task = self._tasks.get(task_id)
        if task is None or task.done:
            # A straggler result for a task already re-dispatched and
            # resolved elsewhere: drop it — at-most-once resolution is
            # what keeps re-dispatch from duplicating tuples.
            return
        if task.worker is not None:
            task.worker.in_flight.pop(task_id, None)
            task.worker = None
        if kind == "fail" and isinstance(payload, TransientTaskError):
            # The worker said "not my fault, try again" — shm attach
            # race, injected transient fault.  Backoff + re-dispatch,
            # bounded by the same attempt budget as crashes.
            self._retry_or_fail(task, resolutions, payload)
            return
        self._tasks.pop(task_id, None)
        task.done = True
        self._completed += 1
        plan = self.fault_plan
        if (
            plan is not None
            and plan.kill_after_tasks is not None
            and self._completed >= plan.kill_after_tasks
        ):
            # Chaos: die as a crash would — no cleanup, no atexit, no
            # flushed manifest beyond what is already durable.  SIGKILL
            # on ourselves is the closest in-process stand-in for the
            # operator's `kill -9` that the recovery suite restores
            # from.
            os.kill(os.getpid(), signal.SIGKILL)
        if kind == "done":
            # Only clean completions reset the breaker: ordinary task
            # exceptions say nothing fleet-level either way.
            self._truncated_docs += truncated
            if task.members is not None:
                # Fused: per-member outcomes arrived in one payload —
                # success clears a member's breaker exactly as a solo
                # completion would, while a member-scoped ordinary
                # exception (an "err" slot) charges nothing, matching
                # the solo "fail" path.
                for m, qid in enumerate(task.members):
                    if payload[m][0] == "ok":
                        self._record_success_locked(qid)
            else:
                self._record_success_locked(task.query_id)
            resolutions.append((task, None, payload))
        else:
            # Ordinary worker exception: fails exactly this future,
            # NEVER charges the breaker — including ResultLimitError,
            # which indicts the input's output volume, not the fleet.
            if isinstance(payload, ResultLimitError):
                self._result_limited += 1
            resolutions.append((task, payload, None))

    def _check_deadlines(self, resolutions) -> None:
        """Kill workers whose running task has outlived its deadline.

        The heartbeat names the task a worker is executing and when it
        started; a deadlined task older than its budget gets its worker
        killed (SIGKILL — a genuinely hung process may ignore SIGTERM),
        its future failed with :class:`TaskTimeoutError`, and its
        query's breaker charged.  The task is NOT re-dispatched — see
        the class docstring — but the worker's *prefetched* tasks never
        started running, so those go back through the retry path like
        crash orphans.  ``_ensure_fleet`` respawns the replacement on
        this same collector pass, so detection-to-replacement is one
        0.05s tick past the deadline.
        """
        if not self._backend.supports_kill:
            # The serial backend's "worker" is the calling thread:
            # there is nothing to kill, so deadlines are not enforced
            # (documented as the serial trade-off).
            return
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.stopped or not worker.alive():
                continue
            hb_task, hb_stamp, _hb_rss, hb_member = worker.read_heartbeat()
            if hb_task < 0:
                continue
            task = worker.in_flight.get(hb_task)
            if task is None or task.done or task.deadline is None:
                continue
            if now - hb_stamp <= task.deadline:
                continue
            self._workers.remove(worker)
            # kill_worker marks the handle stopped, so _reap_crashed
            # never double-counts this death as a crash.
            self._backend.kill_worker(worker)
            self._timeout_kills += 1
            worker.in_flight.pop(task.task_id, None)
            self._tasks.pop(task.task_id, None)
            task.done = True
            task.worker = None
            self._timed_out += 1
            if task.members is not None and 0 <= hb_member < len(task.members):
                # The heartbeat names the fused member being served
                # when the deadline hit: only that member's breaker is
                # charged (a hang in the shared sweep stays -1 and
                # charges every member).
                task.indicted = task.members[hb_member]
            self._charge_failure_locked(task)
            indicted = (
                f" while serving member {task.indicted!r}"
                if task.indicted is not None
                else ""
            )
            resolutions.append(
                (
                    task,
                    TaskTimeoutError(
                        f"task for query {task.query_id!r} exceeded its "
                        f"{task.deadline}s deadline "
                        f"(ran {now - hb_stamp:.2f}s){indicted}; worker "
                        f"{worker.worker_id} killed"
                    ),
                    None,
                )
            )
            self._orphan_worker_tasks(worker, resolutions)

    def _check_memory(self, resolutions) -> None:
        """The memory watchdog: drain bloated workers, kill ballooning ones.

        Reads the RSS sample each worker stamps on its heartbeat at
        task boundaries.  Past ``worker_memory_limit`` the worker is
        marked retiring — it finishes its in-flight tasks, gets no new
        ones, and ``_recycle_retiring``/``_ensure_fleet`` replace it
        gracefully on a later pass: no tuple is ever lost to a soft
        recycle.  Past ``worker_memory_hard_limit`` the worker is
        killed now (it may never reach a task boundary) and its
        in-flight tasks re-dispatch exactly like crash orphans.
        A never-stamped heartbeat (rss 0.0) is skipped — a fresh idle
        worker has shown no evidence either way.
        """
        soft = self.worker_memory_limit
        hard = self.worker_memory_hard_limit
        if soft is None and hard is None:
            return
        if self._backend.worker_model != "process":
            # Thread and inline workers share the driver's address
            # space: their heartbeat RSS is the whole process, so the
            # per-worker limits would misfire.  The watchdog only
            # means something where a worker owns its memory.
            return
        for worker in list(self._workers):
            if worker.stopped or not worker.alive():
                continue
            _hb_task, _hb_stamp, rss, _hb_member = worker.read_heartbeat()
            if rss <= 0:
                continue
            if hard is not None and rss > hard:
                self._workers.remove(worker)
                # kill_worker marks the handle stopped (no crash
                # double-count in _reap_crashed).
                self._backend.kill_worker(worker)
                self._memory_kills += 1
                self._orphan_worker_tasks(worker, resolutions)
                continue
            if soft is not None and rss > soft and not worker.retiring:
                worker.retiring = True
                worker.memory_flagged = True
                self._memory_recycles += 1

    def _reap_crashed(self, resolutions) -> None:
        for worker in list(self._workers):
            if worker.stopped or worker.alive():
                continue
            # Died without being told to stop: a crash.  Replace it and
            # re-dispatch everything it was holding.
            self._workers.remove(worker)
            self._backend.release_worker(worker)
            self._crashed += 1
            self._orphan_worker_tasks(worker, resolutions)

    def _orphan_worker_tasks(self, worker: WorkerHandle, resolutions) -> None:
        """Route a dead worker's in-flight tasks through retry/give-up."""
        hb_task, _hb_stamp, _hb_rss, hb_member = worker.read_heartbeat()
        orphans = list(worker.in_flight.values())
        worker.in_flight.clear()
        for task in orphans:
            if task.done:
                continue
            task.worker = None
            if (
                task.members is not None
                and task.task_id == hb_task
                and 0 <= hb_member < len(task.members)
            ):
                # The worker died mid-member: remember whom to indict
                # if the retry budget runs out.  (Prefetched orphans
                # never ran, so they stay unattributed.)
                task.indicted = task.members[hb_member]
            self._retry_or_fail(
                task,
                resolutions,
                RuntimeError(
                    f"task for query {task.query_id!r} lost "
                    f"{task.attempts + 1} workers; giving up"
                ),
            )

    def _retry_or_fail(
        self, task: _Task, resolutions, give_up_exc: BaseException
    ) -> None:
        """One more attempt with backoff — or fail and charge the breaker.

        The backoff is capped exponential in the attempt number; the
        task sits in the backlog until ``not_before`` passes, so a
        repeatedly-failing task stops hammering replacement workers
        while everything else flows around it.
        """
        task.attempts += 1
        if task.attempts >= MAX_TASK_ATTEMPTS:
            task.done = True
            self._tasks.pop(task.task_id, None)
            self._charge_failure_locked(task)
            resolutions.append((task, give_up_exc, None))
            return
        self._retried += 1
        task.not_before = time.monotonic() + min(
            RETRY_BACKOFF_BASE * (2 ** (task.attempts - 1)),
            RETRY_BACKOFF_CAP,
        )
        self._backlog.append(task)

    # -- Circuit breakers (self._lock held) -----------------------------------
    def _charge_failure_locked(self, task: _Task) -> None:
        """Charge a fleet-level failure to the right breaker(s).

        Solo tasks charge their query.  Fused tasks charge the member
        the heartbeat indicted (the one being enumerated when the
        worker was killed or died) — the other members were innocent
        bystanders sharing the scan; an unattributed failure (shared
        sweep phase, or a worker that never stamped) charges every
        member, since each of them asked for that pass.
        """
        if task.members is None:
            self._record_failure_locked(task.query_id)
        elif task.indicted is not None:
            self._record_failure_locked(task.indicted)
        else:
            for qid in task.members:
                self._record_failure_locked(qid)

    def _record_failure_locked(self, query_id: str) -> None:
        """A fleet-level failure: deadline kill, lost workers, or
        exhausted transient retries.  Ordinary worker exceptions (a bad
        path in ``submit_files``, a decode error) do NOT land here —
        they indict the input, not the fleet, and must never quarantine
        a query other inputs are using fine.
        """
        breaker = self._breakers.setdefault(query_id, _Breaker())
        breaker.failures += 1
        now = time.monotonic()
        if breaker.opened_at is not None:
            # Open already (this was the probe, or a straggler): re-arm
            # the cool-down from now.
            breaker.opened_at = now
            breaker.probe_at = None
        elif breaker.failures >= self.quarantine_after:
            breaker.opened_at = now
        if breaker.opened_at is not None and self.manifest_path is not None:
            self._manifest_dirty = True  # journaled at the next tick

    def _record_success_locked(self, query_id: str) -> None:
        # Consecutive-failure semantics: any clean completion (probe or
        # otherwise) clears the query's whole failure history.
        breaker = self._breakers.pop(query_id, None)
        if (
            breaker is not None
            and breaker.opened_at is not None
            and self.manifest_path is not None
        ):
            self._manifest_dirty = True  # a quarantine closed

    def _recycle_retiring(self) -> None:
        for worker in list(self._workers):
            if worker.retiring and not worker.stopped and not worker.in_flight:
                self._backend.stop_worker(worker, graceful=True)
                self._workers.remove(worker)
                self._recycled += 1

    def _ensure_fleet(self) -> None:
        """Keep the fleet at full strength (replaces crashed/recycled
        workers).  A failed spawn — PID/memory pressure — is tolerated:
        the tasks stay backlogged and the next collector pass retries,
        so transient resource exhaustion degrades instead of deadlocks.
        """
        if self._closing and not self._tasks:
            return
        while len(self._workers) < self.workers:
            try:
                self._spawn_worker()
            except Exception:
                break  # retry on the next collector pass

    def _drain_backlog(self) -> None:
        # Tasks still serving a retry backoff (not_before in the
        # future) are skipped, not reordered: they return to the front
        # of the backlog and a later collector pass (ticks every 0.05s)
        # dispatches them once eligible.
        now = time.monotonic()
        deferred: deque[_Task] = deque()
        while self._backlog:
            task = self._backlog[0]
            if task.not_before > now:
                deferred.append(self._backlog.popleft())
                continue
            worker = self._pick_worker()
            if worker is None:
                break
            self._assign(worker, self._backlog.popleft())
        while deferred:
            self._backlog.appendleft(deferred.pop())

    # -- Future resolution (never under self._lock) --------------------------
    def _finish(
        self, task: _Task, exc: BaseException | None, value: object
    ) -> None:
        # The resolution IS the release handshake: whatever way the
        # task ended — result, failure, cancellation, shutdown — its
        # shared-memory segment (if any) loses its one reference here
        # and is unlinked by the owner.  Runs before the cancelled
        # check below so an abandoned future can never pin a segment.
        self._release_wire(task.items)
        if task.bounded and self._inflight_slots is not None:
            self._inflight_slots.release()
        future = task.future
        if future.cancelled():
            return
        try:
            if exc is _CANCELLED:
                future.cancel()
            elif exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(value)
        except InvalidStateError:  # cancelled concurrently by a caller
            pass


#: Sentinel: resolve a task's future by cancellation (terminate path).
_CANCELLED = CancelledError()


def _combine(chunk_futures: list[Future]) -> Future:
    """One future over many chunk futures, results concatenated in order."""
    aggregate: Future = Future()
    if not chunk_futures:
        aggregate.set_result([])
        return aggregate
    remaining = [len(chunk_futures)]
    remaining_lock = threading.Lock()

    def on_done(_f: Future) -> None:
        with remaining_lock:
            remaining[0] -= 1
            if remaining[0]:
                return
        out: list = []
        try:
            for chunk in chunk_futures:
                out.extend(chunk.result())
        except BaseException as err:
            if not aggregate.cancelled():
                try:
                    aggregate.set_exception(err)
                except InvalidStateError:
                    pass
            return
        if not aggregate.cancelled():
            try:
                aggregate.set_result(out)
            except InvalidStateError:
                pass

    for chunk in chunk_futures:
        chunk.add_done_callback(on_done)
    return aggregate


def _combine_fused(
    chunk_futures: "list[Future]", members: "tuple[str, ...]"
) -> "dict[str, Future]":
    """Demultiplex fused chunk results into one future per member.

    Each chunk future resolves to one entry per member — ``("ok",
    per_doc_lists, truncated)`` or ``("err", exc)``.  A member's future
    concatenates its ``ok`` slices across chunks in submission order
    (byte-identical to the member's sequential batch); the first
    member-scoped ``err`` in chunk order fails that member's future
    alone, and a chunk-level failure (deadline, lost workers, shed,
    close) fails every member's future with that exception — exactly
    what Q sequential submissions sharing the doomed fleet would see.
    """
    out: "dict[str, Future]" = {qid: Future() for qid in members}
    if not chunk_futures:
        for fut in out.values():
            fut.set_result([])
        return out
    remaining = [len(chunk_futures)]
    remaining_lock = threading.Lock()

    def on_done(_f: Future) -> None:
        with remaining_lock:
            remaining[0] -= 1
            if remaining[0]:
                return
        for m, qid in enumerate(members):
            fut = out[qid]
            if fut.cancelled():
                continue
            docs: list = []
            exc: BaseException | None = None
            for chunk in chunk_futures:
                try:
                    slots = chunk.result()
                except BaseException as err:
                    exc = err
                    break
                slot = slots[m]
                if slot[0] == "err":
                    exc = slot[1]
                    break
                docs.extend(slot[1])
            try:
                if exc is not None:
                    fut.set_exception(exc)
                else:
                    fut.set_result(docs)
            except InvalidStateError:  # cancelled concurrently
                pass

    for chunk in chunk_futures:
        chunk.add_done_callback(on_done)
    return out
