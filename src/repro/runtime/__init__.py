"""Compiled-spanner runtime: amortize preprocessing across documents.

* :mod:`.tables` — :class:`AutomatonTables`, the string-independent
  artifacts of Theorem 3.3's preprocessing (trim/compaction,
  configuration sweep, interned VE closures, terminal-edge lists, the
  lazily grown character-indexed burst-step table), plus the shared
  :func:`tables_for` cache;
* :mod:`.compiled` — :class:`CompiledSpanner`, the compile-once /
  evaluate-many entry point with batch APIs.

``CompiledSpanner`` is exposed lazily (PEP 562): :mod:`.tables` sits
*below* the enumeration layer (the evaluation-graph construction builds
on it), while :mod:`.compiled` sits *above* it, so importing both
eagerly here would close an import cycle.
"""

from __future__ import annotations

from .tables import AutomatonTables, tables_for

__all__ = ["AutomatonTables", "tables_for", "CompiledSpanner"]


def __getattr__(name: str):
    if name == "CompiledSpanner":
        from .compiled import CompiledSpanner

        return CompiledSpanner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
