"""Compiled-spanner runtime: amortize preprocessing across documents.

* :mod:`.tables` — :class:`AutomatonTables`, the string-independent
  artifacts of Theorem 3.3's preprocessing (trim/compaction,
  configuration sweep, interned VE closures, terminal-edge lists, the
  character-indexed burst-step table — lazily grown, or prebuilt
  eagerly for statically-known alphabets), plus the shared
  :func:`tables_for` cache; picklable, so one compiled artifact can be
  shipped to worker processes;
* :mod:`.cache` — the process-wide bounded LRU compilation cache with
  hit/miss/eviction counters (:func:`compilation_cache`,
  :func:`cache_metrics`);
* :mod:`.compiled` — :class:`CompiledSpanner`, the compile-once /
  evaluate-many entry point with batch APIs;
* :mod:`.equality` — the fused equality-join runtime
  (:func:`equality_join`, never materializing Theorem 5.4's per-string
  ``A_eq``) and :class:`CompiledEqualityQuery`, its ship-to-workers
  per-query artifact;
* :mod:`.transport` — the shared-memory document transport: chunked
  corpora packed into ref-counted ``multiprocessing.shared_memory``
  segments with explicit owner-unlinks (plus the ``mmap`` read path
  for huge file-backed documents);
* :mod:`.service` — :class:`SpannerService`, the long-lived queue-fed
  worker fleet serving *multiple* registered queries (keyed by query
  fingerprint into each worker's engine table) with worker recycling,
  crash re-dispatch with backoff, per-task deadlines over a heartbeat
  channel, per-query quarantine breakers, overload shedding policies,
  an asyncio front-end and transport negotiation
  (``transport={"auto","shm","pipe"}``);
* :mod:`.store` — :class:`ArtifactStore` / :class:`MemoryStore` /
  :class:`FileStore`, the crash-safe fingerprint-keyed store of
  compiled artifacts behind warm ``register()`` starts and
  :meth:`SpannerService.restore` (atomic durable writes, checksummed
  versioned headers, corrupt-entry quarantine, LRU byte budgets);
* :mod:`.fusion` — :class:`FusedQuery` / :class:`FusedEngine` and
  :func:`plan_submission`, the one-pass multi-query fusion layer: a
  registered query set unioned into a single tagged sweep per document
  (the Theorem 3.11 union-in-one-pass shape, generalized to arbitrary
  members) with per-member tuple streams byte-identical to sequential
  serving, behind :meth:`SpannerService.extract_all`;
* :mod:`.faults` — :class:`FaultPlan` / :class:`FaultSpec`, the
  deterministic fault-injection harness the chaos suite threads into
  fleet workers (hangs, crashes, slow decodes, shm attach failures at
  chosen task indices; since PR 8 also torn/corrupt store writes and
  driver kills for the crash-recovery suite);
* :mod:`.backends` — the pluggable compute layer under the service:
  :class:`ComputeBackend` (the mechanism contract — spawn/recycle
  workers, ship artifacts once per worker lifetime, dispatch, collect,
  heartbeat/RSS, kill-and-replace) with process, thread and serial
  implementations selected by ``backend={"auto","serial","thread",
  "process"}`` on :class:`SpannerService` / :class:`ParallelSpanner`;
* :mod:`.parallel` — :class:`ParallelSpanner`, multiprocess corpus
  sharding over one pickled/rebuilt artifact (``AutomatonTables`` or a
  ``CompiledEqualityQuery``) — since PR 4 a thin single-query session
  over a :class:`SpannerService` fleet.

``CompiledSpanner`` / ``ParallelSpanner`` are exposed lazily (PEP 562):
:mod:`.tables` sits *below* the enumeration layer (the evaluation-graph
construction builds on it), while the spanner classes sit *above* it,
so importing everything eagerly here would close an import cycle.
"""

from __future__ import annotations

from .cache import CacheStats, LRUCache, cache_metrics, compilation_cache
from .tables import AutomatonTables, tables_for

__all__ = [
    "AutomatonTables",
    "tables_for",
    "CompiledSpanner",
    "estimate_compile_states",
    "CompiledEqualityQuery",
    "ParallelSpanner",
    "SpannerService",
    "QueryHandle",
    "FusedQuery",
    "FusedEngine",
    "plan_submission",
    "equality_join",
    "CacheStats",
    "LRUCache",
    "cache_metrics",
    "compilation_cache",
    "SharedMemoryTransport",
    "TransportUnavailableError",
    "shm_available",
    "sweep_orphaned_segments",
    "FaultPlan",
    "FaultSpec",
    "BACKEND_NAMES",
    "ComputeBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "default_backend_name",
    "ArtifactStore",
    "MemoryStore",
    "FileStore",
    "STORE_FORMAT_VERSION",
]


def __getattr__(name: str):
    if name in ("CompiledSpanner", "estimate_compile_states"):
        from . import compiled

        return getattr(compiled, name)
    if name == "ParallelSpanner":
        from .parallel import ParallelSpanner

        return ParallelSpanner
    if name in ("SpannerService", "QueryHandle"):
        from . import service

        return getattr(service, name)
    if name in ("FusedQuery", "FusedEngine", "plan_submission"):
        from . import fusion

        return getattr(fusion, name)
    if name == "CompiledEqualityQuery":
        from .equality import CompiledEqualityQuery

        return CompiledEqualityQuery
    if name == "equality_join":
        from .equality import equality_join

        return equality_join
    if name in ("SharedMemoryTransport", "TransportUnavailableError",
                "shm_available", "sweep_orphaned_segments"):
        from . import transport

        return getattr(transport, name)
    if name in ("FaultPlan", "FaultSpec"):
        from . import faults

        return getattr(faults, name)
    if name in ("BACKEND_NAMES", "ComputeBackend", "ProcessBackend",
                "SerialBackend", "ThreadBackend", "default_backend_name"):
        from . import backends

        return getattr(backends, name)
    if name in ("ArtifactStore", "MemoryStore", "FileStore",
                "STORE_FORMAT_VERSION"):
        from . import store

        return getattr(store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
