"""Deterministic fault injection for the serving fleet.

The chaos suite in ``tests/test_faults.py`` needs to reproduce the
failure modes the fleet defends against — hangs, crashes, slow decodes,
shared-memory attach races — at *exactly* chosen points, every run.
Randomised chaos finds bugs once; deterministic chaos keeps them fixed.

A :class:`FaultPlan` is a picklable map from **global task index** to a
:class:`FaultSpec`.  Task indices are assigned by the driver in
submission order (``SpannerService`` numbers tasks with a process-wide
counter), so a plan like "crash on task 3, hang on task 7" means the
same thing regardless of which worker the tasks land on.  The plan is
shipped to every worker at spawn time and consulted once per attempt,
*before* the task body runs:

``crash``
    the worker calls ``os._exit`` — simulates a segfault / OOM kill.
``hang``
    the worker sleeps far past any reasonable deadline — simulates an
    intractable document (Theorems 4.5/4.9 say these exist for any
    budget) or a stuck syscall.  The heartbeat keeps the *old* stamp,
    so the collector sees the task age past its deadline.
``slow``
    the worker sleeps briefly, then completes normally — simulates a
    slow decode; results must still be byte-identical.
``shm_attach``
    the worker raises :class:`~repro.errors.TransientTaskError` —
    simulates the shared-memory attach race where a segment is not yet
    visible in the worker's namespace; the driver must re-dispatch.

PR 7 adds the *resource* faults the governance layer defends against:

``rss_bloat``
    the worker leaks ``amount`` bytes on purpose (kept alive in a
    module global), so its RSS crosses the memory watchdog's limit —
    the task itself still completes correctly; the driver must
    drain-and-recycle the worker at the next task boundary.
``tuple_flood``
    the task's engine is wrapped so every document's result stream is
    padded to ``amount`` tuples — simulates the combinatorially large
    outputs Theorem 5.4 allows, deterministically, whatever the
    document; the result caps must fail (or truncate) exactly this
    task.
``shm_enospc``
    *driver-side*: chosen pack sequence numbers fail segment
    allocation with a synthetic ``ENOSPC``
    (:meth:`~repro.runtime.transport.SharedMemoryTransport.inject_enospc`),
    so the pipe fallback is exercised without filling ``/dev/shm``.
    Configured per *pack index*, not per task — packing happens on
    submitter threads before a task exists.
``slow_compile``
    *driver-side*: every ``register()`` compilation sleeps first, so a
    ``compile_timeout`` fires deterministically.

PR 8 adds the *durability* faults the persistence layer defends
against:

``store_torn_write``
    *driver-side*: chosen artifact-store put sequence numbers leave
    their entry half-written on disk
    (:meth:`~repro.runtime.store.ArtifactStore.inject_torn_write`) —
    the state a crash mid-write would leave without the store's atomic
    rename, and what a reader must detect as truncation.
``store_corrupt``
    *driver-side*: chosen puts land with a flipped payload byte
    (:meth:`~repro.runtime.store.ArtifactStore.inject_corrupt`), so the
    checksum path — quarantine to ``*.corrupt``, recompile, never fail
    the query — is exercised deterministically.
``driver_kill``
    *driver-side*: the **driver itself** takes ``SIGKILL`` after a
    chosen number of completed tasks — mid-stream, with segments in
    flight and futures unresolved.  This is the fault
    ``SpannerService.restore()`` and the orphan janitor exist for; it
    necessarily runs in a sacrificial subprocess.

Each spec may be limited to specific *attempts* (1-based), so a plan
can express "fail transiently on the first two attempts, succeed on
the third" and the retry/backoff path is exercised end to end.

Plans are inert by default: a worker with no plan (the production
configuration) pays a single ``None`` check per task.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..errors import TransientTaskError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]


class _InjectedWorkerDeath(BaseException):
    """An injected crash on a substrate that shares the driver's process.

    ``os._exit`` would take the whole service down when the "worker" is
    a thread or the inline caller, so crash faults on those backends
    raise this instead (``trigger(inline=True)``).  Deliberately a
    ``BaseException``: it must sail through the worker core's per-task
    ``except Exception`` reporting exactly like a SIGKILL gives a
    process worker no chance to report — the backend's dispatch loop
    catches it, marks the worker dead, and produces no result.
    """

#: Recognised fault kinds, in the order the docstring introduces them.
#: ``shm_enospc`` and ``slow_compile`` are consulted driver-side (plan
#: fields, not task specs); the rest execute in the worker.
FAULT_KINDS = (
    "crash", "hang", "slow", "shm_attach", "rss_bloat", "tuple_flood",
)

#: How long a "hang" sleeps.  Long enough that any test deadline fires
#: first; short enough that a kill-path bug fails the suite instead of
#: wedging CI forever.
HANG_SECONDS = 600.0

#: Exit code used by injected crashes, distinguishable from a Python
#: traceback (1) and a signal death (negative) in worker post-mortems.
CRASH_EXIT_CODE = 86

#: Default leak size for ``rss_bloat`` — big enough to cross any
#: realistic test watchdog limit in one hop.
BLOAT_BYTES = 256 * 1024 * 1024

#: Default padded result size for ``tuple_flood``.  Finite on purpose:
#: a flood against an *uncapped* fleet must still terminate (slowly)
#: instead of hanging the suite.
FLOOD_TUPLES = 100_000

#: Keeps injected rss_bloat allocations alive for the worker's
#: remaining lifetime — the point is a *persistent* RSS high-water
#: mark the watchdog can see at the next task boundary.
_BLOAT_HOLD: list = []


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens, for how long, on which attempts.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        seconds: sleep duration for ``hang``/``slow`` (defaults: a
            very long time for ``hang``, 0.05s for ``slow``).
        attempts: 1-based attempt numbers the fault applies to, or
            ``None`` for every attempt.  ``attempts=(1,)`` means "fail
            once, then succeed" — the canonical transient fault.
        amount: size parameter for the resource faults — leaked bytes
            for ``rss_bloat``, padded tuples per document for
            ``tuple_flood``.
        member: for *fused* tasks, the member query id whose per-member
            phase triggers the fault (via :meth:`FaultPlan.apply_member`
            rather than :meth:`FaultPlan.apply`) — this is how the
            chaos suite proves a fused-task failure indicts exactly the
            offending member's circuit breaker.  ``None`` (the default)
            fires at task start, whatever the task's shape.
    """

    kind: str
    seconds: float | None = None
    attempts: tuple[int, ...] | None = None
    amount: int | None = None
    member: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )

    def applies_to(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts

    def trigger(self, inline: bool = False) -> None:
        """Execute the fault in the worker.  May not return.

        ``inline`` marks substrates sharing the driver's process
        (thread / serial backends): a crash there raises
        :class:`_InjectedWorkerDeath` for the backend to treat as
        sudden worker death, instead of ``os._exit``-ing the service.
        """
        if self.kind == "crash":
            if inline:
                raise _InjectedWorkerDeath(
                    f"injected crash (inline worker, attempt spec {self.attempts})"
                )
            # A real segfault gives the interpreter no chance to flush,
            # run atexit hooks, or release shm handles; _exit matches.
            os._exit(CRASH_EXIT_CODE)
        elif self.kind == "hang":
            time.sleep(HANG_SECONDS if self.seconds is None else self.seconds)
        elif self.kind == "slow":
            time.sleep(0.05 if self.seconds is None else self.seconds)
        elif self.kind == "shm_attach":
            raise TransientTaskError(
                "injected fault: shared-memory segment not attachable"
            )
        elif self.kind == "rss_bloat":
            # Leak on purpose: the watchdog watches RSS at task
            # boundaries, so the allocation must outlive the task.
            _BLOAT_HOLD.append(bytearray(
                BLOAT_BYTES if self.amount is None else self.amount
            ))
        # tuple_flood does nothing here — the worker consults
        # FaultPlan.flood_amount and wraps the task's engine instead,
        # because the flood must happen *during* enumeration, after
        # the engine is materialized.


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, keyed by global task index.

    Build one with the fluent helpers and pass it to
    ``SpannerService(fault_plan=...)``::

        plan = (FaultPlan()
                .crash(task=3)
                .hang(task=7)
                .shm_fault(task=9, attempts=(1, 2)))

    The plan is pickled into each worker at spawn; mutating it after
    the service starts has no effect on already-running workers.

    The driver-side faults live on the plan itself rather than in
    ``specs``: ``enospc_packs`` names transport pack indices whose
    segment allocation fails (consulted when the service wires its
    transport), ``compile_delay`` makes every ``register()``
    compilation sleep first (consulted by the admission-control path),
    ``store_torn_puts``/``store_corrupt_puts`` name artifact-store put
    sequence numbers left torn / bit-flipped (wired into the service's
    ``artifact_store``), and ``kill_after_tasks`` SIGKILLs the driver
    itself once that many tasks have completed (consulted by the
    collector — run it in a sacrificial subprocess).
    """

    specs: dict[int, FaultSpec] = field(default_factory=dict)
    enospc_packs: frozenset = frozenset()
    compile_delay: float | None = None
    store_torn_puts: frozenset = frozenset()
    store_corrupt_puts: frozenset = frozenset()
    kill_after_tasks: int | None = None

    # -- builders ------------------------------------------------------

    def add(self, task: int, spec: FaultSpec) -> "FaultPlan":
        if task < 0:
            raise ValueError(f"task index must be >= 0, got {task}")
        self.specs[task] = spec
        return self

    def crash(
        self,
        task: int,
        attempts: tuple[int, ...] | None = None,
        member: str | None = None,
    ) -> "FaultPlan":
        return self.add(
            task, FaultSpec("crash", attempts=attempts, member=member)
        )

    def hang(
        self,
        task: int,
        seconds: float | None = None,
        attempts: tuple[int, ...] | None = None,
        member: str | None = None,
    ) -> "FaultPlan":
        return self.add(
            task,
            FaultSpec("hang", seconds=seconds, attempts=attempts, member=member),
        )

    def slow(
        self,
        task: int,
        seconds: float | None = None,
        attempts: tuple[int, ...] | None = None,
    ) -> "FaultPlan":
        return self.add(task, FaultSpec("slow", seconds=seconds, attempts=attempts))

    def shm_fault(
        self, task: int, attempts: tuple[int, ...] | None = None
    ) -> "FaultPlan":
        return self.add(task, FaultSpec("shm_attach", attempts=attempts))

    def rss_bloat(
        self,
        task: int,
        amount: int | None = None,
        attempts: tuple[int, ...] | None = None,
    ) -> "FaultPlan":
        return self.add(
            task, FaultSpec("rss_bloat", attempts=attempts, amount=amount)
        )

    def tuple_flood(
        self,
        task: int,
        amount: int | None = None,
        attempts: tuple[int, ...] | None = None,
    ) -> "FaultPlan":
        return self.add(
            task, FaultSpec("tuple_flood", attempts=attempts, amount=amount)
        )

    def shm_enospc(self, *packs: int) -> "FaultPlan":
        """Fail segment allocation for these pack indices (0-based, in
        transport pack order — submission order for one submitter)."""
        if any(p < 0 for p in packs):
            raise ValueError(f"pack indices must be >= 0, got {packs}")
        self.enospc_packs = self.enospc_packs | frozenset(packs)
        return self

    def slow_compile(self, seconds: float) -> "FaultPlan":
        """Make every ``register()`` compilation sleep first."""
        if seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {seconds}")
        self.compile_delay = seconds
        return self

    def store_torn_write(self, *puts: int) -> "FaultPlan":
        """Leave these artifact-store puts (0-based, in put order)
        half-written — a torn entry the next read must quarantine."""
        if any(p < 0 for p in puts):
            raise ValueError(f"put indices must be >= 0, got {puts}")
        self.store_torn_puts = self.store_torn_puts | frozenset(puts)
        return self

    def store_corrupt(self, *puts: int) -> "FaultPlan":
        """Flip a payload byte of these artifact-store puts — a
        checksum mismatch the next read must quarantine."""
        if any(p < 0 for p in puts):
            raise ValueError(f"put indices must be >= 0, got {puts}")
        self.store_corrupt_puts = self.store_corrupt_puts | frozenset(puts)
        return self

    def driver_kill(self, after_tasks: int) -> "FaultPlan":
        """SIGKILL the driver once ``after_tasks`` tasks have completed.

        The kill is unceremonious by design — no close(), no atexit, no
        finalizers — so only what was made durable *before* it (the
        manifest, the artifact store) survives for ``restore()``, and
        only the janitor can reclaim the session's segments.
        """
        if after_tasks < 1:
            raise ValueError(f"after_tasks must be >= 1, got {after_tasks}")
        self.kill_after_tasks = after_tasks
        return self

    # -- worker side ---------------------------------------------------

    def flood_amount(self, task_id: int, attempt: int) -> int | None:
        """Padded per-document tuple count, when a flood is planned here.

        Returns ``None`` (no flood) for every task without an applicable
        ``tuple_flood`` spec — the worker wraps the task's engine in
        :class:`_FloodingEngine` only on a non-``None`` return.
        """
        spec = self.specs.get(task_id)
        if (
            spec is not None
            and spec.kind == "tuple_flood"
            and spec.applies_to(attempt)
        ):
            return FLOOD_TUPLES if spec.amount is None else spec.amount
        return None

    def apply(
        self, task_id: int, attempt: int, inline: bool = False
    ) -> None:
        """Trigger the fault for (task_id, attempt), if any is planned.

        Called by the worker loop just after stamping the heartbeat and
        before touching the payload, so injected faults model failures
        *during* task execution.  May crash the process, sleep, or
        raise :class:`~repro.errors.TransientTaskError`.

        Member-scoped specs (``member=...``) are skipped here — they
        fire from :meth:`apply_member` inside the named member's phase
        of a fused task.
        """
        spec = self.specs.get(task_id)
        if spec is not None and spec.member is None and spec.applies_to(attempt):
            spec.trigger(inline=inline)

    def apply_member(
        self,
        task_id: int,
        attempt: int,
        query_id: str,
        inline: bool = False,
    ) -> None:
        """Trigger a member-scoped fault inside a fused task's phase.

        Called by the fused-task runner just after stamping the member
        ordinal into the heartbeat and before evaluating that member,
        so the injected failure lands where a real per-member failure
        would — attributable to exactly one query.
        """
        spec = self.specs.get(task_id)
        if (
            spec is not None
            and spec.member == query_id
            and spec.applies_to(attempt)
        ):
            spec.trigger(inline=inline)

    def __bool__(self) -> bool:
        return (
            bool(self.specs)
            or bool(self.enospc_packs)
            or self.compile_delay is not None
            or bool(self.store_torn_puts)
            or bool(self.store_corrupt_puts)
            or self.kill_after_tasks is not None
        )


class _FloodingEngine:
    """Engine wrapper that pads every document's stream to ``amount``.

    Used by the worker loop when :meth:`FaultPlan.flood_amount` names
    the current task: the base engine's genuine tuples come out first
    (so parity checks on the surviving prefix stay meaningful), then the
    last tuple repeats until ``amount`` tuples have been yielded —
    combinatorial output volume without a combinatorial document.
    Documents with no matches stay empty: there is nothing to repeat,
    and an all-empty flood would silently test nothing, so flood tests
    use matching documents.

    ``count`` delegates untouched — the flood targets enumeration,
    where the result caps do their incremental accounting.
    """

    def __init__(self, base, amount: int):
        self._base = base
        self._amount = amount

    def stream(self, doc):
        produced = 0
        last = None
        for mu in self._base.stream(doc):
            if produced >= self._amount:
                return
            last = mu
            produced += 1
            yield mu
        if last is None:
            return
        while produced < self._amount:
            yield last
            produced += 1

    def count(self, doc, cap=None):
        return self._base.count(doc, cap=cap)
