"""Deterministic fault injection for the serving fleet.

The chaos suite in ``tests/test_faults.py`` needs to reproduce the
failure modes the fleet defends against — hangs, crashes, slow decodes,
shared-memory attach races — at *exactly* chosen points, every run.
Randomised chaos finds bugs once; deterministic chaos keeps them fixed.

A :class:`FaultPlan` is a picklable map from **global task index** to a
:class:`FaultSpec`.  Task indices are assigned by the driver in
submission order (``SpannerService`` numbers tasks with a process-wide
counter), so a plan like "crash on task 3, hang on task 7" means the
same thing regardless of which worker the tasks land on.  The plan is
shipped to every worker at spawn time and consulted once per attempt,
*before* the task body runs:

``crash``
    the worker calls ``os._exit`` — simulates a segfault / OOM kill.
``hang``
    the worker sleeps far past any reasonable deadline — simulates an
    intractable document (Theorems 4.5/4.9 say these exist for any
    budget) or a stuck syscall.  The heartbeat keeps the *old* stamp,
    so the collector sees the task age past its deadline.
``slow``
    the worker sleeps briefly, then completes normally — simulates a
    slow decode; results must still be byte-identical.
``shm_attach``
    the worker raises :class:`~repro.errors.TransientTaskError` —
    simulates the shared-memory attach race where a segment is not yet
    visible in the worker's namespace; the driver must re-dispatch.

Each spec may be limited to specific *attempts* (1-based), so a plan
can express "fail transiently on the first two attempts, succeed on
the third" and the retry/backoff path is exercised end to end.

Plans are inert by default: a worker with no plan (the production
configuration) pays a single ``None`` check per task.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..errors import TransientTaskError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

#: Recognised fault kinds, in the order the docstring introduces them.
FAULT_KINDS = ("crash", "hang", "slow", "shm_attach")

#: How long a "hang" sleeps.  Long enough that any test deadline fires
#: first; short enough that a kill-path bug fails the suite instead of
#: wedging CI forever.
HANG_SECONDS = 600.0

#: Exit code used by injected crashes, distinguishable from a Python
#: traceback (1) and a signal death (negative) in worker post-mortems.
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens, for how long, on which attempts.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        seconds: sleep duration for ``hang``/``slow`` (defaults: a
            very long time for ``hang``, 0.05s for ``slow``).
        attempts: 1-based attempt numbers the fault applies to, or
            ``None`` for every attempt.  ``attempts=(1,)`` means "fail
            once, then succeed" — the canonical transient fault.
    """

    kind: str
    seconds: float | None = None
    attempts: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )

    def applies_to(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts

    def trigger(self) -> None:
        """Execute the fault in the worker process.  May not return."""
        if self.kind == "crash":
            # A real segfault gives the interpreter no chance to flush,
            # run atexit hooks, or release shm handles; _exit matches.
            os._exit(CRASH_EXIT_CODE)
        elif self.kind == "hang":
            time.sleep(HANG_SECONDS if self.seconds is None else self.seconds)
        elif self.kind == "slow":
            time.sleep(0.05 if self.seconds is None else self.seconds)
        elif self.kind == "shm_attach":
            raise TransientTaskError(
                "injected fault: shared-memory segment not attachable"
            )


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, keyed by global task index.

    Build one with the fluent helpers and pass it to
    ``SpannerService(fault_plan=...)``::

        plan = (FaultPlan()
                .crash(task=3)
                .hang(task=7)
                .shm_fault(task=9, attempts=(1, 2)))

    The plan is pickled into each worker at spawn; mutating it after
    the service starts has no effect on already-running workers.
    """

    specs: dict[int, FaultSpec] = field(default_factory=dict)

    # -- builders ------------------------------------------------------

    def add(self, task: int, spec: FaultSpec) -> "FaultPlan":
        if task < 0:
            raise ValueError(f"task index must be >= 0, got {task}")
        self.specs[task] = spec
        return self

    def crash(self, task: int, attempts: tuple[int, ...] | None = None) -> "FaultPlan":
        return self.add(task, FaultSpec("crash", attempts=attempts))

    def hang(
        self,
        task: int,
        seconds: float | None = None,
        attempts: tuple[int, ...] | None = None,
    ) -> "FaultPlan":
        return self.add(task, FaultSpec("hang", seconds=seconds, attempts=attempts))

    def slow(
        self,
        task: int,
        seconds: float | None = None,
        attempts: tuple[int, ...] | None = None,
    ) -> "FaultPlan":
        return self.add(task, FaultSpec("slow", seconds=seconds, attempts=attempts))

    def shm_fault(
        self, task: int, attempts: tuple[int, ...] | None = None
    ) -> "FaultPlan":
        return self.add(task, FaultSpec("shm_attach", attempts=attempts))

    # -- worker side ---------------------------------------------------

    def apply(self, task_id: int, attempt: int) -> None:
        """Trigger the fault for (task_id, attempt), if any is planned.

        Called by the worker loop just after stamping the heartbeat and
        before touching the payload, so injected faults model failures
        *during* task execution.  May crash the process, sleep, or
        raise :class:`~repro.errors.TransientTaskError`.
        """
        spec = self.specs.get(task_id)
        if spec is not None and spec.applies_to(attempt):
            spec.trigger()

    def __bool__(self) -> bool:
        return bool(self.specs)
