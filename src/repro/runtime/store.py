"""Crash-safe persistence for compiled query artifacts.

The paper's whole economics rest on compile-once/evaluate-many
(Theorem 3.3: the expensive preprocessing is *string-independent*), but
until this module the "once" meant once per driver process — a restart
recompiled every registered query from scratch.  An
:class:`ArtifactStore` makes the compiled artifact a durable,
fingerprint-keyed blob instead of ephemeral process state, so
``SpannerService(artifact_store=...)`` can warm-start ``register()``
and ``SpannerService.restore()`` can rebuild a fleet after ``kill -9``
without recompiling anything the store still holds.

Two implementations share one contract and one on-disk/encoded format:

:class:`MemoryStore`
    a process-local dict — the test double and the "cache but don't
    persist" configuration.  It stores *encoded* blobs (header and
    all), so corruption detection behaves identically to disk.

:class:`FileStore`
    a directory of ``<key>.art`` files.  Writes are atomic and durable
    (same-directory tmp file + ``fsync`` + ``os.replace`` + directory
    ``fsync``), so a crash at any instant leaves either the old entry,
    the new entry, or a stray tmp file — never a half-written entry
    under the live name.  Reads verify a versioned, checksummed header;
    anything torn or bit-flipped is *quarantined* (renamed to
    ``<key>.corrupt``) and surfaced as a picklable
    :class:`~repro.errors.ArtifactCorruptError`, which callers treat as
    a miss — the artifact is a pure function of the query, so
    recompiling is always a correct recovery.  An optional byte budget
    evicts least-recently-used entries (read hits refresh recency via
    ``mtime``).

Blob format (``encode_artifact`` / ``decode_artifact``)::

    magic   5 bytes   b"SJART"
    version u16 BE    STORE_FORMAT_VERSION — bump on layout change;
                      readers reject other versions as corrupt
    length  u64 BE    payload byte count
    digest  32 bytes  sha256(payload)
    payload length bytes (a pickle the runtime already exchanges with
                      its workers: AutomatonTables, vset extractors,
                      CompiledEqualityQuery)

The chaos hooks (:meth:`ArtifactStore.inject_torn_write`,
:meth:`ArtifactStore.inject_corrupt`) mirror the transport's
``inject_enospc``: ``FaultPlan.store_torn_write(...)`` /
``store_corrupt(...)`` name 0-based **put** sequence numbers whose
entry is left truncated / bit-flipped on disk, exactly as a crash or a
decaying disk would — so the recovery path is tested without timing
games.
"""

from __future__ import annotations

import hashlib
import os
import re
import struct
import threading
from pathlib import Path
from typing import Iterable

from ..errors import ArtifactCorruptError

__all__ = [
    "ArtifactStore",
    "MemoryStore",
    "FileStore",
    "STORE_FORMAT_VERSION",
    "encode_artifact",
    "decode_artifact",
]

#: Bump when the blob layout changes; readers quarantine other versions.
STORE_FORMAT_VERSION = 1

_MAGIC = b"SJART"
_HEADER = struct.Struct(">5sHQ32s")  # magic, version, payload length, sha256

#: Keys become file names, so they are restricted to a filesystem- and
#: shell-safe alphabet.  The service generates ``s<hex>`` (source
#: fingerprints) and ``a<hex>`` (artifact fingerprints).
_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_ENTRY_SUFFIX = ".art"
_QUARANTINE_SUFFIX = ".corrupt"
_TMP_PREFIX = ".tmp-"


def encode_artifact(payload: bytes) -> bytes:
    """Frame ``payload`` with the versioned, checksummed store header."""
    if not isinstance(payload, bytes):
        raise TypeError(f"artifact payload must be bytes, got {type(payload).__name__}")
    digest = hashlib.sha256(payload).digest()
    return _HEADER.pack(_MAGIC, STORE_FORMAT_VERSION, len(payload), digest) + payload


def decode_artifact(blob: bytes, *, key: str = "?") -> bytes:
    """Verify a framed blob and return its payload.

    Raises :class:`~repro.errors.ArtifactCorruptError` naming the first
    failed check; the caller decides whether to quarantine.
    """
    if len(blob) < _HEADER.size:
        raise ArtifactCorruptError(
            key, "truncated", f"{len(blob)} bytes < {_HEADER.size}-byte header"
        )
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ArtifactCorruptError(key, "bad-magic", repr(magic))
    if version != STORE_FORMAT_VERSION:
        raise ArtifactCorruptError(
            key,
            "bad-version",
            f"entry is format v{version}, this build reads v{STORE_FORMAT_VERSION}",
        )
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        raise ArtifactCorruptError(
            key, "truncated", f"header promises {length} payload bytes, found {len(payload)}"
        )
    actual = hashlib.sha256(payload).digest()
    if actual != digest:
        raise ArtifactCorruptError(
            key, "bad-checksum",
            f"sha256 {actual.hex()[:16]}… != recorded {digest.hex()[:16]}…",
        )
    return payload


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not _KEY_RE.match(key):
        raise ValueError(
            f"invalid store key {key!r}: keys must match {_KEY_RE.pattern}"
        )
    return key


class ArtifactStore:
    """Contract + shared counters for compiled-artifact stores.

    Subclasses implement :meth:`_read`, :meth:`_write`,
    :meth:`_quarantine`, :meth:`_evict_for` and :meth:`entries`; the
    base class owns the counters, the integrity checking and the chaos
    hooks so every implementation counts and corrupts identically.
    All public methods are thread-safe (``register()`` may race the
    collector's manifest writes).
    """

    def __init__(self, *, budget: int | None = None):
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.budget = budget
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupt_quarantined = 0
        self._evicted = 0
        self._put_seq = 0
        self._torn_puts: frozenset = frozenset()
        self._corrupt_puts: frozenset = frozenset()

    # -- chaos hooks (mirror SharedMemoryTransport.inject_enospc) ------

    def inject_torn_write(self, puts: Iterable[int]) -> None:
        """Leave these puts (0-based sequence numbers) half-written."""
        self._torn_puts = self._torn_puts | frozenset(puts)

    def inject_corrupt(self, puts: Iterable[int]) -> None:
        """Flip a payload byte of these puts after they land."""
        self._corrupt_puts = self._corrupt_puts | frozenset(puts)

    # -- contract ------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """Return the payload for ``key``, or ``None`` on a miss.

        A corrupt entry is quarantined, counted, and raised as
        :class:`~repro.errors.ArtifactCorruptError`; the *next* get of
        the same key is a clean miss.
        """
        _check_key(key)
        with self._lock:
            blob = self._read(key)
            if blob is None:
                self._misses += 1
                return None
            try:
                payload = decode_artifact(blob, key=key)
            except ArtifactCorruptError:
                self._quarantine(key)
                self._corrupt_quarantined += 1
                raise
            self._hits += 1
            self._touch(key)
            return payload

    def put(self, key: str, payload: bytes) -> None:
        """Store ``payload`` under ``key`` (atomic, durable, budgeted).

        A payload that alone exceeds the budget is silently not stored
        — the store is a cache, never a correctness dependency.
        """
        _check_key(key)
        blob = encode_artifact(payload)
        with self._lock:
            seq = self._put_seq
            self._put_seq += 1
            if self.budget is not None:
                if len(blob) > self.budget:
                    return
                self._evict_for(key, len(blob))
            if seq in self._torn_puts:
                blob = blob[: max(1, len(blob) // 2)]
            elif seq in self._corrupt_puts:
                mutated = bytearray(blob)
                mutated[-1] ^= 0xFF  # flip a payload bit, header intact
                blob = bytes(mutated)
            self._write(key, blob)
            self._puts += 1

    def stats(self) -> dict:
        """Counters + occupancy, JSON-serializable (rides ``health()``)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts,
                "corrupt_quarantined": self._corrupt_quarantined,
                "evicted": self._evicted,
                "entries": len(self.keys()),
                "bytes_used": sum(size for _, size, _ in self.entries()),
                "budget": self.budget,
            }

    def verify(self) -> dict[str, str]:
        """Integrity-check every entry without quarantining.

        Returns ``{key: "ok" | "corrupt"}`` — the read-only audit
        behind ``spanner-join cache verify``.
        """
        report = {}
        with self._lock:
            for key, _, _ in self.entries():
                blob = self._read(key)
                if blob is None:
                    continue
                try:
                    decode_artifact(blob, key=key)
                except ArtifactCorruptError:
                    report[key] = "corrupt"
                else:
                    report[key] = "ok"
        return report

    def keys(self) -> list[str]:
        return [key for key, _, _ in self.entries()]

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release resources; the base stores hold none."""

    # -- subclass surface ----------------------------------------------

    def entries(self) -> list[tuple[str, int, float]]:
        """``(key, encoded bytes, recency)`` triples, oldest first."""
        raise NotImplementedError

    def _read(self, key: str) -> bytes | None:
        raise NotImplementedError

    def _write(self, key: str, blob: bytes) -> None:
        raise NotImplementedError

    def _quarantine(self, key: str) -> None:
        raise NotImplementedError

    def _touch(self, key: str) -> None:
        raise NotImplementedError

    def _evict_for(self, key: str, incoming: int) -> None:
        """Evict LRU entries until ``incoming`` bytes fit the budget."""
        assert self.budget is not None
        used = sum(size for k, size, _ in self.entries() if k != key)
        if used + incoming <= self.budget:
            return
        for victim, size, _ in self.entries():  # oldest first
            if victim == key:
                continue
            self._remove(victim)
            self._evicted += 1
            used -= size
            if used + incoming <= self.budget:
                return

    def _remove(self, key: str) -> None:
        raise NotImplementedError


class MemoryStore(ArtifactStore):
    """In-process store: encoded blobs in an insertion/recency dict."""

    def __init__(self, *, budget: int | None = None):
        super().__init__(budget=budget)
        self._blobs: dict[str, bytes] = {}
        self._clock = 0
        self._stamps: dict[str, int] = {}

    def entries(self) -> list[tuple[str, int, float]]:
        return sorted(
            ((k, len(b), float(self._stamps.get(k, 0))) for k, b in self._blobs.items()),
            key=lambda item: item[2],
        )

    def _read(self, key: str) -> bytes | None:
        return self._blobs.get(key)

    def _write(self, key: str, blob: bytes) -> None:
        self._blobs[key] = blob
        self._touch(key)

    def _quarantine(self, key: str) -> None:
        self._blobs.pop(key, None)
        self._stamps.pop(key, None)

    def _touch(self, key: str) -> None:
        self._clock += 1
        self._stamps[key] = self._clock

    def _remove(self, key: str) -> None:
        self._blobs.pop(key, None)
        self._stamps.pop(key, None)


class FileStore(ArtifactStore):
    """Durable store: one atomically-written ``<key>.art`` per entry.

    ``root`` is created on first use.  Entry recency for LRU eviction
    is the file ``mtime``, refreshed on every read hit — so eviction
    order survives restarts, which a dict-based LRU would not.
    """

    def __init__(self, root: str | os.PathLike, *, budget: int | None = None):
        super().__init__(budget=budget)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{_ENTRY_SUFFIX}"

    def entries(self) -> list[tuple[str, int, float]]:
        found = []
        for path in self.root.glob(f"*{_ENTRY_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced unlink
                continue
            found.append((path.name[: -len(_ENTRY_SUFFIX)], stat.st_size, stat.st_mtime))
        found.sort(key=lambda item: item[2])
        return found

    def quarantined(self) -> list[str]:
        """Names of quarantined files (for ``cache ls`` / ``cache gc``)."""
        return sorted(p.name for p in self.root.glob(f"*{_QUARANTINE_SUFFIX}"))

    def gc_quarantined(self) -> int:
        """Delete quarantined files; returns how many were removed."""
        removed = 0
        for path in self.root.glob(f"*{_QUARANTINE_SUFFIX}"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced unlink
                continue
        return removed

    def _read(self, key: str) -> bytes | None:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            return None

    def _write(self, key: str, blob: bytes) -> None:
        atomic_write_bytes(self._path(key), blob)

    def _quarantine(self, key: str) -> None:
        path = self._path(key)
        try:
            os.replace(path, path.with_suffix(_QUARANTINE_SUFFIX))
        except OSError:  # pragma: no cover - raced unlink
            pass

    def _touch(self, key: str) -> None:
        try:
            os.utime(self._path(key))
        except OSError:  # pragma: no cover - raced unlink
            pass

    def _remove(self, key: str) -> None:
        try:
            self._path(key).unlink()
        except OSError:  # pragma: no cover - raced unlink
            pass


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically and durably.

    Same-directory tmp file + ``fsync`` + ``os.replace``, then a
    best-effort directory ``fsync`` so the rename itself survives a
    crash.  Readers of ``path`` see the old bytes or the new bytes,
    never a mix — this is the primitive under both the ``FileStore``
    entries and the service's restart manifest.
    """
    path = Path(path)
    tmp = path.parent / f"{_TMP_PREFIX}{path.name}-{os.getpid()}"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX directory open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(fd)
