"""Multiprocess corpus sharding: a single-query session over the fleet.

``CompiledSpanner.evaluate_many`` is embarrassingly parallel per
document — every document runs the same string-dependent sweep over the
same immutable :class:`~repro.runtime.tables.AutomatonTables` — but a
single Python process is GIL-bound to one core.  :class:`ParallelSpanner`
shards a document iterable across worker processes.

Since PR 4 the workers behind it are a
:class:`~repro.runtime.service.SpannerService` fleet; ``ParallelSpanner``
is the *single-query streaming session* over that fleet, keeping the
API and guarantees it has had since PR 2:

* the compiled artifact is pickled **once** (the explicit serialization
  contract of :mod:`repro.runtime.tables`) and every worker receives it
  **once** for its lifetime — for an equality-free spanner that
  artifact is the ``AutomatonTables`` a per-process ``CompiledSpanner``
  is rebuilt around; for an equality workload it is a whole
  :class:`~repro.runtime.equality.CompiledEqualityQuery` (per-disjunct
  static tables + groups + head), and each worker runs the **fused
  equality join** locally per document — workers never recompile, and
  the interned closure tuples / prebuilt burst rows arrive intact;
* documents are dispatched in order as chunks of ``chunk_size``; at
  most ``max_pending`` chunks are in flight, which bounds both worker
  memory and how far ahead of the consumer the input iterable is read
  (backpressure — an unbounded stream composes);
* results are yielded strictly in input order, so the output is
  **identical** — same tuples, same radix order, same grouping — to
  the serial path's, whatever the worker count (and whatever crashes
  or recycles the underlying fleet absorbs along the way);
* ``workers=1`` runs the **serial backend** — the same service policy
  layer over inline execution, with no fleet, no pickling and no
  subprocesses (and since PR 10 the *same* code path as every other
  worker count, so result caps and file-backed reads behave
  identically at every ``workers`` setting).

A fleet is created per batch call by default; use the spanner as a
context manager to keep one fleet (and its per-worker unpickled tables)
alive across several ``evaluate_many`` / ``count_many`` calls::

    with ParallelSpanner(".*x{[0-9]+}.*", workers=4) as engine:
        for answers in engine.evaluate_many(corpus):
            ...

To serve *several* queries from one resident pool of workers — the
long-lived serving scenario — use :class:`SpannerService` directly and
register each query; ``ParallelSpanner`` remains the right interface
for one query over one corpus.

When sharding pays off: the per-document win is (evaluation time) vs
(IPC: one document in, its pickled tuples out), and the fixed cost is
fleet startup plus one tables shipment per worker.  Corpora of
hundreds of non-trivial documents amortize this easily; a handful of
tiny documents will not — stay serial (``workers=1``) there.  How the
document bytes travel is the ``transport`` knob: large in-memory
chunks ride ref-counted shared-memory segments instead of the task
pipe (:mod:`repro.runtime.transport`), file paths are read
worker-side, and small chunks stay on the pipe.
"""

from __future__ import annotations

# Process management lives in .service now, but multiprocessing stays
# imported here on purpose: the workers=1 contract ("never touches
# multiprocessing") is asserted by patching this module's reference to
# it — and get_context is one shared module-level function, so the
# patch guards the fleet path too.
import multiprocessing  # noqa: F401  (contract hook, see above)
import os
from collections import deque
from itertools import islice
from typing import TYPE_CHECKING, Iterable, Iterator

from ..spans import SpanTuple
from ..vset.automaton import VSetAutomaton
from .compiled import CompiledSpanner
from .equality import CompiledEqualityQuery
from .fusion import plan_submission
from .backends.base import BACKEND_NAMES
from .service import (
    OVERLOAD_POLICIES,
    RESULT_LIMIT_POLICIES,
    SpannerService,
)
from .transport import DEFAULT_SHM_THRESHOLD, create_transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..regex.ast import RegexFormula
    from .store import ArtifactStore

__all__ = ["ParallelSpanner"]

#: Documents per dispatched task.  Small enough to keep workers evenly
#: loaded on heterogeneous documents, large enough to amortize one
#: round of task pickling over many documents.
DEFAULT_CHUNK_SIZE = 16


class ParallelSpanner:
    """Shard document batches across worker processes (in-order results).

    Accepts anything ``CompiledSpanner`` accepts (an automaton, a regex
    formula, concrete syntax), an existing ``CompiledSpanner``, or a
    :class:`~repro.runtime.equality.CompiledEqualityQuery` — the fused
    equality engine shards exactly like an equality-free spanner, with
    its static tables shipped once per worker.

    Args:
        workers: fleet size; defaults to the machine's CPU count.
            ``workers=1`` with ``backend="auto"`` selects the serial
            backend (inline execution, no subprocesses).
        backend: the compute substrate under the session —
            ``"auto"`` (serial at ``workers=1``, else threads on a
            free-threaded interpreter, else processes), ``"serial"``,
            ``"thread"`` or ``"process"``; see
            :mod:`repro.runtime.backends`.
        chunk_size: documents per dispatched task.
        max_pending: chunks in flight before dispatch blocks; bounds
            read-ahead on the input iterable and result memory.
            Defaults to ``2 * workers``.
        mp_context: a :mod:`multiprocessing` start-method name
            ("fork", "spawn", "forkserver") or ``None`` for the
            platform default.
        transport: how in-memory documents reach the workers —
            ``"auto"`` (shared-memory segments above ``shm_threshold``
            encoded bytes per chunk, the task pipe below), ``"shm"``
            (forced) or ``"pipe"`` (forced); see
            :mod:`repro.runtime.transport`.
        shm_threshold: the ``"auto"`` negotiation bound, in bytes.
        encoding / errors: codec for file-backed documents
            (:meth:`evaluate_files`, serial and worker-side alike) and
            for shared-memory chunk packing.
        task_timeout: per-task execution deadline in seconds for the
            underlying fleet (``None`` = no deadline).  A chunk past it
            raises :class:`~repro.errors.TaskTimeoutError` out of the
            consuming iterator; the hung worker is killed and replaced
            underneath, so the session stays usable.  Not enforced on
            the serial backend — there is no worker to kill.
        on_overload: the fleet's load-shedding policy past its
            in-flight bound (``"block"``, ``"shed_oldest"``,
            ``"reject"``); see :class:`SpannerService`.  The session's
            own ``max_pending`` backpressure usually fills first.
        shm_budget: byte budget for the fleet's shared-memory segments;
            chunks the budget cannot fit degrade to the task pipe
            (results byte-identical); see :class:`SpannerService`.
        max_tuples / max_result_bytes: per-*document* result caps,
            enforced inside the workers; a capped document fails its
            chunk with :class:`~repro.errors.ResultLimitError` (policy
            ``"error"``) or contributes exactly the serial prefix
            (policy ``"truncate"``) — on every backend, the serial one
            included.
        on_result_limit: ``"error"`` or ``"truncate"``; see
            :class:`SpannerService`.
        worker_memory_limit / worker_memory_hard_limit: RSS bounds for
            the fleet's memory watchdog (drain-recycle / hard-kill);
            see :class:`SpannerService`.
        artifact_store: an
            :class:`~repro.runtime.store.ArtifactStore` the underlying
            fleet consults before compiling at registration — sessions
            sharing a store (e.g. a ``FileStore`` directory across
            process restarts) warm-start instead of recompiling; see
            :class:`SpannerService`.
        fuse: whether this session participates in multi-query fusion
            planning (:func:`repro.runtime.fusion.plan_submission`).
            A ``ParallelSpanner`` serves exactly one query, and the
            planner never fuses a single member, so the plan is always
            ``"sequential"`` here — the knob exists so the session and
            :meth:`SpannerService.submit_all` share one decision point
            and the byte-identity guarantee is anchored to it rather
            than to two code paths that merely happen to agree.
    """

    def __init__(
        self,
        spanner: (
            "CompiledSpanner | CompiledEqualityQuery | VSetAutomaton "
            "| RegexFormula | str"
        ),
        *,
        workers: int | None = None,
        backend: str = "auto",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_pending: int | None = None,
        mp_context: str | None = None,
        transport: str = "auto",
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        encoding: str = "utf-8",
        errors: str = "strict",
        task_timeout: float | None = None,
        on_overload: str = "block",
        shm_budget: int | None = None,
        max_tuples: int | None = None,
        max_result_bytes: int | None = None,
        on_result_limit: str = "error",
        worker_memory_limit: int | None = None,
        worker_memory_hard_limit: int | None = None,
        artifact_store: "ArtifactStore | None" = None,
        fuse: bool = True,
    ):
        if not isinstance(spanner, (CompiledSpanner, CompiledEqualityQuery)):
            # Remember the compilable origin: the compiled artifact's
            # pickle bytes aren't stable across processes, so the store
            # can only warm-hit a cache written by an earlier driver
            # when the registration is keyed by the source fingerprint.
            self._source = spanner
            spanner = CompiledSpanner(spanner)
        else:
            self._source = None
        self.spanner = spanner
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {backend!r}"
            )
        # A one-worker "fleet" gains nothing from processes or threads;
        # "auto" resolves it to inline execution (the old serial
        # fallback, now just another backend under the same session).
        if backend == "auto" and self.workers == 1:
            backend = "serial"
        self.backend = backend
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.max_pending = (
            max_pending if max_pending is not None else 2 * self.workers
        )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        self.mp_context = mp_context
        # Validate the transport choice now, not at the first sharded
        # call — the fleet itself spins up lazily.  create_transport
        # performs exactly the checks the service will repeat (mode
        # name, threshold, forced-shm availability); the probe owns no
        # segments, so closing it is free.
        probe = create_transport(
            transport, shm_threshold=shm_threshold, shm_budget=shm_budget
        )
        if probe is not None:
            probe.close()
        self.transport = transport
        self.shm_threshold = shm_threshold
        self.shm_budget = shm_budget
        self.encoding = encoding
        self.errors = errors
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        self.task_timeout = task_timeout
        # Validate now, like the transport probe above — the fleet
        # itself spins up lazily, and a typo'd policy should not wait
        # for the first sharded call to surface.
        if on_overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"on_overload must be one of {OVERLOAD_POLICIES}, "
                f"got {on_overload!r}"
            )
        self.on_overload = on_overload
        if max_tuples is not None and max_tuples < 1:
            raise ValueError(f"max_tuples must be >= 1, got {max_tuples}")
        self.max_tuples = max_tuples
        if max_result_bytes is not None and max_result_bytes < 1:
            raise ValueError(
                f"max_result_bytes must be >= 1, got {max_result_bytes}"
            )
        self.max_result_bytes = max_result_bytes
        if on_result_limit not in RESULT_LIMIT_POLICIES:
            raise ValueError(
                f"on_result_limit must be one of {RESULT_LIMIT_POLICIES}, "
                f"got {on_result_limit!r}"
            )
        self.on_result_limit = on_result_limit
        if worker_memory_limit is not None and worker_memory_limit < 1:
            raise ValueError(
                f"worker_memory_limit must be >= 1, got {worker_memory_limit}"
            )
        self.worker_memory_limit = worker_memory_limit
        if worker_memory_hard_limit is not None and (
            worker_memory_hard_limit < 1
            or (
                worker_memory_limit is not None
                and worker_memory_hard_limit < worker_memory_limit
            )
        ):
            raise ValueError(
                "worker_memory_hard_limit must be >= 1 and >= "
                f"worker_memory_limit, got {worker_memory_hard_limit}"
            )
        self.worker_memory_hard_limit = worker_memory_hard_limit
        self.artifact_store = artifact_store
        self.fuse = fuse
        self._pool: "SpannerService | None" = None
        self._query_id: str | None = None

    # -- Introspection ------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return self.spanner.variables

    def __repr__(self) -> str:
        return (
            f"ParallelSpanner(workers={self.workers}, "
            f"chunk_size={self.chunk_size}, spanner={self.spanner!r})"
        )

    # -- Fleet lifetime ------------------------------------------------------
    def _make_pool(self) -> SpannerService:
        """A started fleet with this session's one query registered."""
        service = SpannerService(
            workers=self.workers,
            backend=self.backend,
            chunk_size=self.chunk_size,
            mp_context=self.mp_context,
            transport=self.transport,
            shm_threshold=self.shm_threshold,
            encoding=self.encoding,
            errors=self.errors,
            task_timeout=self.task_timeout,
            on_overload=self.on_overload,
            shm_budget=self.shm_budget,
            max_tuples=self.max_tuples,
            max_result_bytes=self.max_result_bytes,
            on_result_limit=self.on_result_limit,
            worker_memory_limit=self.worker_memory_limit,
            worker_memory_hard_limit=self.worker_memory_hard_limit,
            artifact_store=self.artifact_store,
        )
        service.start()
        self._query_id = service.register(self.spanner, source=self._source)
        return service

    def __enter__(self) -> "ParallelSpanner":
        if self._pool is None:
            self._pool = self._make_pool()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down a persistent fleet (no-op otherwise)."""
        if self._pool is not None:
            self._pool.close(drain=False)
            self._pool = None

    # -- Sharded batch evaluation -------------------------------------------
    def evaluate_many(
        self, docs: Iterable[str], *, limit: int | None = None
    ) -> Iterator[list[SpanTuple]]:
        """``CompiledSpanner.evaluate_many`` across the worker fleet.

        Yields one ``list[SpanTuple]`` per document, in input order,
        each list in the same radix order the serial path produces.
        ``limit`` caps the tuples *per document* — enforced inside the
        workers, so a capped query on a combinatorial document stops
        after ``limit`` enumeration steps instead of materializing
        (and shipping back) the full result.
        """
        yield from self._shard(docs, "evaluate", limit)

    def count_many(
        self, docs: Iterable[str], cap: int | None = None
    ) -> Iterator[int]:
        """Per-document distinct-tuple counts across the worker fleet."""
        yield from self._shard(docs, "count", cap)

    def evaluate_files(
        self, paths: Iterable[str], *, limit: int | None = None
    ) -> Iterator[list[SpanTuple]]:
        """``evaluate_many`` over files, read (or not) worker-side.

        Only the *paths* are shipped to the fleet; each worker opens
        and reads its chunk's files itself — decoding huge files
        straight from ``mmap`` — so large documents never ride the
        task pipe.  Results stream back per file, in input order, same
        as :meth:`evaluate_many`.  An unreadable file raises ``OSError``
        (propagated out of the fleet) rather than yielding partials;
        decode failures raise ``UnicodeDecodeError`` unless an
        ``encoding``/``errors`` pair that accepts the bytes was set.
        """
        yield from self._shard(paths, "files", limit)

    def _shard(
        self, docs: Iterable[str], op: str, extra: int | None
    ) -> Iterator:
        """Chunked, backpressured, order-preserving dispatch loop.

        Chunks are submitted in input order and results collected from
        the *head* of the pending queue, so output order is input order
        regardless of which worker finishes first.  Submission pauses
        at ``max_pending`` outstanding chunks: the input iterable is
        never read more than ``max_pending * chunk_size`` documents
        ahead of the last yielded result.
        """
        it = iter(docs)
        first = list(islice(it, self.chunk_size))
        if not first:
            return  # empty corpus: don't spin up (or touch) any fleet
        if self._pool is not None:
            yield from self._drive(self._pool, first, it, op, extra)
        else:
            pool = self._make_pool()
            try:
                yield from self._drive(pool, first, it, op, extra)
            finally:
                pool.close(drain=False)

    def _drive(
        self,
        pool: SpannerService,
        first: list[str],
        it: Iterator[str],
        op: str,
        extra: int | None,
    ) -> Iterator:
        assert self._query_id is not None
        # One decision point for fused-vs-sequential serving, shared
        # with SpannerService.submit_all: a single-member session always
        # plans "sequential", so workers=1, pipe and shm stay
        # byte-identical whether fusion is enabled or not — guaranteed
        # by the planner, not by this module happening to agree with it.
        mode, (query_id,) = plan_submission([self._query_id], fuse=self.fuse)
        assert mode == "sequential", mode
        pending: deque = deque()
        try:
            pending.append(
                pool.submit_chunk(query_id, first, op=op, extra=extra)
            )
            exhausted = False
            while pending:
                while not exhausted and len(pending) < self.max_pending:
                    chunk = list(islice(it, self.chunk_size))
                    if not chunk:
                        exhausted = True
                        break
                    pending.append(
                        pool.submit_chunk(
                            query_id, chunk, op=op, extra=extra
                        )
                    )
                yield from pending.popleft().result()
        finally:
            # Abandoned mid-iteration (the consumer broke out of the
            # generator, or a chunk failed): cancel whatever is still
            # in flight so a persistent session starts its next call
            # with a quiet fleet — no stale futures holding results,
            # in-flight slots or shared-memory segments, and nothing
            # for a later call to deadlock against.  Results workers
            # still produce for these tasks resolve driver-side into
            # already-cancelled futures and are dropped.
            while pending:
                pending.popleft().cancel()
