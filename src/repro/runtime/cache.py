"""Process-wide, bounded, instrumented compilation caches.

PR 1 cached compiled artifacts in two unrelated places: the weak
per-automaton table cache of :mod:`repro.runtime.tables` and the
per-*instance* fingerprint dicts of
:class:`~repro.queries.compiled.CompiledEvaluator`.  Per-instance
caching is invisible to every other evaluator in the process — the CLI,
a second ``CompiledEvaluator``, and (new in this PR) the worker
processes of :class:`~repro.runtime.parallel.ParallelSpanner` each
recompiled the same query structure from scratch.

This module hosts the shared infrastructure:

* :class:`LRUCache` — a bounded least-recently-used mapping with
  hit/miss/eviction counters.  :func:`compilation_cache` returns the
  process-wide instance that all ``CompiledEvaluator``\\ s (and through
  them the CLI and parallel workers) share.  Keys are *structural*
  (query fingerprints, formula tuples), never object ids, so a bounded
  cache can recycle slots without ever serving a stale compilation:
  two keys that collide are structurally equal queries, and
  structurally equal queries compile to interchangeable artifacts.
* :class:`WeakCache` — an instrumented ``WeakKeyDictionary`` wrapper;
  :func:`repro.runtime.tables.tables_for` stores
  :class:`~repro.runtime.tables.AutomatonTables` in one, keyed by the
  automaton object itself (dropping the automaton frees its tables,
  which a bounded LRU keyed by identity could not guarantee).
* :class:`HitCounter` — bare hit/miss accounting for caches whose
  storage lives elsewhere (the join's per-shared-variable operand
  views, which ride on ``AutomatonTables.views``).
* :func:`cache_metrics` — one snapshot of every registered cache, the
  observability hook the README documents.

Everything here is *per process* by construction: module state is
rebuilt on import, so each :class:`ParallelSpanner` worker gets its own
cache and pays each compilation at most once, however many chunks it
evaluates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar
from weakref import WeakKeyDictionary

__all__ = [
    "CacheStats",
    "LRUCache",
    "WeakCache",
    "HitCounter",
    "cache_metrics",
    "compilation_cache",
    "COMPILATION_CACHE_MAXSIZE",
]

K = TypeVar("K")
V = TypeVar("V")

#: Entries the process-wide compilation cache retains.  A compiled
#: artifact for a mid-sized query is a few hundred KB of automata and
#: tables, so 256 entries bounds the cache at tens of MB while covering
#: any realistic concurrently-hot query workload.
COMPILATION_CACHE_MAXSIZE = 256

#: Registered caches, for :func:`cache_metrics`.
_REGISTRY: "OrderedDict[str, LRUCache | WeakCache | HitCounter]" = OrderedDict()
_REGISTRY_LOCK = threading.Lock()


@dataclass(frozen=True, slots=True)
class CacheStats:
    """An immutable counter snapshot for one cache."""

    name: str
    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int | None  # None: unbounded (weak / external storage)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _register(name: str, cache: "LRUCache | WeakCache | HitCounter") -> None:
    with _REGISTRY_LOCK:
        if name in _REGISTRY:
            raise ValueError(f"cache name {name!r} already registered")
        _REGISTRY[name] = cache


def cache_metrics() -> dict[str, CacheStats]:
    """Snapshot every registered cache's counters (name -> stats)."""
    with _REGISTRY_LOCK:
        return {name: cache.stats() for name, cache in _REGISTRY.items()}


class HitCounter:
    """Hit/miss accounting for a cache stored elsewhere."""

    __slots__ = ("name", "_hits", "_misses")

    def __init__(self, name: str | None = None):
        self.name = name or f"counter-{id(self):x}"
        self._hits = 0
        self._misses = 0
        if name is not None:
            _register(name, self)

    @classmethod
    def shared(cls, name: str) -> "HitCounter":
        """The registered counter for ``name``, creating it race-free.

        Unlike ``HitCounter(name=...)`` — which raises on a duplicate
        name — concurrent first callers all get the same instance
        (check-and-create happens under the registry lock).  Use this
        for lazily initialized module-level counters.
        """
        with _REGISTRY_LOCK:
            existing = _REGISTRY.get(name)
            if existing is None:
                existing = cls()
                existing.name = name
                _REGISTRY[name] = existing
            elif not isinstance(existing, cls):
                raise ValueError(f"cache name {name!r} already registered")
            return existing

    def hit(self) -> None:
        self._hits += 1

    def miss(self) -> None:
        self._misses += 1

    def stats(self) -> CacheStats:
        return CacheStats(self.name, self._hits, self._misses, 0, 0, None)


class LRUCache:
    """A bounded LRU mapping with hit/miss/eviction counters.

    ``get``/``get_or_create`` refresh recency; inserting past
    ``maxsize`` evicts the least-recently-used entry.  All operations
    hold one re-entrant lock, so a factory may itself consult the same
    cache (``CompiledEvaluator.runtime`` compiling via
    ``compile_static`` does exactly that).
    """

    __slots__ = ("name", "maxsize", "_data", "_lock", "_hits", "_misses", "_evictions")

    def __init__(self, maxsize: int, *, name: str | None = None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.name = name or f"lru-{id(self):x}"
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        if name is not None:
            _register(name, self)

    def get(self, key: K, default: V | None = None) -> V | None:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """The cached value for ``key``, creating (and caching) on miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                pass
            else:
                self._data.move_to_end(key)
                self._hits += 1
                return value
            self._misses += 1
            value = factory()
            self.put(key, value)
            return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> list:
        """Current keys, least-recently-used first (a snapshot)."""
        with self._lock:
            return list(self._data)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are cumulative)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                self.name, self._hits, self._misses, self._evictions,
                len(self._data), self.maxsize,
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LRUCache({self.name!r}, {s.size}/{s.maxsize}, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})"
        )


class WeakCache:
    """An instrumented weak-keyed cache (values die with their keys).

    Used where the key *object's* lifetime is the correct bound — the
    per-automaton table cache — rather than a recency policy.
    """

    __slots__ = ("name", "_data", "_hits", "_misses")

    def __init__(self, *, name: str | None = None):
        self.name = name or f"weak-{id(self):x}"
        self._data: WeakKeyDictionary = WeakKeyDictionary()
        self._hits = 0
        self._misses = 0
        if name is not None:
            _register(name, self)

    def get(self, key: K, default: V | None = None) -> V | None:
        value = self._data.get(key, default)
        if value is default:
            self._misses += 1
        else:
            self._hits += 1
        return value

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        value = self._data.get(key)
        if value is not None:
            self._hits += 1
            return value
        self._misses += 1
        value = factory()
        self._data[key] = value
        return value

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> CacheStats:
        return CacheStats(
            self.name, self._hits, self._misses, 0, len(self._data), None
        )


#: The process-wide compilation cache (see module docstring).
_COMPILATION_CACHE = LRUCache(COMPILATION_CACHE_MAXSIZE, name="compilation")


def compilation_cache() -> LRUCache:
    """The process-wide compiled-artifact LRU.

    Shared by every :class:`~repro.queries.compiled.CompiledEvaluator`
    constructed without an explicit cache — independent evaluators, the
    CLI, and each :class:`~repro.runtime.parallel.ParallelSpanner`
    worker process (which gets its own on first import).
    """
    return _COMPILATION_CACHE
