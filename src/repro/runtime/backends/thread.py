"""The thread fleet backend: shared-artifact workers, no pickling.

One address space changes the economics the process backend pays for:
the compile-once artifact is materialized *once per query per service*
and every worker reads the same engine object (safe because a
materialized automaton is immutable except for the ``_burst`` memo — a
benign-race dict of immutable tuples), documents need no shared-memory
transport, and results cross a plain in-process queue.  On free-threaded
builds (PEP 703) this buys process-level parallelism without spawn or
IPC cost; on GIL builds it still wins for debugging and small-document
latency, just not for CPU-bound throughput.

What a thread cannot do is die on command: ``kill_worker`` *abandons*
the thread — the handle is marked killed, the worker notices after its
current task and exits, and any result it was mid-producing arrives as
a straggler the driver's at-most-once resolution drops.  A worker truly
hung inside a task therefore leaks a daemon thread until process exit;
the deadline machinery still works (the task is re-dispatched, the
worker replaced), which is the contract ``supports_kill`` promises.

Injected crash faults cannot ``os._exit`` here without taking the whole
service down, so the chaos seam raises
:class:`~repro.runtime.faults._InjectedWorkerDeath` instead
(``inline_faults=True``): the loop lets it escape ``run_task``'s
per-task exception handling and dies exactly as abruptly as a SIGKILLed
process — no result, no goodbye.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
from typing import TYPE_CHECKING, Callable

from .base import ComputeBackend, LocalHeartbeat, WorkerHandle
from .worker import materialize, run_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan

__all__ = ["ThreadBackend", "ThreadWorkerHandle"]


class ThreadWorkerHandle(WorkerHandle):
    """Driver-side record of one worker thread."""

    __slots__ = ("thread", "task_queue", "heartbeat", "killed", "dead")

    def __init__(self, worker_id: int):
        super().__init__(worker_id)
        self.thread: threading.Thread | None = None
        self.task_queue: queue.SimpleQueue = queue.SimpleQueue()
        self.heartbeat = LocalHeartbeat()
        self.killed = False  # abandoned by the driver (watchdogs)
        self.dead = False  # exited on its own (injected crash)

    @property
    def pid(self) -> int | None:
        return os.getpid()  # every worker shares the driver's process

    def alive(self) -> bool:
        if self.killed or self.dead:
            return False
        return self.thread is not None and self.thread.is_alive()

    def read_heartbeat(self) -> tuple[int, float, float, int]:
        with self.heartbeat.get_lock():
            return (
                int(self.heartbeat[0]),
                self.heartbeat[1],
                self.heartbeat[2],
                int(self.heartbeat[3]),
            )


class ThreadBackend(ComputeBackend):
    """Worker threads over one shared engine cache."""

    name = "thread"
    worker_model = "thread"
    supports_kill = True  # kill == abandon; see the module docstring
    uses_wire_transport = False

    def __init__(
        self,
        *,
        encoding: str = "utf-8",
        errors: str = "strict",
        fault_plan: "FaultPlan | None" = None,
    ):
        self.encoding = encoding
        self.errors = errors
        self.fault_plan = fault_plan
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        #: query_id -> materialized engine, shared by every worker.
        #: Guarded by ``_lock``: prepare_payload may race with itself
        #: across queries, and close() clears it.
        self._engines: dict[str, object] = {}
        self._lock = threading.Lock()
        self._worker_seq = 0
        self._threads: list[threading.Thread] = []

    def spawn_worker(self) -> ThreadWorkerHandle:
        with self._lock:
            worker_id = self._worker_seq
            self._worker_seq += 1
        handle = ThreadWorkerHandle(worker_id)
        thread = threading.Thread(
            target=self._worker_loop,
            args=(handle,),
            name=f"spanner-service-worker-{worker_id}",
            daemon=True,  # a hung abandoned worker must not block exit
        )
        handle.thread = thread
        with self._lock:
            self._threads.append(thread)
        thread.start()
        return handle

    def _worker_loop(self, handle: ThreadWorkerHandle) -> None:
        """Per-thread mirror of the process backend's ``_fleet_worker``.

        The private ``engines`` dict holds *references into* the shared
        cache (installed by :meth:`prepare_payload` before the task that
        needs them is dispatched), keeping :func:`run_task`'s engine
        lookup identical across substrates.
        """
        from ..faults import _InjectedWorkerDeath

        engines: dict[str, object] = {}
        while True:
            msg = handle.task_queue.get()
            if msg[0] == "stop":
                break
            try:
                result = run_task(
                    engines, msg, handle.heartbeat, self.encoding,
                    self.errors, self.fault_plan, handle.worker_id,
                    inline_faults=True,
                )
            except _InjectedWorkerDeath:
                handle.dead = True  # simulated SIGKILL: vanish silently
                return
            if handle.killed:
                return  # abandoned mid-task: the result is a straggler
            self._results.put(result)

    def prepare_payload(self, query_id: str, payload: bytes) -> object:
        """One shared engine per query — materialized here, never again.

        ``payload`` is the registry's canonical pickled artifact; in
        one address space it is unpickled and burst-compiled exactly
        once per service, however many workers and re-shipments follow.
        """
        with self._lock:
            engine = self._engines.get(query_id)
            if engine is None:
                engine = materialize(pickle.loads(payload))
                self._engines[query_id] = engine
            return engine

    def dispatch(self, worker: ThreadWorkerHandle, msg: tuple) -> None:
        worker.task_queue.put(msg)

    def poll(self, timeout: float) -> list[tuple]:
        try:
            first = self._results.get(timeout=timeout)
        except queue.Empty:
            return []
        msgs = [first]
        while True:  # drain whatever else already arrived
            try:
                msgs.append(self._results.get_nowait())
            except queue.Empty:
                return msgs

    def stop_worker(
        self, worker: ThreadWorkerHandle, *, graceful: bool
    ) -> None:
        # Always send the sentinel: a thread cannot be terminated, and
        # one blocked on its task queue would otherwise linger forever
        # even on a non-graceful stop.
        if not worker.stopped:
            worker.task_queue.put(("stop",))
            worker.stopped = True

    def kill_worker(self, worker: ThreadWorkerHandle) -> None:
        # Abandonment, not death: mark the handle so alive() is False
        # and the loop exits after its current task.  Queue a stop too
        # in case the worker is idle and blocked on get().
        worker.killed = True
        worker.stopped = True
        worker.task_queue.put(("stop",))

    def release_worker(self, worker: ThreadWorkerHandle) -> None:
        worker.stopped = True

    def close(self, *, drain: bool, budget: Callable[[float], float]) -> None:
        with self._lock:
            threads = list(self._threads)
            self._threads.clear()
            self._engines.clear()
        for thread in threads:
            if thread.is_alive():
                # Briefly join workers that got a stop sentinel; never
                # wait out an abandoned one sleeping in an injected
                # hang — it is a daemon and dies with the process.
                thread.join(timeout=budget(1.0))
