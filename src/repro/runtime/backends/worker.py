"""The worker execution core, shared by every compute backend.

One task's evaluation is the same code whether the worker is a spawned
process, a pool thread or the driver itself running inline: materialize
the shipped artifact at most once per worker, run the exact serial
per-document path under the resolved result caps, stamp the heartbeat
at task boundaries (and per fused member), and report one tagged result
message.  Backends differ only in how messages travel and what a
"worker" physically is — that lives in the sibling modules; everything
here is substrate-blind.

Moved verbatim from :mod:`repro.runtime.service` when the backend seam
was extracted; the wire format is unchanged: tasks are ``("task",
task_id, attempt, query_id, payload, op, items, extra, caps)`` and
results ``("done"|"fail", worker_id, task_id, payload, truncated)``.
"""

from __future__ import annotations

import os
import pickle
import time
from itertools import islice

from ...errors import ResultLimitError
from ...spans import SpanTuple
from ..compiled import CompiledSpanner
from ..faults import _FloodingEngine
from ..fusion import FusedQuery
from ..tables import AutomatonTables
from ..transport import ShmChunk, open_chunk, read_document, release_chunk

__all__ = [
    "current_rss",
    "enumerate_capped",
    "materialize",
    "materialize_payload",
    "run_op",
    "run_fused",
    "run_task",
    "CAP_PROBE_BATCH",
]

try:  # POSIX only; the RSS probe degrades to 0.0 (never sampled) without it
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss() -> float:
    """This process's resident set size in bytes (0.0 when unknowable).

    ``/proc/self/statm`` is the live value (Linux); the ``getrusage``
    fallback is a high-water mark, which over-reports after a spike but
    still moves monotonically toward any bloat — good enough for a
    watchdog whose only action is a graceful drain-and-recycle.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return float(int(fh.read().split()[1]) * _PAGE_SIZE)
    except (OSError, ValueError, IndexError):
        pass
    if _resource is not None:
        try:
            return float(
                _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss * 1024
            )
        except Exception:  # pragma: no cover - defensive
            pass
    return 0.0


#: Tuples consumed per accounting probe in :func:`enumerate_capped`.
#: Large enough that the capped path stays within ~1% of the uncapped
#: ``list(stream)`` (the E13h target), small enough that a flood costs
#: at most one probe batch past the cap before the verdict.
CAP_PROBE_BATCH = 64


def enumerate_capped(
    stream,
    extra: int | None,
    caps: "tuple[int | None, int | None, str] | None",
) -> tuple[list, bool]:
    """One document's tuples under the result cap; (tuples, truncated).

    Accounting is incremental over the polynomial-delay stream, so a
    combinatorially large result (Theorem 5.4) costs at most one probe
    batch past the cap before the verdict — never a materialization.
    Tuples are consumed in :data:`CAP_PROBE_BATCH` slices so the
    healthy path runs at ``list()`` speed rather than a per-tuple
    Python loop, and byte accounting pickles each batch *once* (what
    the result pipe would actually carry) instead of every tuple
    individually; a byte-cap truncation therefore cuts at a probe
    boundary — still an exact serial-order prefix.  The caps and the
    probe grid are per *document*, not per chunk, so verdicts are
    byte-identical whatever the worker count or chunking.
    """
    if extra is not None:
        stream = islice(stream, extra)
    if caps is None:
        return list(stream), False
    max_tuples, max_bytes, policy = caps
    out: list = []
    used = 0
    while True:
        take = CAP_PROBE_BATCH
        if max_tuples is not None:
            # One past the cap: distinguishes "exactly cap tuples
            # exist" (complete, not truncated) from a genuine overrun.
            take = min(take, max_tuples - len(out) + 1)
        batch = list(islice(stream, take))
        if max_tuples is not None and len(out) + len(batch) > max_tuples:
            if policy == "truncate":
                out.extend(batch[: max_tuples - len(out)])
                return out, True
            raise ResultLimitError(
                "tuples", max_tuples, len(out) + len(batch)
            )
        if max_bytes is not None and batch:
            used += len(
                pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
            )
            if used > max_bytes:
                if policy == "truncate":
                    return out, True
                raise ResultLimitError("bytes", max_bytes, used)
        out.extend(batch)
        if len(batch) < take:
            # A short batch IS exhaustion — returning here instead of
            # probing once more for an empty batch keeps the healthy
            # path at list() speed (the extra probe re-enters the
            # enumeration machinery just to hear "no more").
            return out, False


def materialize(artifact: object) -> object:
    """An unpickled shipped artifact, rebuilt into a serving engine."""
    if isinstance(artifact, AutomatonTables):
        # The equality-free contract: one tables object, rebuilt into a
        # spanner without rerunning any preprocessing.
        return CompiledSpanner.from_tables(artifact)
    if isinstance(artifact, FusedQuery):
        # A fused member set: plan cohorts once, serve many documents.
        return artifact.materialize()
    # A self-contained engine (CompiledEqualityQuery, CompiledSpanner):
    # its pickle contract already ships everything it needs.
    return artifact


def materialize_payload(payload: object) -> object:
    """A shipped payload — pickled bytes or a live object — as an engine.

    Process workers receive the registry's pickled bytes and unpickle
    here; thread and inline workers receive the backend's shared
    pre-materialized engine and pass it through (``materialize`` is
    idempotent on already-materialized engines).
    """
    if isinstance(payload, bytes):
        return materialize(pickle.loads(payload))
    return materialize(payload)


def run_op(
    engine,
    op: str,
    items: "list[str] | ShmChunk",
    extra: int | None,
    encoding: str,
    errors: str,
    caps: "tuple[int | None, int | None, str] | None" = None,
) -> tuple[list, int]:
    """One task's evaluation — exactly the serial per-document path.

    ``items`` is either the plain document/path list the pipe carried,
    or a :class:`ShmChunk` reference to a shared-memory segment the
    driver packed; either way the evaluation loop sees a sequence of
    strings (decoded lazily out of the shared buffer in the shm case),
    and the attachment is released before the result ships back.

    ``caps`` is the resolved ``(max_tuples, max_result_bytes, policy)``
    result cap (or ``None``, the uncapped fast path — ``islice`` at the
    caller's explicit ``limit`` only, as before the governance layer).
    Returns ``(per_doc_results, truncated_docs)``; under the ``error``
    policy a crossed cap raises :class:`~repro.errors.ResultLimitError`
    out of here instead.  ``count`` tasks are never capped — a count is
    one integer per document regardless of how many tuples it counts.
    """
    docs = open_chunk(items)
    truncated = 0
    try:
        if op == "evaluate":
            out: list[list[SpanTuple]] = []
            for doc in docs:
                # Enumeration stops (polynomial delay) at whichever
                # bound bites first instead of materializing
                # combinatorially many tuples only to discard them.
                tuples, cut = enumerate_capped(engine.stream(doc), extra, caps)
                truncated += cut
                out.append(tuples)
            return out, truncated
        if op == "count":
            return [engine.count(doc, cap=extra) for doc in docs], 0
        if op == "files":
            # Only paths crossed the pipe; read the documents
            # worker-side (huge files decode straight from mmap).
            out = []
            for path in docs:
                doc = read_document(path, encoding=encoding, errors=errors)
                tuples, cut = enumerate_capped(engine.stream(doc), extra, caps)
                truncated += cut
                out.append(tuples)
            return out, truncated
        raise ValueError(f"unknown task op {op!r}")
    finally:
        release_chunk(docs)


def _stamp_member(heartbeat, ordinal: float) -> None:
    """Publish which fused member this worker is serving (-1 = shared)."""
    if heartbeat is not None:
        with heartbeat.get_lock():
            heartbeat[3] = ordinal


def run_fused(
    engine,
    op: str,
    items: "list[str] | ShmChunk",
    extra: int | None,
    encoding: str,
    errors: str,
    caps: "tuple | None" = None,
    heartbeat=None,
    fault_ctx: "tuple | None" = None,
) -> tuple[list, int]:
    """One fused task: every member's answer from one pass per document.

    ``engine`` is a :class:`~repro.runtime.fusion.FusedEngine`; per
    document its shared sweep runs once and each member's stream is then
    enumerated under that *member's* resolved result cap (``caps`` is a
    per-member tuple here, index-aligned with ``engine.member_ids``).
    The return payload is one entry per member: ``("ok", per_doc_lists,
    truncated_docs)`` for members that completed, ``("err", exc)`` for
    members whose enumeration raised — an ordinary per-member exception
    fails exactly that member's future driver-side and, like every
    ordinary worker exception, never charges a breaker.

    Attribution: before each member phase the worker stamps the member
    ordinal into the heartbeat's fourth slot (and fires that member's
    injected faults via ``FaultPlan.apply_member``), so a worker killed
    mid-member — deadline, crash, memory — indicts exactly the member it
    was serving; the shared sweep phase is stamped ``-1`` (unattributed:
    a failure there charges every member, since all of them asked for
    that pass).
    """
    docs = open_chunk(items)
    member_ids = engine.member_ids
    m_count = len(member_ids)
    member_caps = caps if caps is not None else (None,) * m_count
    per_doc: list[list] = [[] for _ in range(m_count)]
    errs: list = [None] * m_count
    truncated = [0] * m_count
    try:
        for item in docs:
            _stamp_member(heartbeat, -1.0)
            if op == "fused_files":
                doc = read_document(item, encoding=encoding, errors=errors)
            else:
                doc = item
            streams = engine.streams(doc)  # the one shared pass
            for m, stream in enumerate(streams):
                if errs[m] is not None:
                    continue
                _stamp_member(heartbeat, float(m))
                if fault_ctx is not None:
                    plan, task_id, attempt, inline = fault_ctx
                    plan.apply_member(
                        task_id, attempt, member_ids[m], inline=inline
                    )
                try:
                    tuples, cut = enumerate_capped(
                        stream, extra, member_caps[m]
                    )
                except Exception as err:
                    try:  # ship the real exception when it pickles
                        pickle.dumps(err)
                    except Exception:
                        err = RuntimeError(f"{type(err).__name__}: {err}")
                    errs[m] = err
                    continue
                per_doc[m].append(tuples)
                truncated[m] += cut
        _stamp_member(heartbeat, -1.0)
        out = [
            ("err", errs[m])
            if errs[m] is not None
            else ("ok", per_doc[m], truncated[m])
            for m in range(m_count)
        ]
        total_truncated = sum(
            truncated[m] for m in range(m_count) if errs[m] is None
        )
        return out, total_truncated
    finally:
        release_chunk(docs)


def run_task(
    engines: dict,
    msg: tuple,
    heartbeat,
    encoding: str,
    errors: str,
    fault_plan,
    worker_id: int,
    *,
    inline_faults: bool = False,
) -> tuple:
    """Execute one wire task message; returns the wire result message.

    The body of every backend's worker loop.  ``engines`` is the
    worker's query-id-keyed engine table (the per-worker
    compile-at-most-once guarantee); ``heartbeat`` is stamped with
    ``(task_id, monotonic start, rss, -1)`` at task start and ``(-1,
    now, rss, -1)`` when the result is ready — the idle stamp lands
    *before* the result is visible, so the driver's deadline scan can
    never kill a worker for work it already finished.

    ``inline_faults`` selects how an injected ``crash`` manifests: a
    real ``os._exit`` for process workers, the
    :class:`~repro.runtime.faults._InjectedWorkerDeath` control-flow
    exception for workers sharing the driver's process (thread/inline)
    — it escapes the ``except Exception`` below by design, so the
    calling backend sees the simulated death, not a task failure.
    """
    (
        _kind, task_id, attempt, query_id, payload, op, items, extra,
        caps,
    ) = msg
    if heartbeat is not None:
        rss = current_rss()
        with heartbeat.get_lock():
            heartbeat[0] = float(task_id)
            heartbeat[1] = time.monotonic()
            heartbeat[2] = rss
            heartbeat[3] = -1.0
    try:
        # Materialize a shipped artifact *before* any injected
        # fault: the driver marks the query shipped the moment the
        # message is enqueued, so a retry of this task may arrive
        # with ``payload=None`` — the engine must already be here.
        engine = engines.get(query_id)
        if engine is None:
            if payload is None:
                raise RuntimeError(
                    f"worker {worker_id} has no artifact for query "
                    f"{query_id!r}"
                )
            engine = materialize_payload(payload)
            engines[query_id] = engine
        fused = op in ("fused", "fused_files")
        if fault_plan is not None:
            fault_plan.apply(task_id, attempt, inline=inline_faults)
            flood = fault_plan.flood_amount(task_id, attempt)
            if flood is not None and not fused:
                # Wrap for this task only; the cached engine stays
                # clean for every other task of the query.  Fused
                # engines are never wrapped — their members flood
                # individually via member-scoped specs.
                engine = _FloodingEngine(engine, flood)
        if fused:
            out, truncated = run_fused(
                engine, op, items, extra, encoding, errors, caps,
                heartbeat=heartbeat,
                fault_ctx=(
                    (fault_plan, task_id, attempt, inline_faults)
                    if fault_plan is not None
                    else None
                ),
            )
        else:
            out, truncated = run_op(
                engine, op, items, extra, encoding, errors, caps
            )
    except Exception as err:
        try:  # ship the real exception when it pickles
            pickle.dumps(err)
        except Exception:
            err = RuntimeError(f"{type(err).__name__}: {err}")
        result = ("fail", worker_id, task_id, err, 0)
    else:
        result = ("done", worker_id, task_id, out, truncated)
    if heartbeat is not None:
        rss = current_rss()
        with heartbeat.get_lock():
            heartbeat[0] = -1.0
            heartbeat[1] = time.monotonic()
            heartbeat[2] = rss
            heartbeat[3] = -1.0
    return result
