"""The process fleet backend: the service's original substrate, extracted.

Byte-identical to the pre-seam ``SpannerService`` mechanism: spawned
worker processes each owning a dedicated task queue and a *per-worker*
result pipe (never one shared queue — a SIGKILL landing mid-send would
wedge a shared queue's cross-process lock for every survivor), a shared
``Array("d", 4)`` heartbeat per worker, pickled artifacts shipped at
most once per worker lifetime, SIGKILL for hung or ballooning workers,
and zombie-reader draining so results a dying worker flushed still
resolve their futures.

Module-level worker functions stay module-level so both the ``fork``
and ``spawn`` start methods can address them.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import connection as mp_connection
import pickle
import threading
import time
from typing import TYPE_CHECKING, Callable

from ...errors import QueryRejectedError
from .base import ComputeBackend, WorkerHandle
from .worker import run_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess

    from ..faults import FaultPlan

__all__ = ["ProcessBackend", "ProcessWorkerHandle", "compile_in_subprocess"]


def _fleet_worker(
    worker_id: int,
    task_queue,
    result_conn,
    heartbeat=None,
    encoding: str = "utf-8",
    errors: str = "strict",
    fault_plan: "FaultPlan | None" = None,
) -> None:
    """The worker loop: block on the task queue until told to stop.

    Exceptions are reported per task (the worker stays alive and keeps
    serving); only process death — crash, kill, recycle stop — ends the
    loop.  Results and failures go back tagged with the task id, so the
    driver resolves exactly the future that asked.

    ``result_conn`` is this worker's *own* pipe to the driver — results
    are deliberately NOT funneled through one shared queue.  A shared
    ``multiprocessing.Queue`` serializes writers through one
    cross-process lock, and the watchdogs kill workers with SIGKILL: a
    kill landing mid-send would leave that lock held forever and
    silently wedge every *surviving* worker's results.  With per-worker
    pipes a dying writer can only tear its own channel, which the
    driver detects (EOF / torn frame) and retires.

    ``heartbeat`` is a shared ``Array('d', 4)`` the worker stamps with
    ``(task_id, monotonic start time, rss_bytes, member_ordinal)`` when
    a task begins and ``(-1, now, rss_bytes, -1)`` when it ends — see
    :func:`repro.runtime.backends.worker.run_task` for the stamping
    contract the deadline scan and memory watchdog rely on.

    ``fault_plan`` is the deterministic chaos hook (tests only); it
    runs after the heartbeat stamp so injected hangs age exactly like
    real ones.
    """
    engines: dict[str, object] = {}
    while True:
        msg = task_queue.get()
        if msg[0] == "stop":
            break
        result = run_task(
            engines, msg, heartbeat, encoding, errors, fault_plan,
            worker_id,
        )
        try:
            result_conn.send(result)
        except (BrokenPipeError, OSError):
            break  # the driver is gone; nothing left to serve
    result_conn.close()


def _compile_child(conn, query: object, delay: float | None) -> None:
    """Compile ``query`` to its pickled artifact in a throwaway process.

    The parent polls the pipe under ``compile_timeout`` and kills this
    process on expiry — the deadline pattern the fleet already uses for
    hung tasks, applied to compilation, which otherwise runs
    driver-side with nothing to bound it.  ``delay`` is the
    ``slow_compile`` chaos hook.
    """
    from ..service import SpannerService

    try:
        if delay:
            time.sleep(delay)
        payload = pickle.dumps(
            SpannerService._artifact_for(query),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        conn.send(("ok", payload))
    except Exception as err:
        try:  # ship the real exception when it pickles
            pickle.dumps(err)
        except Exception:
            err = RuntimeError(f"{type(err).__name__}: {err}")
        conn.send(("err", err))
    finally:
        conn.close()


def compile_in_subprocess(
    query: object,
    delay: float | None,
    timeout: float,
    mp_context: str | None,
    on_timeout: Callable[[], None] | None = None,
) -> bytes:
    """One compilation in a throwaway process under ``timeout`` seconds.

    The subprocess half of the service's ``compile_timeout`` admission
    control — here rather than in the policy layer because it is
    process-lifecycle mechanism (and the only compile-bounding
    primitive Python offers; even a thread-backend service uses a
    throwaway *process* for this, since a runaway compile in a thread
    could not be stopped).  Raises
    :class:`~repro.errors.QueryRejectedError` on expiry or child death;
    re-raises the child's own exception on a failed compile.
    ``on_timeout`` fires just before the expiry rejection (and only
    then — a child that died on its own is a crash, not an admission
    decision), which is how the service counts it as rejected.
    """
    ctx = multiprocessing.get_context(mp_context)
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_compile_child,
        args=(send, query, delay),
        name="spanner-service-compile",
        daemon=True,
    )
    proc.start()
    send.close()
    try:
        if not recv.poll(timeout):
            if on_timeout is not None:
                on_timeout()
            raise QueryRejectedError(
                f"compilation exceeded compile_timeout={timeout}s "
                "and was killed"
            )
        try:
            status, result = recv.recv()
        except (EOFError, OSError):
            raise QueryRejectedError(
                "compilation process died before producing an artifact"
            ) from None
    finally:
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5)
        recv.close()
    if status == "err":
        raise result
    return result


class ProcessWorkerHandle(WorkerHandle):
    """Driver-side record of one worker process."""

    __slots__ = ("process", "task_queue", "result_reader", "heartbeat")

    def __init__(
        self,
        worker_id: int,
        process: "BaseProcess",
        task_queue,
        heartbeat,
        result_reader,
    ):
        super().__init__(worker_id)
        self.process = process
        self.task_queue = task_queue
        #: Driver end of this worker's result pipe; ``None`` once
        #: retired (EOF observed, or handed to the zombie-drain list).
        self.result_reader = result_reader
        self.heartbeat = heartbeat  # shared (running task_id, stamp, rss)

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def read_heartbeat(self) -> tuple[int, float, float, int]:
        with self.heartbeat.get_lock():
            return (
                int(self.heartbeat[0]),
                self.heartbeat[1],
                self.heartbeat[2],
                int(self.heartbeat[3]),
            )


class ProcessBackend(ComputeBackend):
    """Spawned worker processes behind per-worker pipes (the default).

    ``workers`` is the target fleet size — used only to bound the
    lifetime process list's growth (pruned once it exceeds twice the
    fleet, so a recycling service never accumulates unreaped zombies).
    """

    name = "process"
    worker_model = "process"
    supports_kill = True
    uses_wire_transport = True

    def __init__(
        self,
        *,
        workers: int,
        mp_context: str | None = None,
        encoding: str = "utf-8",
        errors: str = "strict",
        fault_plan: "FaultPlan | None" = None,
    ):
        self.workers = workers
        self.mp_context = mp_context
        self.encoding = encoding
        self.errors = errors
        self.fault_plan = fault_plan
        self._ctx: "BaseContext | None" = None
        #: Guards the handle/zombie lists: ``poll`` runs on the
        #: collector thread outside the service lock, while spawns and
        #: retirements arrive under it.
        self._lock = threading.Lock()
        self._handles: list[ProcessWorkerHandle] = []
        #: Every process ever spawned (pruned in :meth:`reap`), so
        #: :meth:`close` can join the stragglers too.
        self.processes: list["BaseProcess"] = []
        #: Result readers of workers no longer in the fleet (killed,
        #: crashed, recycled): polled until EOF so results already in
        #: the pipe still resolve their futures, then closed.
        self._zombie_readers: list = []

    def start(self) -> None:
        if self._ctx is None:
            self._ctx = multiprocessing.get_context(self.mp_context)

    def spawn_worker(self) -> ProcessWorkerHandle:
        worker_id = self._next_worker_id()
        task_queue = self._ctx.Queue()
        # Per-worker result pipe — see the _fleet_worker docstring for
        # why results must not share one queue (a SIGKILLed writer
        # would wedge the shared lock for every survivor).
        result_reader, result_writer = self._ctx.Pipe(duplex=False)
        # [running task id (or -1.0), monotonic stamp, rss bytes,
        # fused member ordinal (or -1.0)] — four doubles under one lock
        # so a reader never sees a torn set.  RSS rides the same
        # channel the deadline scan reads: the memory watchdog costs no
        # extra IPC; the member slot is what lets a fused-task kill
        # indict exactly the member being served.
        heartbeat = self._ctx.Array("d", [-1.0, 0.0, 0.0, -1.0])
        process = self._ctx.Process(
            target=_fleet_worker,
            args=(
                worker_id, task_queue, result_writer, heartbeat,
                self.encoding, self.errors, self.fault_plan,
            ),
            name=f"spanner-service-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # Drop the driver's copy of the write end NOW: the worker must
        # hold the only one, so its death (clean or killed) reads as
        # EOF on the driver side — and later forks can never inherit a
        # stray writer that would mask that EOF.
        result_writer.close()
        handle = ProcessWorkerHandle(
            worker_id, process, task_queue, heartbeat, result_reader
        )
        with self._lock:
            self._handles.append(handle)
            self.processes.append(process)
        return handle

    _worker_ids = None

    def _next_worker_id(self) -> int:
        if self._worker_ids is None:
            from itertools import count

            self._worker_ids = count()
        return next(self._worker_ids)

    def prepare_payload(self, query_id: str, payload: bytes) -> bytes:
        return payload  # pickled bytes cross the process boundary as-is

    def dispatch(self, worker: ProcessWorkerHandle, msg: tuple) -> None:
        worker.task_queue.put(msg)

    def poll(self, timeout: float) -> list[tuple]:
        with self._lock:
            readers = [
                h.result_reader
                for h in self._handles
                if h.result_reader is not None
            ]
            readers.extend(self._zombie_readers)
        if not readers:  # no fleet yet (spawn failures): keep the tick rate
            time.sleep(timeout)
            return []
        try:
            ready = mp_connection.wait(readers, timeout=timeout)
        except OSError:  # a reader closed mid-shutdown
            return []
        msgs: list[tuple] = []
        for conn in ready:
            self._drain_reader(conn, msgs)
        return msgs

    def _drain_reader(self, conn, msgs: list) -> None:
        """Pull every complete result already in one worker's pipe.

        EOF (the worker exited) or a torn frame (the worker was killed
        mid-send) retires just this reader: with per-worker pipes a
        dying writer can only poison its own channel, never the
        fleet's.  Results the worker flushed before dying are still
        drained first — the driver's at-most-once resolution drops any
        that a re-dispatch has since superseded.
        """
        while True:
            try:
                if not conn.poll():
                    return
                msgs.append(conn.recv())
            except (EOFError, OSError, pickle.UnpicklingError):
                self._retire_reader(conn)
                return

    def _retire_reader(self, conn) -> None:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        with self._lock:
            for handle in self._handles:
                if handle.result_reader is conn:
                    handle.result_reader = None
            try:
                self._zombie_readers.remove(conn)
            except ValueError:
                pass

    def _orphan_reader(self, worker: ProcessWorkerHandle) -> None:
        """Keep polling a removed worker's result pipe until EOF."""
        with self._lock:
            if worker.result_reader is not None:
                self._zombie_readers.append(worker.result_reader)
                worker.result_reader = None
            try:
                self._handles.remove(worker)
            except ValueError:
                pass

    def stop_worker(
        self, worker: ProcessWorkerHandle, *, graceful: bool
    ) -> None:
        if not worker.stopped:
            if graceful:
                worker.task_queue.put(("stop",))
            worker.stopped = True
        self._orphan_reader(worker)

    def kill_worker(self, worker: ProcessWorkerHandle) -> None:
        # SIGKILL on purpose — a genuinely hung process may ignore
        # SIGTERM.
        worker.stopped = True
        self._orphan_reader(worker)
        worker.process.kill()

    def release_worker(self, worker: ProcessWorkerHandle) -> None:
        worker.stopped = True
        self._orphan_reader(worker)

    def reap(self) -> None:
        """Reap exited worker processes from the lifetime list.

        A recycling service replaces workers indefinitely; without
        pruning, ``processes`` (kept so :meth:`close` can join
        everything) would grow without bound over the fleet's life.
        """
        with self._lock:
            if len(self.processes) <= 2 * self.workers:
                return
            alive = []
            for process in self.processes:
                if process.is_alive():
                    alive.append(process)
                else:
                    process.join(timeout=0)  # reap the zombie
            self.processes = alive

    def close(self, *, drain: bool, budget: Callable[[float], float]) -> None:
        with self._lock:
            processes = list(self.processes)
        for proc in processes:
            if drain:
                proc.join(timeout=budget(10))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=budget(10))
            if proc.is_alive():  # stuck past the budget: no mercy
                proc.kill()
                proc.join(timeout=1)
        with self._lock:
            stale_readers = list(self._zombie_readers)
            self._zombie_readers.clear()
            self._handles.clear()
        for conn in stale_readers:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
