"""Pluggable compute backends for the serving runtime.

The mechanism layer under :class:`~repro.runtime.service.SpannerService`
(see :mod:`repro.runtime.backends.base` for the contract): one seam,
three substrates — :class:`ProcessBackend` (the extracted original
multiprocessing fleet), :class:`ThreadBackend` (shared-artifact thread
pool) and :class:`SerialBackend` (inline execution).
"""

from .base import (
    BACKEND_NAMES,
    ComputeBackend,
    LocalHeartbeat,
    WorkerHandle,
    default_backend_name,
    resolve_backend,
)

__all__ = [
    "BACKEND_NAMES",
    "ComputeBackend",
    "LocalHeartbeat",
    "WorkerHandle",
    "default_backend_name",
    "resolve_backend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
]


def __getattr__(name: str):  # PEP 562: concrete backends import lazily
    if name == "ProcessBackend":
        from .process import ProcessBackend

        return ProcessBackend
    if name == "SerialBackend":
        from .serial import SerialBackend

        return SerialBackend
    if name == "ThreadBackend":
        from .thread import ThreadBackend

        return ThreadBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
