"""The compute-backend contract: mechanism below, policy above.

The paper's compile-once architecture (Theorem 3.3) hoists every
string-independent cost into a picklable artifact — which is exactly
what makes the serving engine portable across execution substrates: any
substrate that can hold a materialized artifact and run the serial
per-document sweep can serve the fleet's tasks.  A
:class:`ComputeBackend` owns that *mechanism*:

* spawn (and recycle) workers, each addressed by a
  :class:`WorkerHandle`;
* ship a query's artifact at most once per worker lifetime (the
  *driver* tracks what was shipped; the backend decides what a
  "shipment" physically is — pickled bytes for processes, a shared
  materialized engine for threads);
* dispatch task messages and collect result messages (the same wire
  tuples whatever the substrate, so the driver's at-most-once
  resolution, retry and straggler-dropping logic is backend-blind);
* expose heartbeat / RSS readings per worker;
* kill-and-replace workers that hang or balloon (where the substrate
  can — you cannot SIGKILL a thread, and there is nothing to kill
  inline).

:class:`~repro.runtime.service.SpannerService` is the *policy* layer
over this contract: registration and admission, circuit breakers,
result caps, manifests, fusion planning and the submit/extract API are
all written purely against :class:`ComputeBackend`, so a new substrate
(a free-threaded pool today; a multi-box driver tomorrow) plugs in
under every one of those behaviors unchanged.
"""

from __future__ import annotations

import sys
import threading
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .serial import SerialBackend
    from .thread import ThreadBackend
    from .process import ProcessBackend

__all__ = [
    "BACKEND_NAMES",
    "ComputeBackend",
    "WorkerHandle",
    "LocalHeartbeat",
    "default_backend_name",
    "resolve_backend",
]

#: Accepted values of every ``backend=`` knob.  ``"auto"`` resolves at
#: construction time via :func:`default_backend_name`.
BACKEND_NAMES = ("auto", "serial", "thread", "process")


def default_backend_name() -> str:
    """What ``backend="auto"`` means on this interpreter.

    Free-threaded builds (PEP 703, ``python3.13t``) run threads on all
    cores with no GIL, so a thread pool gives process-level parallelism
    without pickling, process spawn or shm transport — the right
    default there.  On GIL builds, processes remain the only route to
    real CPU parallelism.
    """
    gil_probe = getattr(sys, "_is_gil_enabled", None)
    if gil_probe is not None and not gil_probe():
        return "thread"
    return "process"


class LocalHeartbeat:
    """An in-process stand-in for the worker heartbeat ``Array("d", 4)``.

    Thread and inline workers stamp the same quadruple — ``(running
    task id, monotonic stamp, rss bytes, fused member ordinal)`` — the
    process backend publishes through shared memory, so the driver's
    deadline scan, memory watchdog and fused-member attribution read
    every substrate identically.  Mirrors the two operations the worker
    core and the driver use: ``get_lock()`` and indexing.
    """

    __slots__ = ("_values", "_lock")

    def __init__(self) -> None:
        self._values = [-1.0, 0.0, 0.0, -1.0]
        self._lock = threading.Lock()

    def get_lock(self) -> threading.Lock:
        return self._lock

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def __setitem__(self, index: int, value: float) -> None:
        self._values[index] = value


class WorkerHandle:
    """Driver-side record of one worker, whatever its substrate.

    The driver's bookkeeping fields (what was shipped, what is in
    flight, whether the worker is retiring) live here so scheduling,
    recycling and artifact-shipment policy are backend-blind; a
    concrete backend's handle subclass adds the substrate facts
    (process/thread object, task channel, heartbeat) and implements
    :meth:`alive`, :attr:`pid` and :meth:`read_heartbeat`.
    """

    __slots__ = (
        "worker_id", "shipped", "in_flight", "assigned", "retiring",
        "memory_flagged", "stopped",
    )

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.shipped: set[str] = set()  # query ids this worker holds
        self.in_flight: dict[int, object] = {}  # task_id -> _Task
        self.assigned = 0  # lifetime task count (drives recycling)
        self.retiring = False  # no new assignments; stop when drained
        self.memory_flagged = False  # retiring because of the watchdog
        self.stopped = False  # stop sent (or crash/kill observed)

    @property
    def pid(self) -> int | None:
        """The OS pid serving this worker (the driver's own for
        thread/inline workers)."""
        raise NotImplementedError

    def alive(self) -> bool:
        """Whether the worker can still produce results."""
        raise NotImplementedError

    def read_heartbeat(self) -> tuple[int, float, float, int]:
        """The (running task id, stamp, rss bytes, member ordinal)
        quadruple; task id is -1 when idle, rss is 0.0 until the
        worker's first stamp, and the member ordinal is -1 outside a
        fused task's per-member enumeration phases."""
        raise NotImplementedError


class ComputeBackend(ABC):
    """The mechanism seam under :class:`SpannerService`.

    Class attributes describe the substrate to the policy layer:

    * ``name`` — the concrete backend name (``health()`` and the
      restart manifest record it);
    * ``worker_model`` — what a worker physically is (``"process"``,
      ``"thread"``, ``"inline"``);
    * ``supports_kill`` — whether a hung worker can be killed and
      replaced mid-task; without it the driver's deadline scan is
      disabled (there is nothing it could do past the deadline);
    * ``uses_wire_transport`` — whether task payloads cross an address
      space, i.e. whether the shared-memory document transport and
      pickled artifacts apply at all;
    * ``inline`` — dispatch executes the task synchronously inside
      :meth:`dispatch` (the serial backend), so the driver should
      drain results immediately after dispatching instead of waiting a
      collector tick.
    """

    name: str
    worker_model: str
    supports_kill: bool
    uses_wire_transport: bool
    inline: bool = False

    def start(self) -> None:
        """One-time setup before the first :meth:`spawn_worker`."""

    @abstractmethod
    def spawn_worker(self) -> WorkerHandle:
        """Start one worker and return its handle."""

    @abstractmethod
    def prepare_payload(self, query_id: str, payload: bytes) -> object:
        """The shipped form of a registered artifact's pickled bytes.

        Called once per (worker, query) lifetime, with the registry's
        canonical pickled artifact.  Process workers receive the bytes
        verbatim (unpickled worker-side); thread and inline workers
        receive one shared materialized engine per query — built once
        per backend, never pickled again.
        """

    @abstractmethod
    def dispatch(self, worker: WorkerHandle, msg: tuple) -> None:
        """Hand one wire task message to ``worker``."""

    @abstractmethod
    def poll(self, timeout: float) -> list[tuple]:
        """Result messages that arrived within ``timeout`` seconds.

        Returns every complete message available (possibly none),
        including stragglers from killed or retired workers — the
        driver's at-most-once resolution drops those.
        """

    @abstractmethod
    def stop_worker(self, worker: WorkerHandle, *, graceful: bool) -> None:
        """Retire ``worker``: no further dispatches will arrive.

        ``graceful`` asks the worker to finish its queue and exit
        (recycling, draining close); otherwise the backend may abandon
        it for :meth:`close` to terminate.  Idempotent; always marks
        the handle stopped.
        """

    @abstractmethod
    def kill_worker(self, worker: WorkerHandle) -> None:
        """Forcibly end ``worker`` *now* (deadline/memory watchdogs).

        Only called when ``supports_kill`` is true.  After this call
        ``worker.alive()`` is false and any result it was producing is
        at most a straggler.
        """

    @abstractmethod
    def release_worker(self, worker: WorkerHandle) -> None:
        """Detach a worker that died on its own (crash reap).

        Results it flushed before dying must still surface from
        :meth:`poll` until its channel reports end-of-stream.
        """

    def reap(self) -> None:
        """Prune bookkeeping for workers that have fully exited."""

    @abstractmethod
    def close(self, *, drain: bool, budget: Callable[[float], float]) -> None:
        """Tear the substrate down; no calls follow.

        ``budget(default)`` maps a default wait to the remaining close
        budget in seconds — the backend bounds its joins with it.
        ``drain`` mirrors the service-level close mode: a draining
        close waits for workers to exit on their own before escalating.
        """


def resolve_backend(
    backend: str,
    *,
    workers: int,
    mp_context: str | None = None,
    encoding: str = "utf-8",
    errors: str = "strict",
    fault_plan=None,
) -> "SerialBackend | ThreadBackend | ProcessBackend":
    """Construct the backend ``backend`` names (resolving ``"auto"``).

    The import is deferred per concrete backend so the serial path
    never imports :mod:`multiprocessing` machinery it will not use.
    """
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"backend must be one of {BACKEND_NAMES}, got {backend!r}"
        )
    if backend == "auto":
        backend = default_backend_name()
    if backend == "serial":
        from .serial import SerialBackend

        return SerialBackend(
            encoding=encoding, errors=errors, fault_plan=fault_plan
        )
    if backend == "thread":
        from .thread import ThreadBackend

        return ThreadBackend(
            encoding=encoding, errors=errors, fault_plan=fault_plan
        )
    from .process import ProcessBackend

    return ProcessBackend(
        workers=workers,
        mp_context=mp_context,
        encoding=encoding,
        errors=errors,
        fault_plan=fault_plan,
    )
