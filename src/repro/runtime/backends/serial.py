"""The inline backend: one "worker" executed inside ``dispatch``.

This is the unification of what used to be three scattered ``workers=1``
fallback paths (two in ``parallel.py``, one in ``service.py``'s compile
path): instead of special-casing single-worker services around the
fleet, a serial service runs the *same* policy layer — admission,
breakers, caps, manifests, fusion — over a backend whose dispatch simply
runs the task in the calling thread.  One code path, zero forked
semantics, and the full service surface (result caps, fused serving,
manifests) now works at ``workers=1`` too.

``inline = True`` tells the driver that results exist the moment
``dispatch`` returns, so the submit path drains them immediately rather
than waiting a collector tick — a serial service adds no scheduling
latency over a bare loop.

There is no kill here (``supports_kill = False``): the "worker" is the
caller.  Deadlines and the memory watchdog are accordingly inert, which
the service documents as the serial trade-off.  Injected crash faults
(raised as :class:`~repro.runtime.faults._InjectedWorkerDeath` under
``inline_faults=True``) are caught at the dispatch boundary and mark the
worker dead with no result — the driver's crash reaping then replaces
it and re-dispatches, exactly as it would a SIGKILLed process.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from typing import TYPE_CHECKING, Callable

from .base import ComputeBackend, LocalHeartbeat, WorkerHandle
from .worker import materialize, run_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan

__all__ = ["SerialBackend", "SerialWorkerHandle"]


class SerialWorkerHandle(WorkerHandle):
    """Driver-side record of the inline pseudo-worker."""

    __slots__ = ("heartbeat", "engines", "dead")

    def __init__(self, worker_id: int):
        super().__init__(worker_id)
        self.heartbeat = LocalHeartbeat()
        self.engines: dict[str, object] = {}  # run_task's engine table
        self.dead = False  # an injected crash "killed" this worker

    @property
    def pid(self) -> int | None:
        return os.getpid()

    def alive(self) -> bool:
        return not self.dead

    def read_heartbeat(self) -> tuple[int, float, float, int]:
        with self.heartbeat.get_lock():
            return (
                int(self.heartbeat[0]),
                self.heartbeat[1],
                self.heartbeat[2],
                int(self.heartbeat[3]),
            )


class SerialBackend(ComputeBackend):
    """Inline execution behind the fleet contract."""

    name = "serial"
    worker_model = "inline"
    supports_kill = False  # the worker IS the caller; nothing to kill
    uses_wire_transport = False
    inline = True

    def __init__(
        self,
        *,
        encoding: str = "utf-8",
        errors: str = "strict",
        fault_plan: "FaultPlan | None" = None,
    ):
        self.encoding = encoding
        self.errors = errors
        self.fault_plan = fault_plan
        self._engines: dict[str, object] = {}  # shared across respawns
        #: Results produced by dispatch, awaiting poll.  Locked because
        #: the submit thread appends (and drains inline) while the
        #: collector thread polls concurrently.
        self._buffered: list[tuple] = []
        self._buffer_lock = threading.Lock()
        self._worker_seq = 0

    def spawn_worker(self) -> SerialWorkerHandle:
        handle = SerialWorkerHandle(self._worker_seq)
        self._worker_seq += 1
        # Share the engine cache across worker generations: an injected
        # crash replaces the handle, not the compiled artifacts.
        handle.engines = self._engines
        return handle

    def prepare_payload(self, query_id: str, payload: bytes) -> object:
        engine = self._engines.get(query_id)
        if engine is None:
            engine = materialize(pickle.loads(payload))
            self._engines[query_id] = engine
        return engine

    def dispatch(self, worker: SerialWorkerHandle, msg: tuple) -> None:
        from ..faults import _InjectedWorkerDeath

        try:
            result = run_task(
                worker.engines, msg, worker.heartbeat, self.encoding,
                self.errors, self.fault_plan, worker.worker_id,
                inline_faults=True,
            )
        except _InjectedWorkerDeath:
            worker.dead = True  # simulated crash: no result, reap + retry
            return
        with self._buffer_lock:
            self._buffered.append(result)

    def poll(self, timeout: float) -> list[tuple]:
        with self._buffer_lock:
            msgs = self._buffered
            self._buffered = []
        if not msgs and timeout:
            # Keep the collector's tick rate bounded while idle — the
            # submit path drains inline results itself, so sleeping
            # here never delays a resolution.
            time.sleep(timeout)
            with self._buffer_lock:
                msgs = self._buffered
                self._buffered = []
        return msgs

    def stop_worker(
        self, worker: SerialWorkerHandle, *, graceful: bool
    ) -> None:
        worker.stopped = True

    def kill_worker(self, worker: SerialWorkerHandle) -> None:
        raise AssertionError(
            "kill_worker on the serial backend (supports_kill is False)"
        )

    def release_worker(self, worker: SerialWorkerHandle) -> None:
        worker.stopped = True

    def close(self, *, drain: bool, budget: Callable[[float], float]) -> None:
        self._engines.clear()
        self._buffered.clear()
