"""String-independent automaton tables (the compiled half of Theorem 3.3).

Theorem 3.3 splits evaluation of ``[[A]](s)`` into preprocessing and
enumeration, but a large share of the "preprocessing" never looks at the
string at all: trimming, the configuration sweep of §4.1, the
variable-epsilon closures of Lemma 3.10's proof, and the per-state
terminal-edge lists.  :class:`AutomatonTables` hoists exactly that
string-independent work into a reusable artifact so that a fixed query
workload streamed over many documents (the serving scenario of Kalmbach
et al. 2022) pays it once per automaton instead of once per
``(automaton, string)`` pair.

On top of the static tables sits the **burst-step table**: for each
distinct character ``σ``, a row mapping

    ``state p  ->  tuple of states reachable by (terminal edge reading σ)
                   followed by a variable-epsilon burst``

so the evaluation-graph construction's inner ``pred.matches(ch)`` loop
collapses into a single indexed lookup per frontier state.  Rows are
compact state-indexed tuples (one ``tuple[int, ...]`` per state, ``()``
when the character is not readable there).  By default rows are built
lazily on first sight of a character; for automata whose terminal
predicates are all finite :class:`~repro.alphabet.Chars` sets the full
alphabet is statically known and :meth:`AutomatonTables.prebuild_burst`
(called by ``CompiledSpanner``) builds every row eagerly — afterwards
*unseen* characters resolve to a shared all-empty row with no predicate
sweep at all.  Wildcard automata (``NotChars``/``AnyChar``) have no
complete build, so the same method prebuilds a *probe* alphabet (ASCII
letters/digits) and leaves the long tail to the lazy fallback.

**Pickling.**  ``AutomatonTables`` is an explicit serialization
contract (``__getstate__``/``__setstate__``) so that
:class:`~repro.runtime.parallel.ParallelSpanner` can ship one compiled
artifact to every worker process: the prepared automaton,
configurations, closures, terminal edges and every burst row built so
far survive the round trip; pickle's memo preserves the interning of
shared closure tuples and configurations; the ``views`` scratch dict
(in-memory derived caches, e.g. the join's operand buckets) is
deliberately dropped and rebuilt lazily on the other side.

:func:`tables_for` memoizes tables per automaton *object* (weakly, so
dropping the automaton frees its tables); it is shared by
:class:`~repro.runtime.compiled.CompiledSpanner` and the join product
construction (:mod:`repro.vset.join`), which means joining a cached
operand twice never recomputes its closures.
"""

from __future__ import annotations

from ..alphabet import Chars, is_epsilon, is_marker, is_marker_set, is_symbol
from ..automata.ops import closure
from ..errors import NotFunctionalError
from ..vset.automaton import VSetAutomaton
from ..vset.configurations import (
    VariableConfiguration,
    compute_state_configurations,
)
from .cache import WeakCache

__all__ = ["AutomatonTables", "tables_for"]

#: Maximum number of distinct characters the burst-step table caches.
#: Real workloads converge on a few dozen rows; the cap only matters
#: for adversarial unicode-diverse streams, where rows past the cap are
#: computed per call (predicate fallback) instead of growing memory
#: with input character diversity.
BURST_TABLE_MAX_ROWS = 512

#: :meth:`AutomatonTables.prebuild_burst` thresholds: skip the eager
#: build when the static alphabet exceeds this many characters ...
EAGER_BURST_MAX_CHARS = 96

#: ... or when ``|alphabet| * n_states`` exceeds this many row cells
#: (equality automata are Chars-only but have O(N^4) states — eagerly
#: sweeping their edges per character would dwarf the join that
#: consumes them).
EAGER_BURST_MAX_CELLS = 1 << 18

#: The probe alphabet for wildcard automata (``NotChars``/``AnyChar``
#: predicates make the readable set infinite, so no eager build can be
#: complete): ASCII letters and digits cover the bulk of realistic
#: document characters, and the lazy fallback still serves the tail.
PROBE_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
)

#: One burst row: successor tuples indexed by state (``()`` = none).
BurstRow = "tuple[tuple[int, ...], ...]"


def _variable_epsilon(label: object) -> bool:
    """Labels traversable inside a burst: epsilon and variable markers."""
    return is_epsilon(label) or is_marker(label) or is_marker_set(label)


class AutomatonTables:
    """Every string-independent artifact of Theorem 3.3's preprocessing.

    Attributes:
        automaton: the prepared automaton the tables describe — trimmed,
            and additionally epsilon-compacted when ``compact=True``.
        variables: ``Vars(A)`` (decoding needs it even when empty).
        is_empty: True when ``R(A)`` is empty; all other tables are then
            empty placeholders.
        configs: per-state variable configurations ``~c_q`` (§4.1).
        final_config: ``~c_{q_f}`` (None on an empty language).
        ve: per-state variable-epsilon closures as sorted, interned
            tuples — states sharing a closure share one tuple object.
        terminal_edges: per-state ``(predicate, dst)`` lists.
        views: a scratch dict for downstream layers (e.g. the join's
            per-shared-variable-set operand buckets) to cache derived
            data alongside the tables.  Not pickled.
    """

    __slots__ = (
        "automaton",
        "variables",
        "is_empty",
        "configs",
        "final_config",
        "ve",
        "initial_ve",
        "terminal_edges",
        "views",
        "_burst",
        "_burst_complete",
        "_empty_row",
        "__weakref__",
    )

    def __init__(self, automaton: VSetAutomaton, *, compact: bool = False):
        # Deliberately no reference back to ``automaton``: tables_for's
        # weak cache must not have values that pin their keys alive.
        self.variables = automaton.variables
        prepared = automaton.compacted() if compact else automaton.trimmed()
        self.automaton = prepared
        self.is_empty = prepared.is_empty_language()
        self.views: dict[object, object] = {}
        self._burst: dict[str, BurstRow] = {}
        self._burst_complete = False
        self._empty_row: BurstRow = ()
        if self.is_empty:
            self.configs: tuple[VariableConfiguration | None, ...] = ()
            self.final_config: VariableConfiguration | None = None
            self.ve: tuple[tuple[int, ...], ...] = ()
            self.initial_ve: tuple[int, ...] = ()
            self.terminal_edges: tuple[tuple, ...] = ()
            return
        self.configs = tuple(compute_state_configurations(prepared))
        self.final_config = self.configs[prepared.final]
        nfa = prepared.nfa
        interned: dict[tuple[int, ...], tuple[int, ...]] = {}
        self.ve = tuple(
            _intern(closure(nfa, (q,), _variable_epsilon), interned)
            for q in range(nfa.n_states)
        )
        self.initial_ve = self.ve[prepared.initial]
        self.terminal_edges = tuple(
            tuple(
                (label, dst)
                for label, dst in nfa.transitions[q]
                if is_symbol(label)
            )
            for q in range(nfa.n_states)
        )
        self._empty_row = ((),) * nfa.n_states

    # -- Functionality gate -------------------------------------------------
    def require_all_closed_final(self) -> None:
        """Raise unless ``~c_{q_f}`` closes every variable (Theorem 3.3)."""
        if self.final_config is None or not self.final_config.is_all_closed:
            raise NotFunctionalError(
                "final state configuration leaves variables unclosed"
            )

    # -- The character-indexed burst-step table -----------------------------
    def burst_step(self, ch: str) -> BurstRow:
        """``state -> successors-after-VE`` for one input character.

        Built on first sight of ``ch`` by the predicate-match fallback
        (one ``pred.matches`` sweep over the terminal edges), then
        served from the cache for every later occurrence — in this
        document or any other.  After a successful
        :meth:`prebuild_burst`, every readable character already has a
        row and unseen characters short-circuit to a shared all-empty
        row.  The lazy cache is bounded by
        :data:`BURST_TABLE_MAX_ROWS` so character-diverse streams
        cannot grow it without limit; overflow rows are recomputed per
        call.
        """
        row = self._burst.get(ch)
        if row is None:
            if self._burst_complete:
                # Static alphabet fully indexed: a missing row means no
                # terminal predicate can read ``ch`` anywhere.
                return self._empty_row
            row = self._build_burst(ch)
            if len(self._burst) < BURST_TABLE_MAX_ROWS:
                self._burst[ch] = row
        return row

    def _build_burst(self, ch: str) -> BurstRow:
        rows: list[tuple[int, ...]] = []
        for edges in self.terminal_edges:
            succs: set[int] | None = None
            for pred, r in edges:
                if pred.matches(ch):
                    if succs is None:
                        succs = set(self.ve[r])
                    else:
                        succs.update(self.ve[r])
            rows.append(tuple(sorted(succs)) if succs else ())
        return tuple(rows)

    def static_alphabet(self) -> frozenset[str] | None:
        """The full readable alphabet, when statically known.

        For automata whose terminal predicates are all finite
        :class:`~repro.alphabet.Chars` sets this is their union; any
        :class:`~repro.alphabet.AnyChar`/:class:`~repro.alphabet.NotChars`
        predicate makes the readable set infinite — returns ``None``.
        """
        chars: set[str] = set()
        for edges in self.terminal_edges:
            for pred, _dst in edges:
                if not isinstance(pred, Chars):
                    return None
                chars.update(pred.chars)
        return frozenset(chars)

    def fusion_class(self) -> str:
        """Which fused-sweep cohort these tables belong to.

        ``"static"`` when the readable alphabet is statically known
        (every terminal predicate a finite :class:`Chars` set) —
        such members fuse eagerly into one shared sweep with complete
        burst rows; ``"dynamic"`` for wildcard automata, which keep
        their lazily-grown rows and fuse into their own cohort.
        """
        return "static" if self.static_alphabet() is not None else "dynamic"

    def prebuild_burst(
        self,
        *,
        max_chars: int = EAGER_BURST_MAX_CHARS,
        max_cells: int = EAGER_BURST_MAX_CELLS,
        probe: str = PROBE_ALPHABET,
    ) -> bool:
        """Eagerly build burst rows ahead of the first document.

        For a statically-known (all-``Chars``) alphabet, builds every
        row and returns True: no evaluation ever runs the predicate
        fallback — known characters hit their prebuilt row, unknown
        characters hit the shared empty row.

        For wildcard automata (``NotChars``/``AnyChar`` predicates,
        where no build can be complete) it prebuilds rows for the
        ``probe`` alphabet — ASCII letters/digits by default — and
        returns False: the common characters are indexed before the
        first document arrives, and genuinely unseen ones keep the lazy
        fallback.  Either mode is skipped (returning False) when the
        row budget ``|chars| * n_states`` exceeds ``max_cells``.
        Idempotent; called by ``CompiledSpanner`` at construction.
        """
        if self._burst_complete:
            return True
        if self.is_empty:
            self._burst_complete = True
            return True
        alphabet = self.static_alphabet()
        if alphabet is None:
            # Wildcard automaton: probe prebuild, lazy tail.
            if probe and len(probe) * len(self.terminal_edges) <= max_cells:
                for ch in probe:
                    if ch not in self._burst:
                        self._burst[ch] = self._build_burst(ch)
            return False
        if len(alphabet) > max_chars:
            return False
        if len(alphabet) * len(self.terminal_edges) > max_cells:
            return False
        for ch in alphabet:
            if ch not in self._burst:
                self._burst[ch] = self._build_burst(ch)
        self._burst_complete = True
        return True

    @property
    def burst_complete(self) -> bool:
        """True when every readable character has a prebuilt row."""
        return self._burst_complete

    @property
    def distinct_characters_seen(self) -> int:
        """How many burst-table rows exist (introspection / tests)."""
        return len(self._burst)

    # -- Serialization (the ParallelSpanner shipping contract) --------------
    def __getstate__(self) -> dict:
        return {
            "automaton": self.automaton,
            "variables": self.variables,
            "is_empty": self.is_empty,
            "configs": self.configs,
            "final_config": self.final_config,
            "ve": self.ve,
            "initial_ve": self.initial_ve,
            "terminal_edges": self.terminal_edges,
            "burst": self._burst,
            "burst_complete": self._burst_complete,
        }

    def __setstate__(self, state: dict) -> None:
        self.automaton = state["automaton"]
        self.variables = state["variables"]
        self.is_empty = state["is_empty"]
        self.configs = state["configs"]
        self.final_config = state["final_config"]
        self.ve = state["ve"]
        self.initial_ve = state["initial_ve"]
        self.terminal_edges = state["terminal_edges"]
        self._burst = state["burst"]
        self._burst_complete = state["burst_complete"]
        self._empty_row = ((),) * len(self.terminal_edges)
        # Derived per-process caches rebuild lazily on first use.
        self.views = {}


_CACHE: WeakCache = WeakCache(name="automaton-tables")


def tables_for(automaton: VSetAutomaton) -> AutomatonTables:
    """The shared, compacted tables for ``automaton`` (weakly memoized).

    Repeated callers — :class:`CompiledSpanner` instances, repeated
    joins of the same operand — get the same object, so closures and
    configuration sweeps run once per automaton for the lifetime of the
    automaton object.  Hit/miss counters surface through
    :func:`repro.runtime.cache.cache_metrics` under
    ``"automaton-tables"``.
    """
    return _CACHE.get_or_create(
        automaton, lambda: AutomatonTables(automaton, compact=True)
    )


def _intern(
    states: frozenset[int], pool: dict[tuple[int, ...], tuple[int, ...]]
) -> tuple[int, ...]:
    key = tuple(sorted(states))
    return pool.setdefault(key, key)
