"""String-independent automaton tables (the compiled half of Theorem 3.3).

Theorem 3.3 splits evaluation of ``[[A]](s)`` into preprocessing and
enumeration, but a large share of the "preprocessing" never looks at the
string at all: trimming, the configuration sweep of §4.1, the
variable-epsilon closures of Lemma 3.10's proof, and the per-state
terminal-edge lists.  :class:`AutomatonTables` hoists exactly that
string-independent work into a reusable artifact so that a fixed query
workload streamed over many documents (the serving scenario of Kalmbach
et al. 2022) pays it once per automaton instead of once per
``(automaton, string)`` pair.

On top of the static tables sits a lazily built **burst-step table**:
for each distinct character ``σ`` seen so far, a mapping

    ``state p  ->  tuple of states reachable by (terminal edge reading σ)
                   followed by a variable-epsilon burst``

so the evaluation-graph construction's inner ``pred.matches(ch)`` loop
collapses into a single dict lookup per frontier state.  Documents over
a typical alphabet share a few dozen distinct characters, so the table
converges quickly and subsequent documents run entirely on cached rows.

:func:`tables_for` memoizes tables per automaton *object* (weakly, so
dropping the automaton frees its tables); it is shared by
:class:`~repro.runtime.compiled.CompiledSpanner` and the join product
construction (:mod:`repro.vset.join`), which means joining a cached
operand twice never recomputes its closures.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from ..alphabet import is_epsilon, is_marker, is_marker_set, is_symbol
from ..automata.ops import closure
from ..errors import NotFunctionalError
from ..vset.automaton import VSetAutomaton
from ..vset.configurations import (
    VariableConfiguration,
    compute_state_configurations,
)

__all__ = ["AutomatonTables", "tables_for"]

#: Maximum number of distinct characters the burst-step table caches.
#: Real workloads converge on a few dozen rows; the cap only matters
#: for adversarial unicode-diverse streams, where rows past the cap are
#: computed per call (predicate fallback) instead of growing memory
#: with input character diversity.
BURST_TABLE_MAX_ROWS = 512


def _variable_epsilon(label: object) -> bool:
    """Labels traversable inside a burst: epsilon and variable markers."""
    return is_epsilon(label) or is_marker(label) or is_marker_set(label)


class AutomatonTables:
    """Every string-independent artifact of Theorem 3.3's preprocessing.

    Attributes:
        automaton: the prepared automaton the tables describe — trimmed,
            and additionally epsilon-compacted when ``compact=True``.
        variables: ``Vars(A)`` (decoding needs it even when empty).
        is_empty: True when ``R(A)`` is empty; all other tables are then
            empty placeholders.
        configs: per-state variable configurations ``~c_q`` (§4.1).
        final_config: ``~c_{q_f}`` (None on an empty language).
        ve: per-state variable-epsilon closures as sorted, interned
            tuples — states sharing a closure share one tuple object.
        terminal_edges: per-state ``(predicate, dst)`` lists.
        views: a scratch dict for downstream layers (e.g. the join's
            per-shared-variable-set operand buckets) to cache derived
            data alongside the tables.
    """

    __slots__ = (
        "automaton",
        "variables",
        "is_empty",
        "configs",
        "final_config",
        "ve",
        "initial_ve",
        "terminal_edges",
        "views",
        "_burst",
        "__weakref__",
    )

    def __init__(self, automaton: VSetAutomaton, *, compact: bool = False):
        # Deliberately no reference back to ``automaton``: tables_for's
        # weak cache must not have values that pin their keys alive.
        self.variables = automaton.variables
        prepared = automaton.compacted() if compact else automaton.trimmed()
        self.automaton = prepared
        self.is_empty = prepared.is_empty_language()
        self.views: dict[object, object] = {}
        self._burst: dict[str, dict[int, tuple[int, ...]]] = {}
        if self.is_empty:
            self.configs: tuple[VariableConfiguration | None, ...] = ()
            self.final_config: VariableConfiguration | None = None
            self.ve: tuple[tuple[int, ...], ...] = ()
            self.initial_ve: tuple[int, ...] = ()
            self.terminal_edges: tuple[tuple, ...] = ()
            return
        self.configs = tuple(compute_state_configurations(prepared))
        self.final_config = self.configs[prepared.final]
        nfa = prepared.nfa
        interned: dict[tuple[int, ...], tuple[int, ...]] = {}
        self.ve = tuple(
            _intern(closure(nfa, (q,), _variable_epsilon), interned)
            for q in range(nfa.n_states)
        )
        self.initial_ve = self.ve[prepared.initial]
        self.terminal_edges = tuple(
            tuple(
                (label, dst)
                for label, dst in nfa.transitions[q]
                if is_symbol(label)
            )
            for q in range(nfa.n_states)
        )

    # -- Functionality gate -------------------------------------------------
    def require_all_closed_final(self) -> None:
        """Raise unless ``~c_{q_f}`` closes every variable (Theorem 3.3)."""
        if self.final_config is None or not self.final_config.is_all_closed:
            raise NotFunctionalError(
                "final state configuration leaves variables unclosed"
            )

    # -- The character-indexed burst-step table -----------------------------
    def burst_step(self, ch: str) -> dict[int, tuple[int, ...]]:
        """``state -> successors-after-VE`` for one input character.

        Built on first sight of ``ch`` by the predicate-match fallback
        (one ``pred.matches`` sweep over the terminal edges), then
        served from the cache for every later occurrence — in this
        document or any other.  The cache is bounded by
        :data:`BURST_TABLE_MAX_ROWS` so character-diverse streams
        cannot grow it without limit; overflow rows are recomputed per
        call.
        """
        table = self._burst.get(ch)
        if table is None:
            table = self._build_burst(ch)
            if len(self._burst) < BURST_TABLE_MAX_ROWS:
                self._burst[ch] = table
        return table

    def _build_burst(self, ch: str) -> dict[int, tuple[int, ...]]:
        out: dict[int, tuple[int, ...]] = {}
        for q, edges in enumerate(self.terminal_edges):
            succs: set[int] | None = None
            for pred, r in edges:
                if pred.matches(ch):
                    if succs is None:
                        succs = set(self.ve[r])
                    else:
                        succs.update(self.ve[r])
            if succs:
                out[q] = tuple(sorted(succs))
        return out

    @property
    def distinct_characters_seen(self) -> int:
        """How many burst-table rows exist (introspection / tests)."""
        return len(self._burst)


_CACHE: "WeakKeyDictionary[VSetAutomaton, AutomatonTables]" = WeakKeyDictionary()


def tables_for(automaton: VSetAutomaton) -> AutomatonTables:
    """The shared, compacted tables for ``automaton`` (weakly memoized).

    Repeated callers — :class:`CompiledSpanner` instances, repeated
    joins of the same operand — get the same object, so closures and
    configuration sweeps run once per automaton for the lifetime of the
    automaton object.
    """
    tables = _CACHE.get(automaton)
    if tables is None:
        tables = AutomatonTables(automaton, compact=True)
        _CACHE[automaton] = tables
    return tables


def _intern(
    states: frozenset[int], pool: dict[tuple[int, ...], tuple[int, ...]]
) -> tuple[int, ...]:
    key = tuple(sorted(states))
    return pool.setdefault(key, key)
