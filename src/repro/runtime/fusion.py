"""One-pass multi-query fusion: many registered queries, one document scan.

The serving fleet registers many queries but evaluates each task with
exactly one query's engine, so a corpus served to Q queries is scanned
Q times.  This module fuses a registered query *set* into a single
engine — the ``merge_extractors`` idiom lifted to vset-automata, with
the UCQ perspective of §2.3/Theorem 3.11: a union whose disjuncts stay
tagged with the query they came from, evaluated in one pass and
demultiplexed on the way out.

The key construction is :func:`fused_sweep`: the per-document leveled
NFA construction of :func:`repro.enumeration.graph.build_evaluation_graph`
run for several compiled queries inside **one** loop over the document's
characters.  Each member keeps its own :class:`LeveledNFA` (its own
node-id space), and within a member the loop body is *verbatim* the
solo construction — nodes and edges are appended in identical order —
so each member's radix enumeration yields a byte-identical tuple stream
to a solo evaluation.  What is shared is the per-character framing:
one pass over ``s``, one frontier bookkeeping step per member per
character, members dropped from the live set the moment their frontier
dies (so a member that stops matching early costs O(its matched
prefix), exactly as it would solo).

Members that cannot join the sweep are grouped into *fusion cohorts*:

* ``sweep``/``static`` — :class:`AutomatonTables` members whose
  readable alphabet is statically known (all-``Chars`` predicates);
* ``sweep``/``dynamic`` — wildcard-alphabet tables members
  (``NotChars``/``AnyChar``); fused in their own sweep so a
  static-alphabet cohort's burst rows stay complete;
* ``equality`` — :class:`CompiledEqualityQuery` members, which compile
  a per-document automaton: they cannot share the leveled sweep, but
  they *do* share one per-document
  :class:`~repro.text.substrings.SubstringIndex` (the rolling-hash
  index dominates their per-document setup);
* ``solo`` — anything else falls back to its own engine, untouched.

:class:`FusedQuery` is the ship-to-workers artifact (member ids +
member artifacts, sorted by id, explicit pickle contract) and
:class:`FusedEngine` its worker-side materialization.  The fused
artifact-store key (:func:`fused_fingerprint`) hashes the *sorted
member payload fingerprints*, so a warm restart revives the fused
engine whenever the same member set is registered again, in any order.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

from ..automata.leveled import LeveledNFA, RadixEnumerator
from ..enumeration.graph import EvaluationGraph
from ..enumeration.enumerator import decode_configuration_word
from ..spans import SpanTuple
from ..text.substrings import SubstringIndex
from .compiled import CompiledSpanner
from .equality import CompiledEqualityQuery
from .tables import AutomatonTables

__all__ = [
    "FusedQuery",
    "FusedEngine",
    "fused_sweep",
    "fused_fingerprint",
    "fused_query_id",
    "plan_cohorts",
    "plan_submission",
    "FUSED_ID_PREFIX",
]

#: Registry ids of fused pseudo-queries start with this marker so the
#: public surfaces (``queries``, ``health()``, the manifest) can filter
#: them out — a fused engine is fleet plumbing, not a registered query.
FUSED_ID_PREFIX = "fused:"


def fused_fingerprint(member_shas: Iterable[str]) -> str:
    """The artifact-store key of a fused engine.

    Hashes the *sorted* member payload fingerprints, so the key is
    independent of registration order and collides exactly when the
    member set (by compiled artifact bytes) is identical — which is
    when the fused engine is identical.
    """
    digest = hashlib.sha256(
        "\0".join(sorted(member_shas)).encode("ascii")
    ).hexdigest()
    return "f" + digest[:24]


def fused_query_id(member_shas: Iterable[str]) -> str:
    """The registry pseudo-id for a fused engine over these members."""
    digest = hashlib.sha256(
        "\0".join(sorted(member_shas)).encode("ascii")
    ).hexdigest()
    return FUSED_ID_PREFIX + digest[:16]


def plan_submission(
    member_ids: Sequence[str], *, fuse: bool = True
) -> tuple[str, tuple[str, ...]]:
    """The fused-vs-sequential decision point, shared by every caller.

    ``SpannerService.submit_all`` and single-query sessions
    (:class:`~repro.runtime.parallel.ParallelSpanner`) both route
    through this function so the decision is made in exactly one place:
    fusion pays off only when at least two members share the scan.

    Returns ``("fused", ids)`` or ``("sequential", ids)``.
    """
    ids = tuple(member_ids)
    if fuse and len(ids) >= 2:
        return ("fused", ids)
    return ("sequential", ids)


def plan_cohorts(
    members: Sequence[tuple[str, object]],
) -> list[tuple[str, list[tuple[int, object]]]]:
    """Group members into fusion cohorts (see module docstring).

    ``members`` is the fused engine's ``(query_id, artifact)`` list;
    the result pairs each cohort kind with ``(member_index, artifact)``
    entries, member order preserved inside each cohort.  Sweep members
    are split by :meth:`AutomatonTables.fusion_class` — compatible
    (static-alphabet) tables fuse eagerly into one sweep, wildcard
    tables into their own.
    """
    static: list[tuple[int, object]] = []
    dynamic: list[tuple[int, object]] = []
    equality: list[tuple[int, object]] = []
    solo: list[tuple[int, object]] = []
    for index, (_qid, artifact) in enumerate(members):
        if isinstance(artifact, CompiledSpanner):
            artifact = artifact.tables
        if isinstance(artifact, AutomatonTables):
            if artifact.fusion_class() == "static":
                static.append((index, artifact))
            else:
                dynamic.append((index, artifact))
        elif isinstance(artifact, CompiledEqualityQuery):
            equality.append((index, artifact))
        else:
            solo.append((index, artifact))
    cohorts: list[tuple[str, list[tuple[int, object]]]] = []
    if static:
        cohorts.append(("sweep-static", static))
    if dynamic:
        cohorts.append(("sweep-dynamic", dynamic))
    if equality:
        cohorts.append(("equality", equality))
    if solo:
        cohorts.append(("solo", solo))
    return cohorts


class _MemberSweep:
    """One member's in-flight state inside :func:`fused_sweep`."""

    __slots__ = ("member", "tables", "leveled", "node_of", "frontier")

    def __init__(self, member: int, tables: AutomatonTables, n_slots: int):
        self.member = member
        self.tables = tables
        self.leveled = LeveledNFA(n_slots)
        self.node_of: dict[int, int] = {}
        self.frontier: list[int] = []


def _finalize(state: _MemberSweep, n: int) -> EvaluationGraph:
    """The solo construction's epilogue: final lookup, prune, wrap."""
    final_node = state.node_of.get(state.tables.automaton.final)
    if final_node is not None:
        state.leveled.mark_accepting(final_node)
    state.leveled.prune()
    return EvaluationGraph(state.leveled, state.tables.variables, n + 1)


def fused_sweep(
    entries: Sequence[tuple[int, AutomatonTables]], s: str
) -> dict[int, EvaluationGraph]:
    """Build every member's pruned evaluation graph in one pass over ``s``.

    ``entries`` pairs member indices with their compiled tables; the
    result maps each member index to the same
    :class:`~repro.enumeration.graph.EvaluationGraph` the solo
    :func:`~repro.enumeration.graph.build_evaluation_graph` would build
    — node for node, edge for edge, in identical creation order — so
    downstream radix enumeration is byte-identical per member.  Members
    whose frontier dies are finalized immediately and dropped from the
    live set; the character loop ends as soon as no member is live.
    """
    n = len(s)
    graphs: dict[int, EvaluationGraph] = {}
    live: list[_MemberSweep] = []
    for member, tables in entries:
        state = _MemberSweep(member, tables, n + 1)
        if tables.is_empty:
            state.leveled.prune()
            graphs[member] = EvaluationGraph(
                state.leveled, tables.variables, n + 1
            )
            continue
        tables.require_all_closed_final()
        # Level 1, exactly as the solo construction builds it.
        configs = tables.configs
        level_of = state.leveled.level_of
        out_edges = state.leveled.out_edges
        root_edges = out_edges[LeveledNFA.ROOT]
        for q in tables.initial_ve:
            level_of.append(1)
            out_edges.append([])
            node = len(level_of) - 1
            state.node_of[q] = node
            root_edges.append((configs[q], node))
            state.frontier.append(q)
        if state.frontier:
            live.append(state)
        else:
            graphs[member] = _finalize(state, n)

    for position in range(1, n + 1):
        if not live:
            break
        ch = s[position - 1]
        next_level = position + 1
        survivors: list[_MemberSweep] = []
        for state in live:
            # Per member this block is the solo loop body verbatim;
            # only the enclosing character loop is shared.
            tables = state.tables
            steps = tables.burst_step(ch)
            configs = tables.configs
            level_of = state.leveled.level_of
            out_edges = state.leveled.out_edges
            node_of = state.node_of
            next_nodes: dict[int, int] = {}
            next_frontier: list[int] = []
            for p in state.frontier:
                succs = steps[p]
                if not succs:
                    continue
                src_edges = out_edges[node_of[p]]
                for q in succs:
                    dst = next_nodes.get(q)
                    if dst is None:
                        level_of.append(next_level)
                        out_edges.append([])
                        dst = len(level_of) - 1
                        next_nodes[q] = dst
                        next_frontier.append(q)
                    src_edges.append((configs[q], dst))
            state.node_of = next_nodes
            state.frontier = next_frontier
            if next_frontier:
                survivors.append(state)
            else:
                graphs[state.member] = _finalize(state, n)
        live = survivors

    for state in live:
        graphs[state.member] = _finalize(state, n)
    return graphs


def _iter_graph(graph: EvaluationGraph) -> Iterator[SpanTuple]:
    """Radix-order tuples of one pruned graph (the Theorem 3.3 stream)."""
    if graph.leveled.is_empty:
        return
    enumerator = RadixEnumerator(
        graph.leveled, lambda config: config.sort_key()
    )
    variables = graph.variables
    for word in enumerator:
        yield decode_configuration_word(word, variables)


def _equality_stream(
    engine: CompiledEqualityQuery, s: str, index: SubstringIndex
) -> Iterator[SpanTuple]:
    """A lazy per-member equality stream sharing the document's index.

    Lazy on purpose: the per-document compile (``compile_for``) runs on
    first ``next()``, inside the consumer's per-member accounting
    window, so fleet-side fault attribution indicts the right member.
    """
    yield from engine.evaluator(s, index=index)


class FusedQuery:
    """The ship-to-workers artifact of a fused query set.

    ``members`` is a tuple of ``(query_id, artifact)`` pairs sorted by
    query id, where each artifact is exactly what the member's solo
    registration would ship (:class:`AutomatonTables`,
    :class:`CompiledEqualityQuery`, ...).  Sorting makes the pickle —
    and hence the fused store entry — independent of registration
    order, matching :func:`fused_fingerprint`.
    """

    __slots__ = ("members",)

    def __init__(self, members: Sequence[tuple[str, object]]):
        if len(members) < 2:
            raise ValueError("a fused query needs at least 2 members")
        ids = [qid for qid, _ in members]
        if len(set(ids)) != len(ids):
            raise ValueError("fused member query ids must be distinct")
        self.members = tuple(sorted(members, key=lambda m: m[0]))

    @property
    def member_ids(self) -> tuple[str, ...]:
        return tuple(qid for qid, _ in self.members)

    # -- Serialization ------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"members": self.members}

    def __setstate__(self, state: dict) -> None:
        self.members = state["members"]

    def materialize(self) -> "FusedEngine":
        """The evaluating engine (worker-side; also used serially)."""
        return FusedEngine(self)

    def __repr__(self) -> str:
        return f"FusedQuery(members={list(self.member_ids)})"


class FusedEngine:
    """A fused query set, materialized for evaluation.

    Cohorts are planned once at construction; :meth:`streams` then
    yields one lazy tuple iterator per member (member order) per
    document, the sweep cohorts sharing one character pass each and the
    equality cohort sharing one :class:`SubstringIndex`.
    """

    __slots__ = ("member_ids", "_sweeps", "_equality", "_solo")

    def __init__(self, fused: FusedQuery):
        self.member_ids = fused.member_ids
        self._sweeps: list[list[tuple[int, AutomatonTables]]] = []
        self._equality: list[tuple[int, CompiledEqualityQuery]] = []
        self._solo: list[tuple[int, object]] = []
        for kind, entries in plan_cohorts(fused.members):
            if kind.startswith("sweep"):
                # Prebuild each member's burst rows exactly as a solo
                # CompiledSpanner construction would (idempotent).
                for _index, tables in entries:
                    tables.prebuild_burst()
                self._sweeps.append(entries)  # type: ignore[arg-type]
            elif kind == "equality":
                self._equality = entries  # type: ignore[assignment]
            else:
                self._solo = entries

    def streams(self, s: str) -> list[Iterator[SpanTuple]]:
        """One tuple iterator per member (member order) for document ``s``.

        Sweep cohorts run their shared pass eagerly here (it *is* the
        shared work); enumeration — and the equality members' per-
        document compilation — stays lazy in the returned iterators.
        """
        out: list[Iterator[SpanTuple]] = [iter(())] * len(self.member_ids)
        for entries in self._sweeps:
            graphs = fused_sweep(entries, s)
            for member, graph in graphs.items():
                out[member] = _iter_graph(graph)
        if self._equality:
            index = SubstringIndex(s)
            for member, engine in self._equality:
                out[member] = _equality_stream(engine, s, index)
        for member, engine in self._solo:
            out[member] = engine.stream(s)  # type: ignore[attr-defined]
        return out

    def __repr__(self) -> str:
        return (
            f"FusedEngine(members={len(self.member_ids)}, "
            f"sweeps={len(self._sweeps)}, "
            f"equality={len(self._equality)}, solo={len(self._solo)})"
        )
