"""Unit tests for the NFA substrate: container, ops, Thompson."""

import re

import pytest

from repro.alphabet import (
    ANY,
    EPSILON,
    Chars,
    NotChars,
    char_pred,
    close_marker,
    intersect_predicates,
    is_epsilon,
    open_marker,
)
from repro.automata import NFA, closure, coreachable_states, reachable_states, simulate, trim
from repro.automata.thompson import thompson_nfa
from repro.regex import parse


class TestPredicates:
    def test_chars(self):
        pred = Chars("ab")
        assert pred.matches("a") and not pred.matches("c")

    def test_not_chars(self):
        pred = NotChars("ab")
        assert pred.matches("c") and not pred.matches("a")

    def test_any(self):
        assert ANY.matches("x")

    def test_concretize(self):
        assert Chars("ab").concretize("abc") == frozenset("ab")
        assert NotChars("a").concretize("abc") == frozenset("bc")
        assert ANY.concretize("ab") == frozenset("ab")

    @pytest.mark.parametrize(
        "a, b, expect",
        [
            (Chars("ab"), Chars("bc"), Chars("b")),
            (Chars("a"), Chars("b"), None),
            (ANY, Chars("ab"), Chars("ab")),
            (Chars("ab"), ANY, Chars("ab")),
            (Chars("ab"), NotChars("a"), Chars("b")),
            (NotChars("a"), Chars("ab"), Chars("b")),
            (NotChars("a"), NotChars("b"), NotChars("ab")),
            (ANY, ANY, ANY),
        ],
    )
    def test_intersection(self, a, b, expect):
        assert intersect_predicates(a, b) == expect

    def test_sort_keys_are_total(self):
        preds = [Chars("a"), Chars("b"), NotChars("a"), ANY]
        keys = [p.sort_key() for p in preds]
        assert len(set(keys)) == len(keys)
        sorted(keys)  # must not raise

    def test_char_pred_single(self):
        with pytest.raises(ValueError):
            char_pred("ab")


class TestNfaContainer:
    def test_add_and_count(self):
        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_transition(a, EPSILON, b)
        assert nfa.n_states == 2
        assert nfa.n_transitions == 1

    def test_add_states_range(self):
        nfa = NFA()
        states = nfa.add_states(3)
        assert list(states) == [0, 1, 2]

    def test_iter_edges(self):
        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_transition(a, "lab", b)
        assert list(nfa.iter_edges()) == [(a, "lab", b)]

    def test_induced_keeps_mapping(self):
        nfa = NFA()
        a, b, c = nfa.add_state(), nfa.add_state(), nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(c)
        nfa.add_transition(a, "1", b)
        nfa.add_transition(b, "2", c)
        sub, mapping = nfa.induced([a, c])
        assert sub.n_states == 2
        assert sub.n_transitions == 0
        assert sub.initial == mapping[a]
        assert sub.finals == {mapping[c]}

    def test_map_labels(self):
        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_transition(a, 1, b)
        mapped = nfa.map_labels(lambda lab: lab + 1)
        assert list(mapped.iter_edges()) == [(a, 2, b)]


class TestOps:
    def _chain(self):
        nfa = NFA()
        a, b, c, d = (nfa.add_state() for _ in range(4))
        nfa.set_initial(a)
        nfa.add_final(c)
        nfa.add_transition(a, EPSILON, b)
        nfa.add_transition(b, char_pred("x"), c)
        nfa.add_transition(d, EPSILON, c)  # d unreachable
        return nfa, (a, b, c, d)

    def test_closure_epsilon(self):
        nfa, (a, b, c, d) = self._chain()
        assert closure(nfa, (a,), is_epsilon) == {a, b}

    def test_reachable(self):
        nfa, (a, b, c, d) = self._chain()
        assert reachable_states(nfa, (a,)) == {a, b, c}

    def test_coreachable(self):
        nfa, (a, b, c, d) = self._chain()
        assert coreachable_states(nfa, (c,)) == {a, b, c, d}

    def test_trim_drops_dead_states(self):
        nfa, states = self._chain()
        trimmed, mapping = trim(nfa)
        assert trimmed.n_states == 3
        assert trimmed.finals

    def test_trim_empty_language(self):
        nfa = NFA()
        a = nfa.add_state()
        nfa.add_state()
        nfa.set_initial(a)  # no finals at all
        trimmed, _ = trim(nfa)
        assert not trimmed.finals
        assert trimmed.initial is not None

    def test_simulate_chars_and_markers(self):
        nfa = NFA()
        a, b, c = (nfa.add_state() for _ in range(3))
        nfa.set_initial(a)
        nfa.add_final(c)
        nfa.add_transition(a, open_marker("x"), b)
        nfa.add_transition(b, char_pred("z"), c)
        assert simulate(nfa, [open_marker("x"), "z"])
        assert not simulate(nfa, [close_marker("x"), "z"])
        assert not simulate(nfa, [open_marker("x")])


class TestThompson:
    @pytest.mark.parametrize(
        "pattern, pystring",
        [
            ("a", "a"),
            ("ab", "ab"),
            ("a|b", "a|b"),
            ("a*", "a*"),
            ("a+", "a+"),
            ("a?b", "a?b"),
            ("(ab|c)*d", "(ab|c)*d"),
            ("[ab]c", "[ab]c"),
            ("[^a]b", "[^a]b"),
            (".a.", ".a."),
        ],
    )
    def test_agrees_with_python_re(self, pattern, pystring):
        """Variable-free formulas must match exactly Python's re."""
        nfa = thompson_nfa(parse(pattern))
        compiled = re.compile(pystring)
        alphabet = "abcd"
        words = [""]
        for _ in range(4):
            words += [w + ch for w in words for ch in alphabet]
        for word in set(words):
            expected = compiled.fullmatch(word) is not None
            assert simulate(nfa, word) == expected, (pattern, word)

    def test_single_initial_and_final(self):
        nfa = thompson_nfa(parse("x{a|b}*" if False else "x{a|b}c"))
        assert nfa.initial is not None
        assert len(nfa.finals) == 1

    def test_linear_size(self):
        small = thompson_nfa(parse("ab"))
        big = thompson_nfa(parse("ab" * 50))
        # States grow linearly with formula size (within 3x).
        assert big.n_states <= 3 * 50 * small.n_states

    def test_empty_set_accepts_nothing(self):
        nfa = thompson_nfa(parse("∅"))
        assert not simulate(nfa, "")
        assert not simulate(nfa, "a")

    def test_epsilon_accepts_empty_only(self):
        nfa = thompson_nfa(parse("ε"))
        assert simulate(nfa, "")
        assert not simulate(nfa, "a")

    def test_capture_emits_markers(self):
        nfa = thompson_nfa(parse("x{a}"))
        assert simulate(nfa, [open_marker("x"), "a", close_marker("x")])
        assert not simulate(nfa, "a")
