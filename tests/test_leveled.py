"""Tests for leveled NFAs, radix enumeration and cross-sections (§4.2)."""

from itertools import product

import pytest

from repro.automata import NFA, LeveledNFA, RadixEnumerator, cross_section, enumerate_fixed_length
from repro.automata.crosssection import default_symbol_key
from repro.automata.thompson import thompson_nfa
from repro.automata.ops import simulate
from repro.regex import parse


def _identity_key(label):
    return label


class TestLeveledNFA:
    def _diamond(self):
        """Two paths spelling 'ab' and 'ac'."""
        leveled = LeveledNFA(2)
        m1 = leveled.add_node(1)
        m2 = leveled.add_node(1)
        end1 = leveled.add_node(2)
        end2 = leveled.add_node(2)
        leveled.add_edge(LeveledNFA.ROOT, "a", m1)
        leveled.add_edge(LeveledNFA.ROOT, "a", m2)
        leveled.add_edge(m1, "b", end1)
        leveled.add_edge(m2, "c", end2)
        leveled.mark_accepting(end1)
        leveled.mark_accepting(end2)
        return leveled

    def test_enumeration_radix_order(self):
        leveled = self._diamond()
        words = list(RadixEnumerator(leveled, _identity_key))
        assert words == [("a", "b"), ("a", "c")]

    def test_no_duplicates_on_overlapping_paths(self):
        # Two distinct paths both spelling "ab".
        leveled = LeveledNFA(2)
        m1, m2 = leveled.add_node(1), leveled.add_node(1)
        e1, e2 = leveled.add_node(2), leveled.add_node(2)
        leveled.add_edge(LeveledNFA.ROOT, "a", m1)
        leveled.add_edge(LeveledNFA.ROOT, "a", m2)
        leveled.add_edge(m1, "b", e1)
        leveled.add_edge(m2, "b", e2)
        leveled.mark_accepting(e1)
        leveled.mark_accepting(e2)
        words = list(RadixEnumerator(leveled, _identity_key))
        assert words == [("a", "b")]

    def test_prune_removes_dead_branches(self):
        leveled = LeveledNFA(2)
        good = leveled.add_node(1)
        dead = leveled.add_node(1)  # no accepting continuation
        end = leveled.add_node(2)
        leveled.add_edge(LeveledNFA.ROOT, "a", good)
        leveled.add_edge(LeveledNFA.ROOT, "z", dead)
        leveled.add_edge(good, "b", end)
        leveled.mark_accepting(end)
        leveled.prune()
        assert not leveled.out_edges[dead]
        assert list(RadixEnumerator(leveled, _identity_key)) == [("a", "b")]

    def test_count_words_distinct(self):
        leveled = self._diamond()
        assert leveled.count_words() == 2

    def test_count_words_cap(self):
        leveled = self._diamond()
        assert leveled.count_words(cap=1) == 1

    def test_zero_slots_accepting(self):
        leveled = LeveledNFA(0)
        leveled.mark_accepting(LeveledNFA.ROOT)
        leveled.prune()
        assert list(RadixEnumerator(leveled, _identity_key)) == [()]
        assert leveled.count_words() == 1

    def test_zero_slots_rejecting(self):
        leveled = LeveledNFA(0)
        leveled.prune()
        assert list(RadixEnumerator(leveled, _identity_key)) == []
        assert leveled.is_empty

    def test_edge_level_validation(self):
        leveled = LeveledNFA(2)
        n2 = leveled.add_node(2)
        with pytest.raises(ValueError):
            leveled.add_edge(LeveledNFA.ROOT, "a", n2)

    def test_accepting_level_validation(self):
        leveled = LeveledNFA(2)
        n1 = leveled.add_node(1)
        with pytest.raises(ValueError):
            leveled.mark_accepting(n1)

    def test_empty_after_prune(self):
        leveled = LeveledNFA(1)
        leveled.add_node(1)  # never accepting
        leveled.prune()
        assert leveled.is_empty
        assert list(RadixEnumerator(leveled, _identity_key)) == []


class TestCrossSection:
    def _brute_force(self, pattern: str, length: int, alphabet: str):
        nfa = thompson_nfa(parse(pattern))
        return sorted(
            "".join(w)
            for w in product(alphabet, repeat=length)
            if simulate(nfa, "".join(w))
        )

    @pytest.mark.parametrize(
        "pattern, length",
        [
            ("(a|b)*", 3),
            ("a*b*", 4),
            ("(ab|ba)*", 4),
            ("a(a|b)*b", 3),
            ("(a|b)(a|b)(a|b)", 3),
        ],
    )
    def test_matches_brute_force(self, pattern, length):
        nfa = thompson_nfa(parse(pattern))
        got = [
            "".join(word)
            for word in enumerate_fixed_length(nfa, length, "ab")
        ]
        assert got == self._brute_force(pattern, length, "ab")

    def test_radix_order_and_uniqueness(self):
        nfa = thompson_nfa(parse("(a|b|c)*"))
        words = list(enumerate_fixed_length(nfa, 2, "abc"))
        assert words == sorted(set(words))
        assert len(words) == 9

    def test_length_zero(self):
        nfa = thompson_nfa(parse("a*"))
        assert list(enumerate_fixed_length(nfa, 0, "a")) == [()]
        nfa2 = thompson_nfa(parse("a+"))
        assert list(enumerate_fixed_length(nfa2, 0, "a")) == []

    def test_cross_section_counts(self):
        nfa = thompson_nfa(parse("(a|b)*"))
        section = cross_section(nfa, 5, "ab")
        assert section.count_words() == 32

    def test_default_symbol_key_total(self):
        from repro.alphabet import open_marker, close_marker

        symbols = ["a", "b", open_marker("x"), close_marker("x")]
        keys = [default_symbol_key(sym) for sym in symbols]
        assert len(set(keys)) == len(keys)
        assert sorted(keys)[0] == default_symbol_key("a")
