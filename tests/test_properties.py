"""Property-based tests (hypothesis) on the engine's core invariants.

The heavyweight invariant: on *random functional regex formulas* and
*random strings*, the production pipeline (compile → configurations →
leveled graph → radix enumeration) agrees with the brute-force ref-word
oracle, which implements the paper's definitions literally.  Around it,
algebraic laws (join/projection/union against their relational
counterparts), encode/decode round trips, and ordering contracts.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.enumeration import SpannerEvaluator, enumerate_tuples
from repro.oracle import oracle_evaluate
from repro.refwords import refword_from_tuple, tuple_from_refword, clr
from repro.regex import check_functional
from repro.regex.ast import (
    Capture,
    CharClass,
    Concat,
    Epsilon,
    RegexFormula,
    Star,
    Union,
)
from repro.alphabet import Chars
from repro.relational.hypergraph import Hypergraph
from repro.relational.relation import Relation
from repro.relational.yannakakis import evaluate_acyclic
from repro.relational.generic import evaluate_generic
from repro.spans import Span, SpanTuple
from repro.vset import compile_regex, equality_automaton, join, project, union
from repro.vset.functionality import is_vset_functional

ALPHABET = "ab"

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def _leaf() -> st.SearchStrategy[RegexFormula]:
    return st.one_of(
        st.sampled_from([CharClass(Chars("a")), CharClass(Chars("b"))]),
        st.just(Epsilon()),
        st.just(CharClass(Chars("ab"))),
    )


def _nested_captures(variables: tuple[str, ...]) -> st.SearchStrategy[RegexFormula]:
    """The minimal functional formula binding ``variables``: nested
    captures around a leaf."""

    def wrap(leaf: RegexFormula) -> RegexFormula:
        formula = leaf
        for var in reversed(variables):
            formula = Capture(var, formula)
        return formula

    return _leaf().map(wrap)


def _formula_over(variables: tuple[str, ...], depth: int) -> st.SearchStrategy[RegexFormula]:
    """Random *functional by construction* formula binding exactly
    ``variables``."""
    if not variables:
        if depth <= 0:
            return _leaf()
        sub = _formula_over((), depth - 1)
        return st.one_of(
            _leaf(),
            st.builds(Star, sub),
            st.builds(Concat, sub, sub),
            st.builds(Union, sub, sub),
        )
    if depth <= 0:
        return _nested_captures(variables)

    # Must bind all variables exactly once on every path.
    head, rest = variables[0], variables[1:]
    strategies = []
    # Capture the first variable around a formula binding a subset.
    strategies.append(
        st.builds(
            Capture,
            st.just(head),
            _formula_over(rest, depth - 1),
        )
    )
    if rest:
        # Split variables across a concatenation.
        strategies.append(
            st.builds(
                Concat,
                _formula_over((head,), depth - 1),
                _formula_over(rest, depth - 1),
            )
        )
    else:
        strategies.append(
            st.builds(
                Concat,
                _formula_over((head,), depth - 1),
                _formula_over((), depth - 1),
            )
        )
        strategies.append(
            st.builds(
                Concat,
                _formula_over((), depth - 1),
                _formula_over((head,), depth - 1),
            )
        )
    # Union: both branches bind the same variables.
    strategies.append(
        st.builds(
            Union,
            _formula_over(variables, depth - 1),
            _formula_over(variables, depth - 1),
        )
    )
    return st.one_of(*strategies)


@st.composite
def functional_formulas(draw, max_variables: int = 2) -> RegexFormula:
    n_vars = draw(st.integers(0, max_variables))
    variables = tuple(f"v{i}" for i in range(n_vars))
    formula = draw(_formula_over(variables, depth=2))
    report = check_functional(formula)
    assert report.functional, f"strategy produced non-functional {formula}"
    return formula


short_strings = st.text(alphabet=ALPHABET, max_size=4)
tiny_strings = st.text(alphabet=ALPHABET, max_size=3)


# ---------------------------------------------------------------------------
# Engine vs oracle
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(functional_formulas(), short_strings)
def test_engine_matches_oracle(formula, s):
    automaton = compile_regex(formula)
    engine = set(enumerate_tuples(automaton, s))
    oracle = oracle_evaluate(automaton, s)
    assert engine == oracle


@settings(max_examples=40, deadline=None)
@given(functional_formulas(), short_strings)
def test_compaction_is_semantics_preserving(formula, s):
    automaton = compile_regex(formula)
    compact = automaton.compacted()
    assert set(enumerate_tuples(compact, s)) == set(
        enumerate_tuples(automaton, s)
    )


@settings(max_examples=40, deadline=None)
@given(functional_formulas(), short_strings)
def test_enumeration_order_and_uniqueness(formula, s):
    evaluator = SpannerEvaluator(compile_regex(formula), s)
    words = list(evaluator.configuration_words())
    keys = [tuple(k.sort_key() for k in w) for w in words]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


@settings(max_examples=40, deadline=None)
@given(functional_formulas(), short_strings)
def test_count_matches_enumeration(formula, s):
    evaluator = SpannerEvaluator(compile_regex(formula), s)
    assert evaluator.count() == len(list(evaluator))


# ---------------------------------------------------------------------------
# Algebra laws vs materialized relational semantics
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    functional_formulas(max_variables=1),
    functional_formulas(max_variables=1),
    tiny_strings,
)
def test_join_matches_relational_join(f1, f2, s):
    a1 = compile_regex(f1)
    a2 = compile_regex(f2)
    joined = join(a1, a2)
    assert is_vset_functional(joined)
    got = set(enumerate_tuples(joined, s))
    want = set(a1.evaluate(s).natural_join(a2.evaluate(s)))
    assert got == want


@settings(max_examples=30, deadline=None)
@given(functional_formulas(max_variables=2), tiny_strings)
def test_projection_matches_relational_projection(formula, s):
    automaton = compile_regex(formula)
    variables = sorted(automaton.variables)
    for keep_count in range(len(variables) + 1):
        keep = variables[:keep_count]
        projected = project(automaton, keep)
        got = set(enumerate_tuples(projected, s))
        want = set(automaton.evaluate(s).project(keep))
        assert got == want


@settings(max_examples=30, deadline=None)
@given(
    functional_formulas(max_variables=1),
    functional_formulas(max_variables=1),
    tiny_strings,
)
def test_union_matches_relational_union(f1, f2, s):
    a1 = compile_regex(f1)
    a2 = compile_regex(f2)
    if a1.variables != a2.variables:
        return  # union requires identical variable sets
    combined = union([a1, a2])
    got = set(enumerate_tuples(combined, s))
    want = set(a1.evaluate(s).union(a2.evaluate(s)))
    assert got == want


@settings(max_examples=25, deadline=None)
@given(st.text(alphabet=ALPHABET, min_size=0, max_size=3))
def test_equality_automaton_complete_and_sound(s):
    automaton = equality_automaton(s, ("x", "y"))
    got = set(enumerate_tuples(automaton, s))
    brute = {
        SpanTuple({"x": a, "y": b})
        for a in Span.all_spans(s)
        for b in Span.all_spans(s)
        if a.extract(s) == b.extract(s)
    }
    assert got == brute


# ---------------------------------------------------------------------------
# Ref-word encode/decode round trip
# ---------------------------------------------------------------------------


@st.composite
def tuples_over(draw, s: str, variables: tuple[str, ...]):
    n = len(s)
    assignment = {}
    for var in variables:
        start = draw(st.integers(1, n + 1))
        end = draw(st.integers(start, n + 1))
        assignment[var] = Span(start, end)
    return SpanTuple(assignment)


@settings(max_examples=50, deadline=None)
@given(st.data(), st.text(alphabet=ALPHABET, min_size=0, max_size=5))
def test_refword_round_trip(data, s):
    mu = data.draw(tuples_over(s, ("x", "y")))
    refword = refword_from_tuple(mu, s)
    assert clr(refword) == s
    assert tuple_from_refword(refword, ("x", "y")) == mu


# ---------------------------------------------------------------------------
# Yannakakis vs generic join on random acyclic instances
# ---------------------------------------------------------------------------


@st.composite
def acyclic_instances(draw):
    """A random chain CQ R0(a0,a1) ⋈ R1(a1,a2) ⋈ ... with random rows."""
    length = draw(st.integers(2, 4))
    relations = {}
    edges = {}
    for i in range(length):
        schema = (f"a{i}", f"a{i+1}")
        rows = draw(
            st.sets(
                st.tuples(st.integers(0, 3), st.integers(0, 3)),
                max_size=8,
            )
        )
        relations[f"R{i}"] = Relation(schema, rows)
        edges[f"R{i}"] = set(schema)
    output = draw(
        st.lists(
            st.sampled_from([f"a{i}" for i in range(length + 1)]),
            unique=True,
            max_size=3,
        )
    )
    return relations, Hypergraph(edges), tuple(output)


@settings(max_examples=40, deadline=None)
@given(acyclic_instances())
def test_yannakakis_matches_generic(instance):
    relations, hypergraph, output = instance
    gyo = hypergraph.gyo()
    assert gyo.acyclic
    fast = evaluate_acyclic(relations, gyo, output)
    slow = evaluate_generic(relations, output)
    assert fast == slow


# ---------------------------------------------------------------------------
# Functionality: syntactic test (Thm 2.4) vs semantic test (Thm 2.7)
# ---------------------------------------------------------------------------


@st.composite
def arbitrary_formulas(draw):
    """Formulas that may or may not be functional."""
    depth = draw(st.integers(0, 2))

    def build(d):
        if d <= 0:
            return draw(
                st.sampled_from(
                    [
                        CharClass(Chars("a")),
                        Epsilon(),
                        Capture("x", CharClass(Chars("a"))),
                        Capture("y", Epsilon()),
                    ]
                )
            )
        kind = draw(st.sampled_from(["concat", "union", "star", "capture"]))
        if kind == "concat":
            return Concat(build(d - 1), build(d - 1))
        if kind == "union":
            return Union(build(d - 1), build(d - 1))
        if kind == "star":
            return Star(build(d - 1))
        return Capture(draw(st.sampled_from(["x", "y", "z"])), build(d - 1))

    return build(depth)


@settings(max_examples=80, deadline=None)
@given(arbitrary_formulas())
def test_syntactic_and_semantic_functionality_agree(formula):
    syntactic = check_functional(formula).functional
    automaton = compile_regex(formula, require_functional=False)
    semantic = is_vset_functional(automaton)
    assert syntactic == semantic, f"disagreement on {formula}"
