"""Tests for the ``spanner-join`` command-line interface."""

import pytest

from repro.cli import main


def test_extract_strings(capsys):
    code = main(
        [
            "extract",
            "(ε|.* )m{u{[a-z]+}@d{[a-z]+\\.[a-z]+}}( .*|ε)",
            "--text",
            "mail ada@example.com now",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "ada@example.com" in out
    assert "u='ada'" in out


def test_extract_spans_format(capsys):
    code = main(["extract", "x{a+}", "--text", "aa", "--format", "spans"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[1, 3>" in out


def test_extract_tsv_and_limit(capsys):
    code = main(
        [
            "extract",
            ".*x{a}.*",
            "--text",
            "aaa",
            "--format",
            "tsv",
            "--limit",
            "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert len(out.strip().split("\n")) == 2


def test_extract_count_flag(capsys):
    code = main(["extract", "x{a}", "--text", "a", "--count"])
    captured = capsys.readouterr()
    assert code == 0
    assert "# 1 tuples" in captured.err


def test_extract_from_file(tmp_path, capsys):
    path = tmp_path / "input.txt"
    path.write_text("say hi")
    code = main(["extract", ".*x{hi}.*", "--file", str(path)])
    assert code == 0
    assert "hi" in capsys.readouterr().out


def test_extract_many_files_shares_one_compilation(tmp_path, capsys):
    """Repeated --file streams every document through one spanner."""
    first = tmp_path / "a.txt"
    second = tmp_path / "b.txt"
    first.write_text("say hi")
    second.write_text("hi hi")
    code = main(
        [
            "extract",
            ".*x{hi}.*",
            "--file",
            str(first),
            "--file",
            str(second),
            "--count",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    lines = captured.out.strip().split("\n")
    # Rows are prefixed with their document when several are given.
    assert len(lines) == 3
    assert sum(1 for line in lines if line.startswith(str(first))) == 1
    assert sum(1 for line in lines if line.startswith(str(second))) == 2
    assert "# 3 tuples" in captured.err


def test_query_over_many_files(tmp_path, capsys):
    first = tmp_path / "a.log"
    second = tmp_path / "b.log"
    first.write_text("code=1")
    second.write_text("nothing")
    code = main(
        [
            "query",
            "--atom",
            ".*x{[0-9]+}.*",
            "--file",
            str(first),
            "--file",
            str(second),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert f"{first}: true" in captured.out
    assert f"{second}: false" in captured.out


def test_query_boolean(capsys):
    code = main(["query", "--atom", ".*x{ab}.*", "--text", "zabz"])
    assert code == 0
    assert capsys.readouterr().out.strip() == "true"


def test_query_boolean_false(capsys):
    code = main(["query", "--atom", ".*x{ab}.*", "--text", "zzz"])
    assert code == 0
    assert capsys.readouterr().out.strip() == "false"


def test_query_with_head_and_explain(capsys):
    code = main(
        [
            "query",
            "--atom",
            ".*x{a+}.*",
            "--atom",
            ".*y{b+}.*",
            "--head",
            "x",
            "y",
            "--text",
            "ab",
            "--explain",
            "--format",
            "spans",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "strategy:" in captured.err
    assert "x=[1, 2>" in captured.out


def test_query_with_equality(capsys):
    code = main(
        [
            "query",
            "--atom",
            ".*x{a+}.*",
            "--atom",
            ".*y{a+}.*",
            "--head",
            "x",
            "y",
            "--equal",
            "x,y",
            "--text",
            "aba",
            "--strategy",
            "canonical",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.strip()


def test_info_functional(capsys):
    code = main(["info", "a*x{a*}a*"])
    out = capsys.readouterr().out
    assert code == 0
    assert "functional: True" in out
    assert "states" in out


def test_info_non_functional(capsys):
    code = main(["info", "x{a}x{a}"])
    out = capsys.readouterr().out
    assert code == 1
    assert "functional: False" in out
    assert "reason:" in out


def test_parse_error_reported(capsys):
    code = main(["extract", "(a", "--text", "a"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


class TestWorkerSharding:
    """--workers output must be byte-identical to the serial run."""

    @staticmethod
    def _write_corpus(tmp_path, texts):
        paths = []
        for i, text in enumerate(texts):
            path = tmp_path / f"doc{i}.txt"
            path.write_text(text, encoding="utf-8")
            paths.append(str(path))
        return [arg for p in paths for arg in ("--file", p)]

    def test_extract_file_dispatch_matches_serial(self, tmp_path, capsys):
        files = self._write_corpus(
            tmp_path, [f"ab code={i}{i} ba" for i in range(5)]
        )
        assert main(["extract", ".*x{[0-9]+}.*"] + files) == 0
        serial = capsys.readouterr().out
        assert main(["extract", ".*x{[0-9]+}.*", "--workers", "2"] + files) == 0
        assert capsys.readouterr().out == serial

    def test_extract_text_precedence_survives_workers(self, tmp_path, capsys):
        # --text wins over --file in the serial path; the worker branch
        # must not silently switch the corpus to the files.
        files = self._write_corpus(tmp_path, ["111", "222"])
        args = ["extract", ".*x{[0-9]+}.*", "--text", "999"] + files
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "999" in parallel and "111" not in parallel

    def test_query_equality_workers_match_serial_with_limit(
        self, tmp_path, capsys
    ):
        # The serial path sorts the full relation before --limit, so the
        # sharded path must not cap enumeration inside the workers.
        files = self._write_corpus(
            tmp_path, ["ababab", "aabbaa", "babab", "abba"]
        )
        args = [
            "query",
            "--atom", ".*x{[ab]+}.*",
            "--atom", ".*y{[ab]+}.*",
            "--equal", "x,y",
            "--head", "x", "y",
            "--strategy", "compiled",
            "--limit", "3",
        ] + files
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_query_boolean_workers_match_serial(self, tmp_path, capsys):
        files = self._write_corpus(tmp_path, ["abab", "ba", "aa"])
        args = [
            "query",
            "--atom", ".*x{ab}.*",
            "--atom", ".*y{ab}.*",
            "--equal", "x,y",
        ] + files
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_extract_multiple_formulas_fleet_matches_serial(
        self, tmp_path, capsys
    ):
        # Several formulas are served over ONE SpannerService fleet;
        # output is grouped per formula (q0, q1, ...) and must be
        # byte-identical to the serial loop.
        files = self._write_corpus(
            tmp_path, ["ab code=11 ba Hello", "x code=7 There", "plain"]
        )
        args = ["extract", ".*x{[0-9]+}.*", ".*w{[A-Z][a-z]+}"] + files
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert "q0" in serial and "q1" in serial
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_extract_multiple_formulas_missing_file_fails_early(
        self, tmp_path, capsys
    ):
        files = self._write_corpus(tmp_path, ["code=1"])
        code = main(
            ["extract", ".*x{[0-9]+}.*", ".*y{[a-z]+}.*",
             "--workers", "2", "--file", str(tmp_path / "absent.txt")]
            + files
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot read" in err

    def test_query_workers_reject_canonical_strategy(self, tmp_path, capsys):
        files = self._write_corpus(tmp_path, ["ab", "ba"])
        code = main(
            ["query", "--atom", ".*x{a}.*", "--strategy", "canonical",
             "--workers", "2"] + files
        )
        assert code == 2
        assert "canonical" in capsys.readouterr().err

    def test_query_transport_modes_match_serial(self, tmp_path, capsys):
        from repro.runtime import shm_available

        files = self._write_corpus(
            tmp_path, [f"ab code={i}{i} ba" for i in range(4)]
        )
        args = ["query", "--atom", ".*x{[0-9]+}.*", "--head", "x"] + files
        assert main(args) == 0
        serial = capsys.readouterr().out
        modes = ["pipe", "auto"] + (["shm"] if shm_available() else [])
        for mode in modes:
            assert main(args + ["--workers", "2", "--transport", mode]) == 0
            assert capsys.readouterr().out == serial, mode


class TestEncodingFlags:
    """--encoding/--errors reach the serial and worker read paths."""

    def test_latin1_file_serial_and_workers(self, tmp_path, capsys):
        first = tmp_path / "a.txt"
        second = tmp_path / "b.txt"
        first.write_bytes(b"ab caf\xe9 code=7 zz")
        second.write_bytes(b"no match here\xe9")
        args = [
            "extract", ".*x{[0-9]+}.*",
            "--file", str(first), "--file", str(second),
            "--encoding", "latin-1",
        ]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert "7" in serial
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_stray_byte_is_a_clean_error_not_a_crash(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_bytes(b"code=1 caf\xe9")
        # Serial: the decode error surfaces through the CLI's single
        # error convention (exit 2, "error: ..."), not a traceback.
        assert main(["extract", ".*x{[0-9]+}.*", "--file", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--encoding" in err
        # Worker path: same contract.
        other = tmp_path / "ok.txt"
        other.write_text("code=2", encoding="utf-8")
        code = main(
            ["extract", ".*x{[0-9]+}.*", "--workers", "2",
             "--file", str(bad), "--file", str(other)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_errors_replace_flag(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_bytes(b"code=3 \xff")
        assert main(
            ["extract", ".*x{[0-9]+}.*", "--file", str(bad),
             "--errors", "replace"]
        ) == 0
        assert "3" in capsys.readouterr().out
